//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]` inner
//! attribute), `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! range and tuple [`Strategy`]s, and [`collection::vec`].
//!
//! Differences from upstream, by design:
//! * **No shrinking.** A failing case reports its generated inputs (and the
//!   seed) instead of minimising them.
//! * **Deterministic by default.** Each test's RNG is seeded from the
//!   config's `rng_seed` mixed with the test name, so CI runs are
//!   bit-for-bit reproducible. Set `PROPTEST_RNG_SEED` to explore other
//!   seeds locally.
//! * Failure persistence writes a plain text line per failure (test name,
//!   case index, seed) when a path is configured; there is no regression
//!   replay file format.

use std::fmt::Write as _;

pub mod strategy;

pub use strategy::Strategy;

/// Strategies for collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_usize(self.size.start, self.size.end);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The test runner: config, RNG and the case loop driven by [`proptest!`].
pub mod test_runner {
    use std::io::Write as _;

    /// Where to record failing cases.
    ///
    /// Mirrors upstream's `FileFailurePersistence` in spirit: `Off` records
    /// nothing; `Direct(path)` appends one line per failure to `path`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FileFailurePersistence {
        /// Do not persist failures (the CI-friendly default).
        Off,
        /// Append failures to the file at this repository-relative path.
        Direct(&'static str),
    }

    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
        /// Where failing cases are recorded.
        pub failure_persistence: Option<FileFailurePersistence>,
        /// Base seed mixed with the test name to seed each test's RNG.
        /// Overridable at run time via `PROPTEST_RNG_SEED`.
        pub rng_seed: u64,
    }

    impl ProptestConfig {
        /// The default config with a different case budget.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                failure_persistence: Some(FileFailurePersistence::Off),
                // "LoongServe" folded into 64 bits; any constant works, it
                // just has to be stable.
                rng_seed: 0x4c6f_6f6e_6753_7276,
            }
        }
    }

    /// A small deterministic RNG (SplitMix64) for generating test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi);
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }

    /// FNV-1a, used to give every test an independent substream.
    pub fn hash_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Runs `case` for every case index, with a per-test deterministic RNG.
    ///
    /// `case` receives the case index and the RNG; it panics to signal
    /// failure (the `proptest!` macro wraps bodies so failures also report
    /// their generated inputs before propagating).
    pub fn run_cases(
        config: &ProptestConfig,
        test_name: &str,
        mut case: impl FnMut(u32, &mut TestRng),
    ) {
        let base_seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(config.rng_seed);
        let mut rng = TestRng::seed(base_seed ^ hash_name(test_name));
        for i in 0..config.cases {
            case(i, &mut rng);
        }
    }

    /// Records a failing case when persistence is configured.
    pub fn persist_failure(
        config: &ProptestConfig,
        test_name: &str,
        case_index: u32,
        inputs: &str,
    ) {
        if let Some(FileFailurePersistence::Direct(path)) = config.failure_persistence {
            if let Some(parent) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    f,
                    "{test_name} case={case_index} seed={} inputs: {inputs}",
                    config.rng_seed
                );
            }
        }
    }
}

pub use test_runner::{FileFailurePersistence, ProptestConfig};

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{FileFailurePersistence, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Formats generated inputs for the failure report.
pub fn format_input(buffer: &mut String, name: &str, value: &dyn std::fmt::Debug) {
    let _ = write!(buffer, "{name} = {value:?}; ");
}

/// Declares property tests. See the crate docs for supported syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0u32..9, 1..4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)) => {};
    (@impl ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__case, __rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), __rng);)+
                let mut __inputs = String::new();
                $($crate::format_input(&mut __inputs, stringify!($arg), &$arg);)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "[proptest] {} failed at case {} (seed {:#x}): {}",
                        stringify!($name), __case, __config.rng_seed, __inputs
                    );
                    $crate::test_runner::persist_failure(
                        &__config, stringify!($name), __case, &__inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            });
        }
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 0u64..100,
            b in -5i64..5,
            f in 0.25f64..0.75,
            idx in 0usize..3,
        ) {
            prop_assert!(a < 100);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(idx < 3);
        }

        #[test]
        fn vec_strategy_respects_size(
            v in collection::vec(0u64..10, 1..8),
        ) {
            prop_assert!((1..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuple_strategies_work(
            ops in collection::vec((0u8..4, 0u64..6, 1u64..5_000), 1..20),
        ) {
            for (op, a, b) in ops {
                prop_assert!(op < 4);
                prop_assert!(a < 6);
                prop_assert!((1..5_000).contains(&b));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_applies(x in 0u32..7) {
            prop_assert!(x < 7);
        }
    }

    #[test]
    fn same_seed_same_draws() {
        let mut a = TestRng::seed(42);
        let mut b = TestRng::seed(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
