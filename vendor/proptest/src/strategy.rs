//! Input-generation strategies.
//!
//! A [`Strategy`] knows how to draw one random value of its output type from
//! a [`TestRng`]. Ranges over the primitive integer and float types, tuples
//! of strategies, and [`crate::collection::vec`] cover everything the
//! workspace's property tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
