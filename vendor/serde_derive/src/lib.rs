//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls (in terms of
//! the vendored serde's `Value` data model) for the shapes this workspace
//! actually uses: non-generic structs with named fields, tuple structs,
//! unit structs, and enums whose variants are unit, tuple, or struct-like.
//! Enums follow serde's externally-tagged representation.
//!
//! The parser walks the raw `proc_macro::TokenStream` directly (no `syn` /
//! `quote`, which are unavailable offline). Unsupported shapes — generics,
//! unions, `#[serde(...)]` attributes — panic with a clear message at
//! expansion time rather than generating wrong code silently.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// A minimal item model.
// ---------------------------------------------------------------------------

enum Shape {
    NamedStruct(Vec<String>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct GenericParam {
    /// `T` or `'a`.
    name: String,
    /// Declared bounds, e.g. `Clone`, or empty.
    bounds: String,
    is_lifetime: bool,
}

struct Item {
    name: String,
    generics: Vec<GenericParam>,
    shape: Shape,
}

impl Item {
    /// Builds `impl<...> Trait for Name<...>` header pieces, adding
    /// `extra_bound` to every type parameter.
    fn impl_header(&self, trait_path: &str, extra_bound: &str) -> (String, String) {
        if self.generics.is_empty() {
            return (
                format!("impl {trait_path} for {}", self.name),
                self.name.clone(),
            );
        }
        let mut params = Vec::new();
        let mut args = Vec::new();
        for g in &self.generics {
            args.push(g.name.clone());
            if g.is_lifetime {
                if g.bounds.is_empty() {
                    params.push(g.name.clone());
                } else {
                    params.push(format!("{}: {}", g.name, g.bounds));
                }
            } else if g.bounds.is_empty() {
                params.push(format!("{}: {extra_bound}", g.name));
            } else {
                params.push(format!("{}: {} + {extra_bound}", g.name, g.bounds));
            }
        }
        let ty = format!("{}<{}>", self.name, args.join(", "));
        (
            format!("impl<{}> {trait_path} for {ty}", params.join(", ")),
            ty,
        )
    }
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips attributes (`#[...]`), including doc comments.
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            if let Some(TokenTree::Punct(p)) = self.peek() {
                if p.as_char() == '!' {
                    self.next();
                }
            }
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                other => panic!("serde_derive: malformed attribute, found {other:?}"),
            }
        }
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let keyword = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    let generics = parse_generics(&mut c, &name);
    if let Some(TokenTree::Ident(id)) = c.peek() {
        if id.to_string() == "where" {
            panic!("serde_derive (vendored): `where` clauses are not supported ({name})");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive (vendored): cannot derive for `{other}` items"),
    };
    Item {
        name,
        generics,
        shape,
    }
}

/// Parses an optional `<...>` generic parameter list into params with their
/// declared bounds. Const generics are unsupported.
fn parse_generics(c: &mut Cursor, item_name: &str) -> Vec<GenericParam> {
    match c.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    c.next();
    // Collect the raw tokens up to the matching `>`.
    let mut depth = 1i32;
    let mut tokens: Vec<TokenTree> = Vec::new();
    loop {
        match c.next() {
            None => panic!("serde_derive: unterminated generics on `{item_name}`"),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                tokens.push(TokenTree::Punct(p));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                tokens.push(TokenTree::Punct(p));
            }
            Some(t) => tokens.push(t),
        }
    }
    // Split into comma-separated params (commas inside nested <...> belong
    // to bounds like `Into<String>` and do not split).
    let mut params = Vec::new();
    let mut segment: Vec<TokenTree> = Vec::new();
    let mut nested = 0i32;
    for t in tokens.into_iter().chain(std::iter::empty()) {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => nested += 1,
                '>' => nested -= 1,
                ',' if nested == 0 => {
                    if !segment.is_empty() {
                        params.push(parse_generic_param(std::mem::take(&mut segment), item_name));
                    }
                    continue;
                }
                _ => {}
            }
        }
        segment.push(t);
    }
    if !segment.is_empty() {
        params.push(parse_generic_param(segment, item_name));
    }
    params
}

fn parse_generic_param(tokens: Vec<TokenTree>, item_name: &str) -> GenericParam {
    let mut iter = tokens.into_iter();
    let (name, is_lifetime) = match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
            let label = match iter.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: malformed lifetime in `{item_name}`: {other:?}"),
            };
            (format!("'{label}"), true)
        }
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
            panic!("serde_derive (vendored): const generics are not supported ({item_name})")
        }
        Some(TokenTree::Ident(id)) => (id.to_string(), false),
        other => panic!("serde_derive: malformed generic param in `{item_name}`: {other:?}"),
    };
    // Anything after a `:` is the bound list, kept verbatim.
    let mut bounds = String::new();
    let mut saw_colon = false;
    for t in iter {
        if !saw_colon {
            match &t {
                TokenTree::Punct(p) if p.as_char() == ':' => {
                    saw_colon = true;
                    continue;
                }
                _ => panic!("serde_derive: unexpected token in generics of `{item_name}`: {t:?}"),
            }
        }
        if !bounds.is_empty() {
            bounds.push(' ');
        }
        bounds.push_str(&t.to_string());
    }
    GenericParam {
        name,
        bounds,
        is_lifetime,
    }
}

/// Parses `name: Type, ...` pairs, returning the field names. Commas inside
/// angle brackets (`HashMap<String, u64>`) do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let field = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{field}`, found {other:?}"),
        }
        skip_type(&mut c);
        fields.push(field);
    }
    fields
}

/// Counts types in a tuple-struct body (`T0, T1, ...`).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        if c.at_end() {
            break;
        }
        skip_type(&mut c);
        count += 1;
    }
    count
}

/// Consumes tokens of one type, stopping after the `,` that terminates it
/// (or at end of stream). Tracks `<`/`>` depth so generic arguments'
/// commas are not mistaken for field separators.
fn skip_type(c: &mut Cursor) {
    let mut angle_depth: i32 = 0;
    while let Some(tok) = c.peek() {
        match tok {
            TokenTree::Punct(p) => {
                let ch = p.as_char();
                if ch == '<' {
                    angle_depth += 1;
                } else if ch == '>' {
                    angle_depth -= 1;
                } else if ch == ',' && angle_depth == 0 {
                    c.next();
                    return;
                }
                c.next();
            }
            _ => {
                c.next();
            }
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Consume a trailing comma (and reject explicit discriminants).
        match c.next() {
            None => {
                variants.push(Variant { name, shape });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, shape });
            }
            other => panic!(
                "serde_derive: unexpected token after variant `{name}`: {other:?} \
                 (explicit discriminants are not supported)"
            ),
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed).
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.push((String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Map(__m)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from(
                            "{ let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.push((String::from(\"{f}\"), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Map(__m) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(String::from(\"{vn}\"), {inner})]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let (header, _) = item.impl_header("::serde::Serialize", "::serde::Serialize");
    format!(
        "#[automatically_derived]\n\
         {header} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__v, \"{f}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_elem(__v, {i})?"))
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::de_elem(__inner, {i})?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}({})),\n",
                            inits.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(__inner, \"{f}\")?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => Err(::serde::DeError::custom(format!(\n\
                             \"unknown unit variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__k, __inner) = &__entries[0];\n\
                         match __k.as_str() {{\n\
                             {data_arms}\
                             __other => Err(::serde::DeError::custom(format!(\n\
                                 \"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::DeError::custom(format!(\n\
                         \"expected variant of {name}, found {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    let (header, _) = item.impl_header("::serde::Deserialize", "::serde::Deserialize");
    format!(
        "#[automatically_derived]\n\
         {header} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
