//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of serde this workspace relies on: `#[derive(Serialize,
//! Deserialize)]` on plain (non-generic) structs and enums, backed by a
//! small JSON-like [`Value`] data model. `serde_json` (also vendored)
//! renders and parses that model, which is enough for the Scaling
//! Information Base's JSON round-trip.
//!
//! Design notes:
//! * [`Serialize::to_value`] converts a value into the [`Value`] tree;
//!   [`Deserialize::from_value`] reads it back. The derive macro (in the
//!   vendored `serde_derive`) generates both impls from the item's shape.
//! * Enums use serde's externally-tagged convention: unit variants become
//!   strings, data variants become single-entry maps.
//! * Missing map keys deserialize as [`Value::Null`], so `Option` fields
//!   behave like upstream serde's `default` behaviour for `Option`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// The JSON-like data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as an ordered list of key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "u64",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl DeError {
    /// Creates an error from anything displayable.
    pub fn custom(message: impl fmt::Display) -> Self {
        DeError {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` back from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Helpers used by the derive macro's generated code.
// ---------------------------------------------------------------------------

/// Fetches and deserializes the field `name` from a map value.
///
/// A missing key deserializes from [`Value::Null`], which lets `Option`
/// fields absent from the input read back as `None`.
pub fn de_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    match value {
        Value::Map(_) => T::from_value(value.get(name).unwrap_or(&Value::Null))
            .map_err(|e| DeError::custom(format!("field `{name}`: {e}"))),
        other => Err(DeError::custom(format!(
            "expected object with field `{name}`, found {}",
            other.kind()
        ))),
    }
}

/// Fetches and deserializes element `idx` from a sequence value.
pub fn de_elem<T: Deserialize>(value: &Value, idx: usize) -> Result<T, DeError> {
    match value {
        Value::Seq(items) => match items.get(idx) {
            Some(item) => {
                T::from_value(item).map_err(|e| DeError::custom(format!("element {idx}: {e}")))
            }
            None => Err(DeError::custom(format!(
                "expected array with at least {} elements, found {}",
                idx + 1,
                items.len()
            ))),
        },
        other => Err(DeError::custom(format!(
            "expected array, found {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("integer {n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for &T
where
    T: ?Sized,
{
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                Ok(($(de_elem::<$name>(value, $idx)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types usable as map keys, rendered as JSON object keys.
pub trait MapKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back from a string.
    fn parse_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn parse_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn parse_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::custom(format!("bad integer key `{s}`")))
            }
        }
    )*};
}

impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        // Sorted for stable, diffable output (HashMap iteration order is not
        // deterministic across runs).
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::parse_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::parse_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrips_through_null() {
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u64).to_value(), Value::U64(3));
    }

    #[test]
    fn missing_field_reads_as_none() {
        let obj = Value::Map(vec![("present".into(), Value::U64(1))]);
        let missing: Option<u64> = de_field(&obj, "absent").unwrap();
        assert_eq!(missing, None);
        let present: Option<u64> = de_field(&obj, "present").unwrap();
        assert_eq!(present, Some(1));
    }

    #[test]
    fn hashmap_integer_keys_roundtrip() {
        let mut m = HashMap::new();
        m.insert(2usize, 8usize);
        m.insert(4usize, 16usize);
        let v = m.to_value();
        let back: HashMap<usize, usize> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
