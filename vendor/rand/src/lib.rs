//! Offline stand-in for the `rand` crate (API-compatible subset of 0.8).
//!
//! The build environment for this repository has no network access, so the
//! handful of `rand` items the workspace uses are reimplemented here:
//! [`RngCore`], [`SeedableRng`], [`Error`], and the [`Rng`] extension trait
//! with `gen`, `gen_range` and `gen_bool`. Algorithms follow the same
//! conventions as upstream (53-bit uniform floats, Lemire-style bounded
//! integers), but no bit-for-bit compatibility with crates-io `rand` is
//! claimed — determinism within this workspace is what matters, and that is
//! provided by the generators themselves (see `loong_simcore::rng`).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type returned by fallible [`RngCore`] methods.
///
/// The simulators in this workspace are infallible sources of randomness, so
/// this error is never constructed in practice; it exists so signatures match
/// upstream `rand`.
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand::Error({})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure. Never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// Types that can be sampled uniformly from the generator's full output
/// range (the `Standard` distribution in upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for u16 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, as upstream.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `gen_range` can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = f64::standard_sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = f32::standard_sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (full integer range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` stand-in (empty; the workspace brings its own generators).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak LCG is plenty for testing the adapter layer.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_int_in_bounds() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&v));
            let w: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
