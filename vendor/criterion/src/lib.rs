//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's `harness = false` bench
//! targets use — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`criterion_group!`] and [`criterion_main!`] — with a
//! deliberately simple measurement loop: a short warm-up, then a fixed
//! batch of timed iterations, reporting the mean per-iteration time to
//! stdout. No statistics, plots, or baselines; `cargo bench` output is a
//! table of `group/id: time` lines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `optimized/32`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean execution time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run (fills caches, triggers lazy init).
        black_box(routine());
        let iters = self.sample_size.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / iters as u32);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R>(&mut self, id: impl std::fmt::Display, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, routine);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, |b| routine(b, input));
        self
    }

    /// Finishes the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn run_one<R: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut routine: R) {
    let mut bencher = Bencher {
        sample_size,
        last_mean: None,
    };
    routine(&mut bencher);
    match bencher.last_mean {
        Some(mean) => println!("bench {label}: {mean:?}/iter (n={sample_size})"),
        None => println!("bench {label}: no measurement (Bencher::iter never called)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Small by default: these benches run full simulations and the
            // stand-in reports means, not distributions.
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Upstream parses CLI args here; the stand-in accepts everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size,
        }
    }

    /// Benchmarks `routine` under `id` without a group.
    pub fn bench_function<R>(&mut self, id: impl std::fmt::Display, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.default_sample_size, routine);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion::default();
        trivial(&mut criterion);
        criterion.bench_function("top_level", |b| b.iter(|| black_box(5u8)));
    }
}
