//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored serde's [`Value`] data model to JSON text and
//! parses it back. Floating-point numbers are emitted with Rust's shortest
//! round-trip formatting, so `to_string_pretty` → `from_str` reproduces
//! every `f64` bit-for-bit — which the SIB's JSON round-trip test relies
//! on.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Error produced by JSON serialization or deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Emission.
// ---------------------------------------------------------------------------

fn emit(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // Rust's shortest round-trip formatting; integral floats print
            // without a fractional part (e.g. `2`), which parses back as an
            // integer and converts to the same f64.
            out.push_str(&f.to_string());
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n <= i64::MAX as u64 {
                        return Ok(Value::I64(-(n as i64)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_roundtrip_exactly() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            2.0,
            1e-7,
            std::f64::consts::PI,
            -4.3e12,
            f64::MIN_POSITIVE,
        ] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "float {f} did not roundtrip");
        }
    }

    #[test]
    fn nested_value_roundtrips() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::F64(0.5)])),
            ("b \"quoted\"".into(), Value::Str("line\nbreak".into())),
            ("c".into(), Value::Null),
            ("d".into(), Value::I64(-9)),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        let back = parse_value(&pretty).unwrap();
        assert_eq!(v, back);
        let compact = to_string(&v).unwrap();
        assert_eq!(v, parse_value(&compact).unwrap());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<u64>("{").is_err());
    }
}
