//! Quickstart: serve a small mixed long-context workload with LoongServe.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example generates a Mixed-dataset trace (ShareGPT + L-Eval + LV-Eval
//! lengths), serves it with LoongServe on the paper's single-node testbed
//! (8×A800, TP=2, ESP up to 4), and prints the headline metrics plus a
//! breakdown of the elastic scaling activity.

use loongserve::prelude::*;

fn main() {
    // The paper's single-node configuration: 8 A800 GPUs, four TP=2 elastic
    // instances serving LWM-1M-Text.
    let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);

    // A Mixed workload at 0.3 requests/second with Poisson arrivals.
    let workload = WorkloadSpec::Dataset(DatasetKind::Mixed);
    let rate = 0.3;
    let trace = workload.generate(rate, 100, 2024);
    let stats = trace.stats();
    println!(
        "workload: {} requests, mean input {:.0} tokens (max {}), mean output {:.0} tokens",
        stats.count, stats.mean_input_len, stats.max_input_len, stats.mean_output_len
    );

    let slo = SloSpec::default_for_lwm();
    let (summary, outcome) = system.run(&trace, rate, &slo);

    println!("\n=== LoongServe on {} ===", summary.workload);
    println!("completed requests        : {}", summary.completed);
    println!(
        "rejected / unfinished     : {} / {}",
        outcome.rejected.len(),
        outcome.unfinished
    );
    println!("simulated makespan        : {:.1} s", summary.makespan_s);
    println!(
        "throughput                : {:.1} tokens/s ({:.3} req/s)",
        summary.throughput_tokens_per_s, summary.throughput_rps
    );
    println!(
        "norm. per-token latency   : mean {:.4} s/token, p90 {:.4}",
        summary.per_token_latency.mean, summary.per_token_latency.p90
    );
    println!(
        "norm. input latency       : mean {:.5} s/token, p90 {:.5}",
        summary.input_latency.mean, summary.input_latency.p90
    );
    println!(
        "norm. output latency      : mean {:.4} s/token, p90 {:.4}",
        summary.output_latency.mean, summary.output_latency.p90
    );
    println!(
        "SLO attainment            : {:.1}%",
        summary.slo_attainment * 100.0
    );

    let scale_ups = outcome
        .scaling_events
        .iter()
        .filter(|e| e.kind == ScalingEventKind::ScaleUp)
        .count();
    let scale_downs = outcome
        .scaling_events
        .iter()
        .filter(|e| e.kind == ScalingEventKind::ProactiveScaleDown)
        .count();
    println!(
        "\nelastic scaling activity  : {scale_ups} scale-ups, {scale_downs} proactive scale-downs"
    );
    println!("iterations executed       : {}", outcome.iterations);
    println!("KV bytes migrated         : {:.2} GB (only §5.2 instance reallocation; elastic scaling itself moves nothing)",
        outcome.migration_bytes / 1e9);
}
