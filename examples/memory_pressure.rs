//! Recompute vs swap under a bursty overload.
//!
//! Runs the same MMPP overload trace through four configurations of a
//! deliberately KV-starved cluster: the vLLM-style baseline with
//! preempt-and-recompute, the LoongServe manager with the host-DRAM swap
//! tier, and (for reference) each system with pressure handling off.
//! The queue-only rows demonstrate the gap the subsystem closes: per-round
//! admission reservations are forgotten across scheduling rounds, the pool
//! silently over-fills, decode iterations can no longer append KV, and the
//! run wedges with almost nothing completed. Prints a small comparison
//! table.
//!
//! Run with `cargo run --release --example memory_pressure`.

use loongserve::prelude::*;

/// Total KV slots across the node: a small fraction of the real budget, so
/// the burst actually exhausts memory.
const CAPACITY: u64 = 6_000;
const COUNT: usize = 160;
const SEED: u64 = 77;

fn arrivals() -> ArrivalProcess {
    ArrivalProcess::MarkovModulated {
        rate_high: 40.0,
        rate_low: 2.0,
        mean_high_secs: 3.0,
        mean_low_secs: 3.0,
    }
}

fn overload_trace() -> Trace {
    let mut rng = SimRng::seed(SEED);
    Trace::generate(DatasetKind::ShareGpt, arrivals(), COUNT, &mut rng)
}

struct Row {
    label: &'static str,
    summary: RunSummary,
    outcome: RunOutcome,
}

fn run(label: &'static str, kind: SystemKind, mode: PressureMode, trace: &Trace) -> Row {
    // vLLM concentrates the node in one TP=8 instance, LoongServe splits it
    // into four TP=2 instances; scale the per-instance override so both see
    // the same total pool.
    let instances = (8 / kind.tp(8)).max(1) as u64;
    let system = SystemUnderTest::paper_single_node(kind)
        .with_pressure(mode)
        .with_kv_capacity(CAPACITY / instances);
    let mut engine = system.build_engine(Some(trace));
    let outcome = engine.run(trace);
    let summary = RunSummary::from_records(
        label,
        "ShareGPT burst",
        arrivals().mean_rate(),
        &outcome.records,
        &SloSpec::default_for_lwm(),
    )
    .with_pressure(outcome.pressure);
    Row {
        label,
        summary,
        outcome,
    }
}

fn main() {
    let trace = overload_trace();
    println!(
        "Memory pressure under a bursty MMPP overload: {} ShareGPT requests,\n\
         40 req/s bursts, {CAPACITY} total KV slots (~3% of the real budget)\n",
        trace.len()
    );

    let rows = vec![
        run(
            "vLLM, queue-only",
            SystemKind::Vllm,
            PressureMode::Off,
            &trace,
        ),
        run(
            "vLLM, preempt+recompute",
            SystemKind::Vllm,
            PressureMode::Recompute,
            &trace,
        ),
        run(
            "LoongServe, queue-only",
            SystemKind::LoongServe,
            PressureMode::Off,
            &trace,
        ),
        run(
            "LoongServe, swap-to-host",
            SystemKind::LoongServe,
            PressureMode::SwapToHost,
            &trace,
        ),
    ];

    println!(
        "| {:<24} | {:>5} | {:>9} | {:>8} | {:>9} | {:>8} | {:>8} | {:>10} |",
        "policy", "done", "makespan", "preempt", "swaps", "swap GB", "stall s", "p50 s/tok"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(26),
        "-".repeat(7),
        "-".repeat(11),
        "-".repeat(10),
        "-".repeat(11),
        "-".repeat(10),
        "-".repeat(10),
        "-".repeat(12)
    );
    for row in &rows {
        let p = &row.outcome.pressure;
        println!(
            "| {:<24} | {:>5} | {:>8.1}s | {:>8} | {:>4}/{:>4} | {:>8.2} | {:>8.3} | {:>10.4} |",
            row.label,
            row.summary.completed,
            row.summary.makespan_s,
            p.preemptions,
            p.swap_out_events,
            p.swap_in_events,
            p.swap_bytes_total() / 1e9,
            p.swap_stall_s,
            row.summary.per_token_latency.p50,
        );
    }

    println!(
        "\nBoth pressure policies drain the full overload; recompute pays\n\
         re-prefill FLOPs, swap pays PCIe transfer time and host DRAM. The\n\
         queue-only rows wedge almost immediately: with no eviction path the\n\
         over-filled pool can never append decode KV again, which is the gap\n\
         this subsystem exists to close."
    );
}
