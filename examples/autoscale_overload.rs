//! Graceful degradation under overload: what elasticity and shedding buy.
//!
//! Replays one mixed-class diurnal + flash-crowd trace against LoongServe
//! four ways: a static fleet sized for the trough (one replica), a static
//! fleet sized for the flash (four replicas), an SLO-driven elastic fleet
//! scaling between the two, and the elastic fleet with the admission
//! controller armed. Prints the capacity-efficiency table an operator
//! would read off the elasticity ledger: completions, sheds,
//! replica-seconds paid, SLO-goodput per replica-second, per-class SLO
//! attainment, and scale activity.
//!
//! ```text
//! cargo run --release --example autoscale_overload
//! ```
//!
//! Set `LOONG_SMOKE=1` for the reduced configuration CI uses.

use loongserve::prelude::*;

const MAX_REPLICAS: usize = 4;
const SEED: u64 = 2026;

const FLASH_START_S: f64 = 80.0;
const FLASH_SECS: f64 = 50.0;

fn arrivals() -> ArrivalProcess {
    ArrivalProcess::DiurnalFlash {
        trough_rate: 0.4,
        peak_rate: 1.2,
        period_secs: 300.0,
        flash_start_s: FLASH_START_S,
        flash_secs: FLASH_SECS,
        flash_rate: 8.0,
    }
}

/// The elastic policy shared by both autoscaled rows: 10 s control
/// boundaries, one replica per step, a 12k/24k-token backlog dead band,
/// and a 5 s provisioning delay for cold replicas.
fn scaler() -> AutoscalerConfig {
    let mut scaler = AutoscalerConfig::overload_defaults(1, MAX_REPLICAS);
    scaler.control_interval_s = 10.0;
    scaler.cooldown_s = 5.0;
    scaler.provisioning_delay_s = 5.0;
    scaler.scale_up_backlog_tokens = 24_000;
    scaler.scale_down_backlog_tokens = 12_000;
    scaler
}

/// Shed above 150% of nominal queued-token capacity, recover below 75% —
/// the hysteresis band that keeps the shedding decision from flapping.
fn admission() -> AdmissionConfig {
    let mut adm = AdmissionConfig::overload_defaults();
    adm.replica_capacity_tokens = 25_000;
    adm.service_tokens_per_s = 8_000.0;
    adm
}

struct Row {
    label: &'static str,
    outcome: ElasticFleetOutcome,
}

impl Row {
    fn goodput_per_rs(&self, slo: &SloSpec) -> f64 {
        slo_goodput_per_replica_second(
            &self.outcome.fleet.records,
            slo,
            self.outcome.elasticity.replica_seconds,
        )
    }

    fn attainment_of(&self, slo: &SloSpec, class: TrafficClass) -> f64 {
        self.outcome
            .class_attainment(slo)
            .into_iter()
            .find(|(c, _)| *c == class)
            .map(|(_, a)| a)
            .unwrap_or(1.0)
    }
}

fn run(label: &'static str, replicas: usize, trace: &Trace, cfg: &ElasticConfig) -> Row {
    let mut fleet = FleetEngine::new(FleetConfig::paper_fleet(
        SystemKind::LoongServe,
        replicas,
        RouterPolicy::JoinShortestQueue,
    ));
    let outcome = fleet.run_elastic(trace, cfg);
    assert_eq!(
        outcome.total_requests(),
        trace.len(),
        "{label}: every request must be accounted for exactly once"
    );
    Row { label, outcome }
}

fn main() {
    let smoke = std::env::var("LOONG_SMOKE").is_ok();
    let count = if smoke { 140 } else { 360 };
    let mut rng = SimRng::seed(SEED);
    let trace = Trace::generate_mixed_classes(
        arrivals(),
        count,
        &MixedClassProfile::overload_mix(),
        &mut rng,
    );
    let slo = SloSpec::default_for_lwm();
    println!(
        "Overload: {} mixed-class requests (diurnal 0.4-1.2/s; flash 8/s at \
         {FLASH_START_S} s for {FLASH_SECS} s) against LoongServe fleets (JSQ routing)\n",
        trace.len()
    );

    let rows = [
        run(
            "static, trough-sized (x1)",
            1,
            &trace,
            &ElasticConfig::armed_idle(1),
        ),
        run(
            "static, flash-sized (x4)",
            MAX_REPLICAS,
            &trace,
            &ElasticConfig::armed_idle(MAX_REPLICAS),
        ),
        run(
            "autoscaled (1..4)",
            MAX_REPLICAS,
            &trace,
            &ElasticConfig::new(scaler()),
        ),
        run(
            "autoscaled + shedding",
            MAX_REPLICAS,
            &trace,
            &ElasticConfig::new(scaler()).with_admission(admission()),
        ),
    ];

    println!(
        "| {:<25} | {:>5} | {:>4} | {:>9} | {:>13} | {:>8} | {:>8} | {:>8} | {:>9} |",
        "scenario",
        "done",
        "shed",
        "replica-s",
        "goodput/rep-s",
        "interact",
        "standard",
        "best-eff",
        "ups/downs"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(27),
        "-".repeat(7),
        "-".repeat(6),
        "-".repeat(11),
        "-".repeat(15),
        "-".repeat(10),
        "-".repeat(10),
        "-".repeat(10),
        "-".repeat(11)
    );
    for row in &rows {
        let e = &row.outcome.elasticity;
        println!(
            "| {:<25} | {:>5} | {:>4} | {:>9.1} | {:>13.4} | {:>8.3} | {:>8.3} | {:>8.3} | {:>4}/{:<4} |",
            row.label,
            row.outcome.fleet.records.len(),
            row.outcome.shed.len(),
            e.replica_seconds,
            row.goodput_per_rs(&slo),
            row.attainment_of(&slo, TrafficClass::Interactive),
            row.attainment_of(&slo, TrafficClass::Standard),
            row.attainment_of(&slo, TrafficClass::BestEffort),
            e.scale_up_events,
            e.scale_down_events
        );
    }

    let [small, large, scaled, shedding] = &rows;
    // The static rows are armed-but-idle elastic runs: the controllers run
    // at every boundary and never fire, so their ledgers stay clean.
    for r in [small, large] {
        assert_eq!(r.outcome.elasticity.scale_up_events, 0);
        assert_eq!(r.outcome.elasticity.shed_total(), 0);
        assert!(r.outcome.shed.is_empty());
    }
    // Elasticity pays for fewer replica-seconds than the flash-sized fleet
    // and turns them into strictly better SLO-goodput per replica-second.
    assert!(scaled.outcome.elasticity.replica_seconds < large.outcome.elasticity.replica_seconds);
    assert!(scaled.goodput_per_rs(&slo) > large.goodput_per_rs(&slo));
    assert!(scaled.outcome.elasticity.scale_up_events >= 1);
    assert!(scaled.outcome.elasticity.scale_down_events >= 1);
    // Shedding is class-priority: best-effort is dropped before interactive,
    // and interactive attainment through the flash beats the melting
    // trough-sized fleet.
    let e = &shedding.outcome.elasticity;
    assert!(e.shed_total() > 0, "the flash must trigger shedding");
    assert!(e.shed_best_effort >= e.shed_interactive);
    assert!(
        shedding.attainment_of(&slo, TrafficClass::Interactive)
            > small.attainment_of(&slo, TrafficClass::Interactive)
    );

    println!(
        "\nThe trough-sized fleet melts in the flash crowd — interactive\n\
         attainment collapses while its queue drains. The flash-sized fleet\n\
         serves everything but pays for idle replicas all night, which is\n\
         what the goodput-per-replica-second column prices in. The elastic\n\
         fleet rides the burst at four replicas and retires back to one as\n\
         the queue drains — no request is killed by a scale event — and\n\
         shedding buys the interactive SLO back by dropping best-effort\n\
         work at admission, behind a hysteresis band so the decision\n\
         cannot flap."
    );
}
