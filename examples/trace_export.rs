//! End-to-end trace export: observe an elastic fleet ride a flash crowd
//! through crashes, and dump everything the observability tier records.
//!
//! Replays one mixed-class diurnal + flash-crowd trace against an
//! SLO-driven elastic LoongServe fleet under a seeded crash schedule, with
//! a [`TraceRecorder`] watching the whole run. Emits:
//!
//! * `target/trace_export.perfetto.json` — Chrome trace-event JSON of the
//!   sampled request lifecycle spans and fleet instants (crashes,
//!   recoveries, scale events, sheds, retries). Open it at
//!   <https://ui.perfetto.dev> or `chrome://tracing`; validate it with
//!   `cargo run -p xtask -- trace-check target/trace_export.perfetto.json`.
//! * `target/trace_export.series.csv` — the per-replica streamed
//!   timeseries (queue depth, batch size, KV utilization, completions,
//!   SLO hits) plus fleet-scope counters.
//! * The per-class time-attribution table — where the latency went.
//!
//! ```text
//! cargo run --release --example trace_export
//! ```
//!
//! Set `LOONG_SMOKE=1` for the reduced configuration CI uses.

use loongserve::prelude::*;
use std::path::Path;

const MAX_REPLICAS: usize = 4;
const SEED: u64 = 2026;

fn arrivals() -> ArrivalProcess {
    ArrivalProcess::DiurnalFlash {
        trough_rate: 0.4,
        peak_rate: 1.2,
        period_secs: 300.0,
        flash_start_s: 80.0,
        flash_secs: 50.0,
        flash_rate: 8.0,
    }
}

fn scaler() -> AutoscalerConfig {
    let mut scaler = AutoscalerConfig::overload_defaults(1, MAX_REPLICAS);
    scaler.control_interval_s = 10.0;
    scaler.cooldown_s = 5.0;
    scaler.provisioning_delay_s = 5.0;
    scaler.scale_up_backlog_tokens = 24_000;
    scaler.scale_down_backlog_tokens = 12_000;
    scaler
}

fn main() {
    let smoke = std::env::var("LOONG_SMOKE").is_ok();
    let count = if smoke { 160 } else { 400 };
    let trace = Trace::generate_mixed_classes(
        arrivals(),
        count,
        &MixedClassProfile::overload_mix(),
        &mut SimRng::seed(SEED),
    );
    // A crash roughly every 90 s over the horizon: the exported trace
    // shows casualties, retries and the downtime they cost.
    let schedule = FailureSchedule::generate(
        MAX_REPLICAS,
        SimDuration::from_secs(300.0),
        90.0,
        15.0,
        SEED ^ 0xfa11,
    );
    let cfg = ElasticConfig::new(scaler())
        .with_schedule(schedule)
        .with_retry(RetryPolicy::exponential(2, 0.5))
        .with_sla_window(30.0);

    // Sample every request — this run is small enough to keep all spans;
    // the 1M-request regime uses the default 1% (see the million_scale
    // bench, whose ledger proves the O(sampled + bins) residency bound).
    let mut recorder = TraceRecorder::new(TraceConfig::sample_all());
    let mut fleet = FleetEngine::new(FleetConfig::paper_fleet(
        SystemKind::LoongServe,
        MAX_REPLICAS,
        RouterPolicy::JoinShortestQueue,
    ));
    let outcome = fleet.run_elastic_traced(&trace, &cfg, &mut recorder);

    assert_eq!(
        outcome.total_requests(),
        trace.len(),
        "every request must be accounted for exactly once"
    );
    let ledger = recorder.ledger();
    assert_eq!(ledger.open_requests, 0, "finalize closes every span");
    assert!(
        recorder.instants().iter().any(|i| i.name == "crash"),
        "the schedule must actually crash a replica inside the horizon"
    );

    println!(
        "Traced elastic run: {} mixed-class requests, {} replicas max, \
         {} crashes injected\n",
        trace.len(),
        MAX_REPLICAS,
        recorder
            .instants()
            .iter()
            .filter(|i| i.name == "crash")
            .count()
    );
    println!(
        "recorder ledger: {} admissions seen, {} sampled, {} spans, \
         {} instants, {} series bins, peak {} open",
        ledger.requests_seen,
        ledger.sampled_requests,
        ledger.spans_recorded,
        ledger.instants_recorded,
        ledger.series_bins,
        ledger.peak_open_requests
    );

    // Anchored to the workspace root so the paths land in the top-level
    // target/ regardless of the invoking directory.
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let out_dir = out_dir.as_path();
    std::fs::create_dir_all(out_dir).expect("create target/");
    let perfetto_path = out_dir.join("trace_export.perfetto.json");
    let csv_path = out_dir.join("trace_export.series.csv");
    std::fs::write(&perfetto_path, perfetto_json(&recorder)).expect("write perfetto json");
    std::fs::write(&csv_path, series_csv(&recorder)).expect("write series csv");
    println!("\nwrote {}", perfetto_path.display());
    println!("wrote {}", csv_path.display());

    println!("\nWhere did the simulated time go?\n");
    print!("{}", recorder.attribution().markdown_table());

    let total = recorder.attribution().total();
    assert!(total.prefill_s > 0.0 && total.decode_s > 0.0);
    if outcome.reliability.recovered_requests > 0 {
        assert!(
            total.downtime_s > 0.0,
            "recovered casualties must attribute their backoff downtime"
        );
    }

    println!(
        "\nEvery span above is simulated time on the deterministic clock —\n\
         the run itself is bit-for-bit identical with the recorder detached\n\
         (pinned by tests/observability_properties.rs). Load the JSON into\n\
         ui.perfetto.dev to see each sampled request's queued → prefill →\n\
         decode lifecycle per replica, with crash/recover/scale/shed marks\n\
         on the fleet track."
    );
}
