//! Pluggable attention-cost policies: dense vs LServe-style sparsity.
//!
//! Shows the `AttentionCostPolicy` API end to end: first at the cost-model
//! level (page-sparse decode cost goes flat beyond its token budget while
//! dense keeps growing), then through a full engine run of the Mixed
//! long-context workload under each policy, where hierarchical prefill
//! sparsity dominates goodput because the workload is prefill-bound.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sparse_attention
//! ```
//!
//! Set `LOONG_SMOKE=1` for the reduced configuration CI uses.

use loongserve::prelude::*;

fn main() {
    let smoke = std::env::var("LOONG_SMOKE").is_ok();

    // --- Cost-model level: decode iteration time vs context, per policy ---
    let link = LinkSpec::nvlink_a800();
    let parallel = ParallelConfig::new(2, 4); // the paper's SP=4, TP=2 node
    let policies = AttentionCostPolicy::ablation_set();
    println!("decode iteration time (s), batch of 8, SP=4 TP=2:");
    println!(
        "{:>10} | {:>12} {:>14} {:>14}",
        "context", "dense", "page-sparse", "hierarchical"
    );
    for ctx in [16_384u64, 131_072, 1_048_576] {
        let lens = vec![ctx; 8];
        let t: Vec<f64> = policies
            .iter()
            .map(|p| {
                CostModel::builder(ModelConfig::lwm_1m_text())
                    .attention(*p)
                    .build()
                    .decode_cost(&lens, parallel, parallel.sp, link)
                    .total()
            })
            .collect();
        println!("{:>10} | {:>12.6} {:>14.6} {:>14.6}", ctx, t[0], t[1], t[2]);
    }
    println!(
        "page-sparse decode saturates at its {}-token budget; dense scans the whole KV cache.\n",
        match AttentionCostPolicy::page_sparse() {
            AttentionCostPolicy::PageSparseDecode(p) => p.token_budget() as u64,
            _ => unreachable!(),
        }
    );

    // --- Engine level: the Mixed workload under each policy ---
    let count = if smoke { 24 } else { 96 };
    let rate = 0.8;
    let trace = WorkloadSpec::Dataset(DatasetKind::Mixed).generate(rate, count, 2025);
    let slo = SloSpec::default_for_lwm();
    println!("LoongServe on Mixed, {count} requests at {rate} req/s:");
    println!(
        "{:>22} {:>10} {:>12} {:>12} {:>10}",
        "policy", "completed", "makespan_s", "goodput_rps", "slo"
    );
    for policy in &policies {
        let system =
            SystemUnderTest::paper_single_node(SystemKind::LoongServe).with_attention(*policy);
        let (summary, outcome) = system.run(&trace, rate, &slo);
        assert_eq!(
            outcome.unfinished,
            0,
            "policy {} left work behind",
            policy.label()
        );
        println!(
            "{:>22} {:>10} {:>12.1} {:>12.4} {:>10.3}",
            policy.label(),
            summary.completed,
            summary.makespan_s,
            summary.throughput_rps,
            summary.slo_attainment
        );
    }
}
