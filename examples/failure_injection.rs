//! Availability under failure injection: what retries and breakers buy.
//!
//! Replays one ShareGPT trace against a 3-replica LoongServe fleet four
//! ways: with the reliability tier armed but no failures, and with a
//! seeded MTBF/MTTR crash schedule under each casualty policy — fail-fast
//! (no retries), a three-attempt exponential retry budget, and retries
//! plus a per-replica circuit breaker. Prints the availability table an
//! operator would read off the SLA windows: completions, terminal
//! failures, overall and worst-window availability, recovered requests,
//! re-prefilled prompt tokens (the headline cost of a crash under long
//! contexts) and breaker trips.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```
//!
//! Set `LOONG_SMOKE=1` for the reduced configuration CI uses.

use loongserve::prelude::*;

const REPLICAS: usize = 3;
const RATE: f64 = 4.0;
const SEED: u64 = 4242;

struct Row {
    label: &'static str,
    outcome: ReliableFleetOutcome,
}

impl Row {
    fn availability(&self) -> f64 {
        let completed = self.outcome.fleet.records.len() as f64;
        let failed = self.outcome.failed.len() as f64;
        if completed + failed == 0.0 {
            1.0
        } else {
            completed / (completed + failed)
        }
    }

    fn worst_window(&self) -> f64 {
        self.outcome
            .sla_windows
            .iter()
            .map(|w| w.success_ratio())
            .fold(1.0, f64::min)
    }
}

fn run(label: &'static str, trace: &Trace, rel: &ReliabilityConfig) -> Row {
    let mut fleet = FleetEngine::new(FleetConfig::paper_fleet(
        SystemKind::LoongServe,
        REPLICAS,
        RouterPolicy::JoinShortestQueue,
    ));
    let outcome = fleet.run_reliable(trace, rel);
    assert_eq!(
        outcome.total_requests(),
        trace.len(),
        "{label}: every request must be accounted for exactly once"
    );
    Row { label, outcome }
}

fn main() {
    let smoke = std::env::var("LOONG_SMOKE").is_ok();
    let count = if smoke { 90 } else { 240 };
    let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(RATE, count, SEED);
    let span_s = count as f64 / RATE;

    // A seeded renewal process over the trace span: each replica
    // alternates exponential up-times (MTBF 25 s) and repairs (MTTR 6 s).
    let schedule = FailureSchedule::generate(
        REPLICAS,
        SimDuration::from_secs(span_s),
        25.0,
        6.0,
        0xfa11_5eed,
    );
    println!(
        "Failure injection: {} ShareGPT requests @ {RATE}/s over {REPLICAS} LoongServe \
         replicas (JSQ routing)\nschedule: {} crashes, {:.1} s total downtime over a \
         {span_s:.0} s trace\n",
        trace.len(),
        schedule.events().len(),
        schedule.total_downtime().as_secs()
    );

    let retry = RetryPolicy::exponential(3, 0.5);
    let breaker = CircuitBreakerConfig::new(2, 20.0, 15.0);
    let window = 15.0;
    let rows = [
        run(
            "no failures (tier armed)",
            &trace,
            &ReliabilityConfig::disarmed()
                .with_retry(retry)
                .with_breaker(breaker)
                .with_sla_window(window),
        ),
        run(
            "failures, fail-fast",
            &trace,
            &ReliabilityConfig::new(schedule.clone()).with_sla_window(window),
        ),
        run(
            "failures, retry x3",
            &trace,
            &ReliabilityConfig::new(schedule.clone())
                .with_retry(retry)
                .with_sla_window(window),
        ),
        run(
            "failures, retry + breaker",
            &trace,
            &ReliabilityConfig::new(schedule)
                .with_retry(retry)
                .with_breaker(breaker)
                .with_sla_window(window),
        ),
    ];

    println!(
        "| {:<26} | {:>5} | {:>6} | {:>6} | {:>9} | {:>9} | {:>11} | {:>7} | {:>9} |",
        "scenario",
        "done",
        "failed",
        "avail",
        "worst win",
        "recovered",
        "re-prefill",
        "breaker",
        "makespan"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(28),
        "-".repeat(7),
        "-".repeat(8),
        "-".repeat(8),
        "-".repeat(11),
        "-".repeat(11),
        "-".repeat(13),
        "-".repeat(9),
        "-".repeat(11)
    );
    for row in &rows {
        let r = &row.outcome.reliability;
        println!(
            "| {:<26} | {:>5} | {:>6} | {:>5.3} | {:>9.3} | {:>9} | {:>11} | {:>7} | {:>8.1}s |",
            row.label,
            row.outcome.fleet.records.len(),
            row.outcome.failed.len(),
            row.availability(),
            row.worst_window(),
            r.recovered_requests,
            r.re_prefilled_tokens,
            r.breaker_opens,
            row.outcome.fleet.sim_time.as_secs()
        );
    }

    let [idle, fail_fast, retried, breakered] = &rows;
    // The idle tier is invisible: perfect availability, empty ledger.
    assert!(idle.outcome.reliability.is_zero());
    assert_eq!(idle.availability(), 1.0);
    assert_eq!(idle.worst_window(), 1.0);
    // Retries strictly dominate fail-fast on this schedule, at the price
    // of the re-prefilled prompt tokens the ledger itemises.
    assert!(!fail_fast.outcome.failed.is_empty(), "crashes must bite");
    assert!(retried.availability() >= fail_fast.availability());
    assert!(retried.outcome.reliability.re_prefilled_tokens > 0);
    assert!(breakered.availability() >= fail_fast.availability());

    println!(
        "\nFail-fast converts every casualty into a terminal failure — the\n\
         availability dip in its worst window is the outage, verbatim. The\n\
         retry budget re-routes casualties to surviving replicas and buys the\n\
         availability back with re-prefilled prompt tokens; the breaker\n\
         additionally keeps crash-looping replicas out of rotation so repeat\n\
         offenders stop collecting fresh casualties."
    );
}
