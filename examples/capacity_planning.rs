//! Capacity planning with the cost model and the analytical model.
//!
//! ```bash
//! cargo run --release --example capacity_planning
//! ```
//!
//! A downstream user of the library often wants to answer "what DoP should I
//! give a request of length L?" and "how many concurrent 100K-token sessions
//! fit on one node?" without running a full serving simulation. This example
//! uses the roofline cost model, the fitted analytical model and the memory
//! budget directly.

use loongserve::prelude::*;

fn main() {
    let model = ModelConfig::lwm_1m_text();
    let cluster = ClusterSpec::single_node_a800(8);
    let cost = CostModel::builder(model.clone()).build();
    let nvlink = cluster.intra_node_link;

    println!(
        "model: {} ({:.1}B params, {:.0} KiB KV per token)",
        model.name,
        model.param_count() / 1e9,
        model.kv_bytes_per_token() / 1024.0
    );

    // 1. Prefill latency vs degree of parallelism for several prompt lengths.
    println!("\nprefill latency (s) by parallelism strategy:");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "len", "TP2", "SP2TP2", "SP4TP2", "TP8"
    );
    for len in [1_000u64, 10_000, 50_000, 100_000, 500_000, 1_000_000] {
        let t = |tp: usize, sp: usize| {
            cost.prefill_cost(&[len], ParallelConfig::new(tp, sp), nvlink)
                .total()
        };
        println!(
            "{:>10} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            len,
            t(2, 1),
            t(2, 2),
            t(2, 4),
            t(8, 1)
        );
    }

    // 2. Decode latency vs batch size for 1 vs 4 masters.
    println!("\ndecode latency (ms) on 4 instances (TP=2), context 10K tokens:");
    println!("{:>10} {:>12} {:>12}", "batch", "1 master", "4 masters");
    for bs in [1usize, 16, 64, 256, 1024] {
        let ctx = vec![10_000u64; bs];
        let p = ParallelConfig::new(2, 4);
        println!(
            "{:>10} {:>12.2} {:>12.2}",
            bs,
            cost.decode_cost(&ctx, p, 1, nvlink).total() * 1e3,
            cost.decode_cost(&ctx, p, 4, nvlink).total() * 1e3
        );
    }

    // 3. Memory capacity: how many concurrent sessions of a given length fit?
    let budget = MemoryBudget::new(
        &cluster.gpu,
        model.weight_bytes_per_gpu(2),
        0.10,
        model.kv_bytes_per_token_per_gpu(2),
    );
    let per_instance = budget.kv_slot_capacity();
    let total = per_instance * 4;
    println!(
        "\nKV capacity: {per_instance} tokens per TP=2 instance, {total} tokens across the node"
    );
    for len in [10_000u64, 100_000, 500_000, 1_000_000] {
        println!("  {:>9}-token sessions: {:>4} concurrent (unified pool), {:>4} under per-instance locality",
            len, total / len, (per_instance / len) * 4);
    }

    // 4. The fitted analytical model (Eq. 7) for quick what-if queries.
    let mut rng = SimRng::seed(1);
    let sib = ScalingInfoBase::profile(
        &cost,
        &[ParallelConfig::new(2, 4), ParallelConfig::new(2, 2)],
        nvlink,
        0.01,
        &mut rng,
    );
    let m = sib
        .prefill_model(ParallelConfig::new(2, 4))
        .expect("profiled");
    println!(
        "\nfitted analytical model for SP4TP2: alpha={:.4e} beta={:.4e} gamma={:.4e}",
        m.alpha, m.beta, m.gamma
    );
    for len in [20_000u64, 200_000, 800_000] {
        let predicted = m.predict(&[len]);
        let measured = cost
            .prefill_cost(&[len], ParallelConfig::new(2, 4), nvlink)
            .total();
        println!(
            "  len {:>7}: predicted {:>8.2} s, roofline {:>8.2} s ({:+.1}% error)",
            len,
            predicted,
            measured,
            (predicted - measured) / measured * 100.0
        );
    }
}
