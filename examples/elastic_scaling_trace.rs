//! Trace the elastic scaling decisions LoongServe makes under a bursty
//! ShareGPT-style workload.
//!
//! ```bash
//! cargo run --release --example elastic_scaling_trace
//! ```
//!
//! ShareGPT requests have short prompts and long outputs, so the decode
//! phase keeps growing and triggers frequent elastic scale-ups (the
//! behaviour behind Figure 13 of the paper). The example prints a
//! per-10-second histogram of scale-up operations together with the
//! proactive scale-downs performed at prefill/decode boundaries.

use loongserve::prelude::*;

fn main() {
    let rate = 20.0;
    let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
    let workload = WorkloadSpec::Dataset(DatasetKind::ShareGpt);
    let trace = workload.generate(rate, 400, 1234);
    let slo = SloSpec::default_for_lwm();

    let (summary, outcome) = system.run(&trace, rate, &slo);

    println!(
        "ShareGPT at {rate} req/s: {} requests completed in {:.1} simulated seconds",
        summary.completed, summary.makespan_s
    );
    println!(
        "SLO attainment {:.1}%, mean output latency {:.4} s/token\n",
        summary.slo_attainment * 100.0,
        summary.output_latency.mean
    );

    // Bin the scale-up events into 10-second intervals, as in Figure 13b.
    let mut scale_ups = BinnedCounter::new(10.0);
    let mut scale_downs = BinnedCounter::new(10.0);
    for event in &outcome.scaling_events {
        match event.kind {
            ScalingEventKind::ScaleUp => scale_ups.record(event.at),
            ScalingEventKind::ProactiveScaleDown => scale_downs.record(event.at),
            ScalingEventKind::ReactiveScaleDown => {}
        }
    }

    println!("elastic scale-up operations per 10 s interval:");
    let max = scale_ups.max_per_bin().max(1);
    for (i, &count) in scale_ups.bins().iter().enumerate() {
        let bar = "#".repeat((count * 40 / max) as usize);
        println!(
            "  [{:>4}-{:<4}s] {:>3} {}",
            i * 10,
            (i + 1) * 10,
            count,
            bar
        );
    }
    println!(
        "\ntotal: {} scale-ups (mean {:.2} per 10 s), {} proactive scale-downs",
        scale_ups.total(),
        scale_ups.mean_per_bin(),
        scale_downs.total()
    );
    println!(
        "KV bytes migrated: {:.3} GB — elastic scaling itself migrates nothing",
        outcome.migration_bytes / 1e9
    );
}
