//! Compare LoongServe against the paper's baselines on one workload.
//!
//! ```bash
//! cargo run --release --example compare_systems [dataset] [rate] [requests]
//! ```
//!
//! `dataset` is one of `sharegpt`, `leval`, `lveval`, `mixed` (default
//! `mixed`); `rate` is the offered load in requests/second (default 0.3);
//! `requests` is the trace length (default 100). The example replays the
//! *same* trace against every system — LoongServe, vLLM, DeepSpeed-MII,
//! LightLLM w/ SplitFuse and DistServe — and prints a Figure-10-style
//! comparison table.

use loongserve::prelude::*;

fn parse_dataset(name: &str) -> DatasetKind {
    match name.to_ascii_lowercase().as_str() {
        "sharegpt" => DatasetKind::ShareGpt,
        "leval" | "l-eval" => DatasetKind::LEval,
        "lveval" | "lv-eval" => DatasetKind::LvEval,
        _ => DatasetKind::Mixed,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = parse_dataset(args.get(1).map(String::as_str).unwrap_or("mixed"));
    let rate: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.3);
    let requests: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100);

    let workload = WorkloadSpec::Dataset(dataset);
    let trace = workload.generate(rate, requests, 97);
    let slo = SloSpec::default_for_lwm();
    println!(
        "Comparing {} systems on {} ({} requests at {:.2} req/s)\n",
        SystemKind::figure10_systems().len(),
        dataset.name(),
        requests,
        rate
    );
    println!("{}", RunSummary::markdown_header());

    let mut rows = Vec::new();
    for kind in SystemKind::figure10_systems() {
        let system = SystemUnderTest::paper_single_node(kind);
        let (summary, outcome) = system.run(&trace, rate, &slo);
        println!("{}", summary.markdown_row());
        rows.push((kind, summary, outcome));
    }

    println!("\nnotes:");
    for (kind, summary, outcome) in &rows {
        if !outcome.rejected.is_empty() || outcome.unfinished > 0 {
            println!(
                "  - {}: {} rejected, {} unfinished (served {} of {})",
                kind.label(),
                outcome.rejected.len(),
                outcome.unfinished,
                summary.completed,
                requests
            );
        }
    }

    if let Some((_, loong, _)) = rows.iter().find(|(k, _, _)| *k == SystemKind::LoongServe) {
        for (kind, other, _) in &rows {
            if *kind == SystemKind::LoongServe || other.throughput_tokens_per_s <= 0.0 {
                continue;
            }
            println!(
                "  - LoongServe vs {}: {:.2}x token throughput, {:.2}x lower mean output latency",
                kind.label(),
                loong.throughput_tokens_per_s / other.throughput_tokens_per_s,
                other.output_latency.mean / loong.output_latency.mean.max(1e-9)
            );
        }
    }
}
