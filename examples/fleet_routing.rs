//! Compare the fleet routing policies on a skewed long-context mix.
//!
//! Runs the same Zipf-reshaped Mixed trace — a few enormous prompts amid
//! many chat-sized ones, the regime where routing policy matters — through
//! a 4-replica LoongServe fleet under each policy, and reports fleet
//! throughput, latency and how evenly work landed across replicas.
//!
//! ```text
//! cargo run --release --example fleet_routing
//! ```

use loongserve::prelude::*;

fn main() {
    let replicas = 4;
    let rate = 12.0;
    let count = 240;
    let trace = WorkloadSpec::ZipfMixed { exponent: 1.2 }.generate(rate, count, 77);
    let stats = trace.stats();
    println!(
        "workload: {} requests, mean prompt {:.0} tokens, max prompt {} tokens\n",
        stats.count, stats.mean_input_len, stats.max_input_len
    );

    println!(
        "{:<22} {:>9} {:>10} {:>13} {:>11} {:>18}",
        "policy", "completed", "tput_rps", "p90_tok_lat_s", "imbalance", "assigned/replica"
    );
    for policy in RouterPolicy::all_policies() {
        let config = FleetConfig::paper_fleet(SystemKind::LoongServe, replicas, policy);
        let mut fleet = FleetEngine::new(config);
        let outcome = fleet.run(&trace);
        let summary = outcome.summary(
            "LoongServe fleet",
            &trace.label,
            rate,
            &SloSpec::default_for_lwm(),
        );
        let assigned: Vec<String> = outcome
            .per_replica
            .iter()
            .map(|r| r.assigned.to_string())
            .collect();
        println!(
            "{:<22} {:>9} {:>10.2} {:>13.4} {:>11.2} {:>18}",
            fleet.router_name(),
            summary.fleet.completed,
            summary.fleet.throughput_rps,
            summary.fleet.per_token_latency.p90,
            summary.completion_imbalance(),
            assigned.join("/")
        );
    }

    println!(
        "\nAll four policies are deterministic (sorted tie-breaking; seeded probes for \
         power-of-two-choices): rerunning this example reproduces every number bit for bit."
    );
}
