//! Multi-turn conversations through the prefix-cache tier.
//!
//! Generates a ShareGPT-calibrated multi-turn trace (strictly-growing
//! per-conversation prompts), serves it with LoongServe with the prefix
//! cache off and on, and prints the reuse the tier extracts. Then runs the
//! same trace through a 2-replica fleet under prefix-affinity routing vs
//! round-robin to show why conversation affinity is the fleet half of the
//! tier.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_turn_cache
//! ```
//!
//! Set `LOONG_SMOKE=1` for the reduced configuration CI uses.

use loongserve::prelude::*;

fn main() {
    let smoke = std::env::var("LOONG_SMOKE").is_ok();
    let conversations = if smoke { 40 } else { 120 };

    let mut rng = SimRng::seed(42);
    let trace = Trace::generate_multi_turn(
        DatasetKind::ShareGpt,
        &MultiTurnProfile::sharegpt(),
        ArrivalProcess::Poisson { rate: 0.8 },
        conversations,
        &mut rng,
    );
    let stats = trace.stats();
    println!(
        "trace: {} requests across {conversations} conversations, mean prompt {:.0} tokens",
        stats.count, stats.mean_input_len
    );

    // Single engine: cache off vs on.
    let run = |cache: bool| {
        let mut system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
        if cache {
            system = system.with_prefix_cache(PrefixCacheConfig::default());
        }
        system.build_engine(Some(&trace)).run(&trace)
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.records.len(), on.records.len());
    assert_eq!(on.unfinished, 0);
    println!(
        "\n{:>12} {:>18} {:>9} {:>14} {:>16}",
        "cache", "prefilled_tokens", "hit_rate", "reused_tokens", "saved_prefill_s"
    );
    println!(
        "{:>12} {:>18} {:>9.3} {:>14} {:>16.3}",
        "off",
        off.prefilled_tokens,
        off.cache.hit_rate(),
        off.cache.reused_tokens,
        off.cache.saved_prefill_s
    );
    println!(
        "{:>12} {:>18} {:>9.3} {:>14} {:>16.3}",
        "on",
        on.prefilled_tokens,
        on.cache.hit_rate(),
        on.cache.reused_tokens,
        on.cache.saved_prefill_s
    );
    println!(
        "\nprefill work reduced {:.1}% with identical per-request outputs",
        100.0 * (1.0 - on.prefilled_tokens as f64 / off.prefilled_tokens as f64)
    );

    // Fleet: affinity keeps a conversation's turns on the replica that
    // retains its prefix; round-robin scatters them.
    println!("\n2-replica fleet, cache enabled on every replica:");
    for policy in [RouterPolicy::PrefixAffinity, RouterPolicy::RoundRobin] {
        let mut config = FleetConfig::paper_fleet(SystemKind::LoongServe, 2, policy);
        config.prefix_cache = Some(PrefixCacheConfig::default());
        let outcome = FleetEngine::new(config).run(&trace);
        println!(
            "{:>20}: hit_rate {:.3}, reused {} tokens",
            policy.label(),
            outcome.cache.hit_rate(),
            outcome.cache.reused_tokens
        );
    }
}
