//! Integration tests of the elastic scaling mechanisms across crates:
//! prefill with proactive scale-down feeding multi-master decode through the
//! unified KV pool, and the migration-based paths the baselines use.

use loong_simcore::ids::GroupId;
use loongserve::prelude::*;

fn setup() -> (InstanceRegistry, CostModel, UnifiedKvPool) {
    let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
    let cost_model = CostModel::new(ModelConfig::lwm_1m_text());
    let pool = UnifiedKvPool::new(registry.num_instances(), 400_000);
    (registry, cost_model, pool)
}

#[test]
fn prefill_scale_down_then_decode_then_scale_up_lifecycle() {
    // Reproduces the request lifecycle of Figure 6: prefill at DoP 4,
    // proactive scale-down to DoP 1, decode, then scale the decode group up
    // without moving any KV.
    let (registry, cost_model, mut pool) = setup();
    let all = registry.all_ids();

    // Prefill a 200K-token request on all four instances, retaining on one.
    let group = EspGroup::new(GroupId(0), all.clone());
    let plan = PrefillPlan::build(
        group,
        vec![PrefillRequest {
            id: RequestId(0),
            input_len: 200_000,
        }],
        vec![InstanceId(0)],
        &pool,
    )
    .expect("fits on one instance");
    let prefill = execute_prefill(&plan, &cost_model, &registry, &mut pool).expect("prefill");
    assert!(prefill.cost.scaling_s > 0.0);
    assert_eq!(
        pool.locations_of(RequestId(0)),
        vec![(InstanceId(0), 200_000)]
    );

    // Decode a few iterations on the scaled-down group.
    let mut decode_group = EspGroup::new(GroupId(1), vec![InstanceId(0)]);
    for step in 0..5u64 {
        let plan = DecodePlan::build(
            decode_group.clone(),
            &[(RequestId(0), 200_000 + step)],
            &pool,
        )
        .expect("capacity");
        let out = execute_decode(&plan, &cost_model, &registry, &mut pool).expect("decode");
        assert_eq!(out.generated_tokens, 1);
    }
    assert_eq!(pool.tokens_of(RequestId(0)), 200_005);

    // Scale the decode group up; the existing KV does not move.
    let before = pool.locations_of(RequestId(0));
    decode_group = scale_up(&decode_group, &[InstanceId(1)]).expect("scale up");
    assert_eq!(decode_group.dop(), 2);
    assert_eq!(
        pool.locations_of(RequestId(0)),
        before,
        "scale-up must not migrate KV"
    );

    // Further decodes may now place new tokens on the new master too.
    let plan =
        DecodePlan::build(decode_group, &[(RequestId(0), 200_005)], &pool).expect("capacity");
    let out = execute_decode(&plan, &cost_model, &registry, &mut pool).expect("decode");
    assert_eq!(out.generated_tokens, 1);
    assert_eq!(pool.tokens_of(RequestId(0)), 200_006);
}

#[test]
fn proactive_scale_down_is_cheaper_than_reactive_migration() {
    // The cost argument of §4.1: retaining KV during the prefill ring is
    // (nearly) free, while migrating the same KV afterwards costs real time.
    let (registry, cost_model, pool) = setup();
    let all = registry.all_ids();
    let tokens = 300_000u64;

    // Proactive: retention folded into the prefill.
    let mut pool_a = pool.clone();
    let group = EspGroup::new(GroupId(0), all.clone());
    let plan = PrefillPlan::build(
        group,
        vec![PrefillRequest {
            id: RequestId(0),
            input_len: tokens,
        }],
        vec![InstanceId(0)],
        &pool_a,
    )
    .expect("fits");
    let proactive = execute_prefill(&plan, &cost_model, &registry, &mut pool_a).expect("prefill");

    // Reactive: prefill without scale-down, then migrate everything to
    // instance 0.
    let mut pool_b = pool.clone();
    let group = EspGroup::new(GroupId(1), all.clone());
    let plan = PrefillPlan::build(
        group.clone(),
        vec![PrefillRequest {
            id: RequestId(1),
            input_len: tokens,
        }],
        all.clone(),
        &pool_b,
    )
    .expect("fits");
    let _ = execute_prefill(&plan, &cost_model, &registry, &mut pool_b).expect("prefill");
    let (_, migration) = reactive_scale_down(
        &group,
        &[InstanceId(0)],
        &[RequestId(1)],
        &mut pool_b,
        &cost_model,
        &registry,
    )
    .expect("capacity");

    assert!(
        proactive.cost.scaling_s < migration.time_s / 3.0,
        "proactive retention ({}) should be several times cheaper than reactive migration ({})",
        proactive.cost.scaling_s,
        migration.time_s
    );
    // And it stays a negligible fraction of the prefill itself (Figure 14a).
    assert!(proactive.cost.scaling_s / proactive.cost.total() < 0.02);
}

#[test]
fn unified_pool_admits_what_locality_cannot() {
    // Figure 4 / §2.4 at realistic scale: 600K tokens over instances with
    // 100K/200K/400K free slots.
    let (registry, cost_model, _) = setup();
    let mut pool = UnifiedKvPool::with_capacities(&[100_000, 200_000, 400_000, 400_000]);
    pool.append(RequestId(99), InstanceId(3), 400_000)
        .expect("room");

    assert!(!admissible_with_locality(&pool, 600_000));
    assert!(admissible_unified(&pool, 600_000));

    let group = EspGroup::new(GroupId(0), registry.all_ids());
    let plan = PrefillPlan::build(
        group,
        vec![PrefillRequest {
            id: RequestId(1),
            input_len: 600_000,
        }],
        vec![InstanceId(0), InstanceId(1), InstanceId(2)],
        &pool,
    )
    .expect("unified pool admits the request");
    let mut pool2 = pool.clone();
    execute_prefill(&plan, &cost_model, &registry, &mut pool2).expect("prefill");
    assert_eq!(pool2.tokens_of(RequestId(1)), 600_000);
}

#[test]
fn multi_master_decode_balances_new_tokens_across_masters() {
    let (registry, cost_model, mut pool) = setup();
    let group = EspGroup::new(GroupId(0), registry.all_ids());
    let requests: Vec<(RequestId, u64)> = (0..64).map(|i| (RequestId(i), 1_000)).collect();
    let plan = DecodePlan::build(group, &requests, &pool).expect("capacity");
    let load = plan.per_master_load();
    let max = load.values().max().copied().unwrap_or(0);
    let min = load.values().min().copied().unwrap_or(0);
    assert!(
        max - min <= 1,
        "per-master load should be near-uniform: {load:?}"
    );
    execute_decode(&plan, &cost_model, &registry, &mut pool).expect("decode");
    // Every master received some of the newly generated tokens.
    for inst in registry.all_ids() {
        assert!(pool.instance(inst).used() > 0, "{inst} received no new KV");
    }
}

#[test]
fn drain_instance_frees_it_for_prefill_without_losing_tokens() {
    let (registry, cost_model, mut pool) = setup();
    // A decode request holds KV on instance 2.
    pool.append(RequestId(7), InstanceId(2), 50_000)
        .expect("room");
    let summary = migrate_request(
        RequestId(7),
        &[InstanceId(0), InstanceId(1)],
        &mut pool,
        &cost_model,
        &registry,
    )
    .expect("capacity");
    assert_eq!(summary.total_tokens, 50_000);
    assert_eq!(pool.instance(InstanceId(2)).used(), 0);
    assert_eq!(pool.tokens_of(RequestId(7)), 50_000);
    assert!(pool.check_invariants().is_ok());
}
