//! Properties of the elasticity tier: fleet runs under SLO-driven
//! autoscaling, admission control and load shedding — composed, in the
//! hardest cases, with failure injection.
//!
//! Five contracts are pinned here, matching the tier's module docs:
//!
//! * **Exactly-once accounting** — over random mixed-class traces, elastic
//!   autoscalers, admission controllers and failure schedules, under every
//!   router policy, each trace request ends in exactly one of the five
//!   ledgers (completed, rejected, shed, terminally failed, unfinished).
//! * **Drains kill nothing** — a drained replica accepts no new routes
//!   from the drain decision until (at least) a later re-activation, and —
//!   absent failure injection — everything already routed to it completes.
//! * **Crash × drain composition** — a crash striking mid-drain converts
//!   the remainder into ordinary casualties: they retry or fail terminally
//!   under the retry policy, and the five-way partition still holds, for
//!   all six router policies.
//! * **Determinism** — for a fixed seed, identical elastic runs agree bit
//!   for bit (assignments, records, sheds, scale events, both ledgers,
//!   SLA windows) under *every* router policy.
//! * **Armed-but-idle neutrality** — an autoscaler pinned to the fleet
//!   size plus a shedder that can never fire reproduce the pinned golden
//!   digests of `tests/fleet_equivalence.rs` bit for bit, even though
//!   control boundaries (and their observation runs) still execute.

use loongserve::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

#[path = "golden_util.rs"]
mod golden_util;
use golden_util::Digest;

const PROPTEST_SEED: u64 = 0xe1a5_71c5_0808_2026;

fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

fn sharegpt_trace(rate: f64, count: usize, seed: u64) -> Trace {
    WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(rate, count, seed)
}

/// The overload workload shape: diurnal arrivals with a flash crowd,
/// classified into interactive / long-document / multi-turn streams.
fn mixed_trace(count: usize, seed: u64) -> Trace {
    let arrivals = ArrivalProcess::DiurnalFlash {
        trough_rate: 1.0,
        peak_rate: 5.0,
        period_secs: 120.0,
        flash_start_s: 40.0,
        flash_secs: 20.0,
        flash_rate: 12.0,
    };
    let mut rng = SimRng::seed(seed);
    Trace::generate_mixed_classes(
        arrivals,
        count,
        &MixedClassProfile::overload_mix(),
        &mut rng,
    )
}

fn fleet(replicas: usize, policy: RouterPolicy) -> FleetEngine {
    FleetEngine::new(FleetConfig::paper_fleet(
        SystemKind::LoongServe,
        replicas,
        policy,
    ))
}

/// The six router policies, passthrough included — every sweep must hold
/// for all of them.
fn policy(idx: usize) -> RouterPolicy {
    match idx {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        2 => RouterPolicy::LeastKvLoad,
        3 => RouterPolicy::PowerOfTwoChoices { seed: 0xdecade },
        4 => RouterPolicy::PrefixAffinity,
        _ => RouterPolicy::Passthrough,
    }
}

/// An autoscaler sized for the short property traces: 20 s control
/// windows, quick cooldown, a provisioning delay deliberately coprime
/// with the control interval (no boundary ever coincides with a
/// ready-instant).
fn property_scaler(max_replicas: usize) -> AutoscalerConfig {
    let mut scaler = AutoscalerConfig::overload_defaults(1, max_replicas);
    scaler.control_interval_s = 20.0;
    scaler.cooldown_s = 10.0;
    scaler.provisioning_delay_s = 7.0;
    scaler.scale_up_backlog_tokens = 30_000;
    scaler.scale_down_backlog_tokens = 8_000;
    scaler
}

/// The admission corners swept by the property tests: unarmed, armed but
/// unreachable, and a tight controller that really sheds under the flash.
fn admission_corner(sel: usize) -> Option<AdmissionConfig> {
    match sel {
        0 => None,
        1 => Some(AdmissionConfig::never_sheds()),
        _ => {
            let mut adm = AdmissionConfig::overload_defaults();
            adm.replica_capacity_tokens = 15_000;
            Some(adm)
        }
    }
}

/// Same digest as `tests/fleet_equivalence.rs` (via the shared
/// `golden_util` field walk): a bit-for-bit digest of a [`FleetOutcome`].
fn fleet_digest(outcome: &FleetOutcome) -> u64 {
    let mut d = Digest::new();
    d.word(outcome.assignments.len() as u64);
    for &(id, replica) in &outcome.assignments {
        d.word(id.raw());
        d.word(replica.raw());
    }
    d.word(outcome.per_replica.len() as u64);
    for r in &outcome.per_replica {
        d.word(r.replica.raw());
        d.word(r.assigned as u64);
        d.outcome(&r.outcome);
    }
    d.word(outcome.records.len() as u64);
    for r in &outcome.records {
        d.word(r.id.raw());
        d.time(r.finish);
    }
    d.word(outcome.rejected.len() as u64);
    d.word(outcome.unfinished as u64);
    d.time(outcome.sim_time);
    d.word(outcome.iterations);
    d.word(outcome.migration_bytes.to_bits());
    d.word(outcome.scheduler_calls);
    d.0
}

/// Checks the five-way exactly-once partition: every trace id lands in
/// precisely one of completed / rejected / shed / terminally-failed /
/// unfinished, and the elasticity ledger agrees with the lists.
fn assert_exactly_once(trace: &Trace, outcome: &ElasticFleetOutcome) {
    let trace_ids: BTreeSet<RequestId> = trace.requests.iter().map(|r| r.id).collect();
    let completed: BTreeSet<RequestId> = outcome.fleet.records.iter().map(|r| r.id).collect();
    let rejected: BTreeSet<RequestId> = outcome.fleet.rejected.iter().map(|r| r.0).collect();
    let failed: BTreeSet<RequestId> = outcome.failed.iter().map(|f| f.id).collect();
    let shed: BTreeSet<RequestId> = outcome.shed.iter().map(|s| s.id).collect();

    // No ledger holds duplicates...
    prop_assert_eq!(completed.len(), outcome.fleet.records.len());
    prop_assert_eq!(rejected.len(), outcome.fleet.rejected.len());
    prop_assert_eq!(failed.len(), outcome.failed.len());
    prop_assert_eq!(shed.len(), outcome.shed.len());
    // ...every ledger holds only trace ids...
    prop_assert!(completed.is_subset(&trace_ids));
    prop_assert!(rejected.is_subset(&trace_ids));
    prop_assert!(failed.is_subset(&trace_ids));
    prop_assert!(shed.is_subset(&trace_ids));
    // ...the ledgers are pairwise disjoint...
    prop_assert!(completed.is_disjoint(&rejected));
    prop_assert!(completed.is_disjoint(&failed));
    prop_assert!(completed.is_disjoint(&shed));
    prop_assert!(rejected.is_disjoint(&failed));
    prop_assert!(rejected.is_disjoint(&shed));
    prop_assert!(failed.is_disjoint(&shed));
    // ...and with `unfinished` they partition the trace exactly.
    prop_assert_eq!(
        completed.len() + rejected.len() + failed.len() + shed.len() + outcome.fleet.unfinished,
        trace.len()
    );
    prop_assert_eq!(outcome.total_requests(), trace.len());

    // The elasticity ledger's class counters are the shed list, recounted.
    let by_class = |class: TrafficClass| outcome.shed.iter().filter(|s| s.class == class).count();
    prop_assert_eq!(
        outcome.elasticity.shed_interactive,
        by_class(TrafficClass::Interactive) as u64
    );
    prop_assert_eq!(
        outcome.elasticity.shed_standard,
        by_class(TrafficClass::Standard) as u64
    );
    prop_assert_eq!(
        outcome.elasticity.shed_best_effort,
        by_class(TrafficClass::BestEffort) as u64
    );
    prop_assert_eq!(outcome.elasticity.shed_total(), outcome.shed.len() as u64);
    // Scale events and the reliability ledger agree with their lists too.
    prop_assert_eq!(
        outcome.elasticity.drains_completed,
        outcome
            .scale_events
            .iter()
            .filter(|e| matches!(e.kind, FleetScaleKind::Retired { .. }))
            .count() as u64
    );
    prop_assert_eq!(
        outcome.reliability.retries_exhausted,
        outcome.failed.len() as u64
    );
    prop_assert!(outcome.reliability.recovered_requests <= outcome.reliability.failed_attempts);
    prop_assert_eq!(
        outcome.route_instants.len(),
        outcome.fleet.assignments.len()
    );
}

/// Checks that no route lands on a replica between its retirement and its
/// next re-activation: the drain removes the victim from the routable set
/// durably, not just for one era.
fn assert_no_routes_to_retired(outcome: &ElasticFleetOutcome) {
    // Per replica, the chronological [retired, reactivated) windows.
    #[derive(Clone, Copy)]
    enum Edge {
        Out(SimTime),
        In(SimTime),
    }
    let mut edges: std::collections::BTreeMap<ReplicaId, Vec<Edge>> =
        std::collections::BTreeMap::new();
    for event in &outcome.scale_events {
        match event.kind {
            FleetScaleKind::Retired { replica, .. } => {
                edges.entry(replica).or_default().push(Edge::Out(event.at));
            }
            FleetScaleKind::Activated { replica, ready_at } => {
                edges.entry(replica).or_default().push(Edge::In(ready_at));
            }
        }
    }
    for (i, &(id, replica)) in outcome.fleet.assignments.iter().enumerate() {
        let at = outcome.route_instants[i];
        let Some(timeline) = edges.get(&replica) else {
            continue;
        };
        // The replica's routability at `at`: scan the (chronological)
        // event list for the last edge at or before the route instant.
        let mut forbidden = false;
        for edge in timeline {
            match *edge {
                Edge::Out(t) if t <= at => forbidden = true,
                Edge::In(t) if t <= at => forbidden = false,
                _ => {}
            }
        }
        prop_assert!(
            !forbidden,
            "{id:?} routed to {replica} at {at}, inside a retirement window"
        );
    }
}

proptest! {
    #![proptest_config(ci_config(6))]

    /// (a) Exactly-once accounting over the full cross product: mixed-class
    /// diurnal+flash traces, elastic autoscaling, the admission corners and
    /// every router policy.
    #[test]
    fn every_request_lands_in_exactly_one_of_five_ledgers(
        seed in 0u64..1_000_000,
        count in 20usize..40,
        max_replicas in 2usize..4,
        policy_idx in 0usize..6,
        admission_sel in 0usize..3,
    ) {
        let trace = mixed_trace(count, seed);
        let mut cfg = ElasticConfig::new(property_scaler(max_replicas));
        if let Some(adm) = admission_corner(admission_sel) {
            cfg = cfg.with_admission(adm);
        }
        let outcome = fleet(max_replicas, policy(policy_idx)).run_elastic(&trace, &cfg);
        assert_exactly_once(&trace, &outcome);
        assert_no_routes_to_retired(&outcome);
        // Without failure injection nothing can fail terminally, and a
        // replica-second was spent on every completion.
        prop_assert!(outcome.failed.is_empty());
        prop_assert!(outcome.elasticity.replica_seconds >= 0.0);
        prop_assert!(
            outcome.fleet.records.is_empty() || outcome.elasticity.replica_seconds > 0.0
        );
    }

    /// (b) Drains kill nothing: without failure injection, every request
    /// the fleet admitted completes (or is rejected by a replica's own
    /// engine) even while the autoscaler grows and shrinks the fleet, and
    /// drained replicas take no new work until re-activated.
    #[test]
    fn drained_replicas_finish_their_work_and_take_no_new_routes(
        seed in 0u64..1_000_000,
        count in 20usize..40,
        max_replicas in 2usize..4,
        policy_idx in 0usize..6,
    ) {
        let trace = mixed_trace(count, seed);
        let cfg = ElasticConfig::new(property_scaler(max_replicas))
            .with_initial(max_replicas);
        let outcome = fleet(max_replicas, policy(policy_idx)).run_elastic(&trace, &cfg);
        assert_exactly_once(&trace, &outcome);
        assert_no_routes_to_retired(&outcome);
        prop_assert!(outcome.failed.is_empty(), "no crash, no terminal failures");
        prop_assert_eq!(outcome.fleet.unfinished, 0, "drains run to completion");
        prop_assert_eq!(
            outcome.fleet.records.len() + outcome.fleet.rejected.len() + outcome.shed.len(),
            trace.len()
        );
        // Drain bookkeeping is internally consistent.
        prop_assert!(outcome.elasticity.max_drain_s <= outcome.elasticity.total_drain_s + 1e-9);
        for event in &outcome.scale_events {
            if let FleetScaleKind::Retired { drain_s, .. } = event.kind {
                prop_assert!(drain_s >= 0.0);
                prop_assert!(drain_s <= outcome.elasticity.max_drain_s + 1e-9);
            }
        }
    }

    /// (c) Crash × drain composition: failure injection, retries and the
    /// elastic autoscaler together, under every router policy. Casualties
    /// (including work lost when a crash interrupts a drain) retry or fail
    /// terminally; the five-way partition and the retired-window contract
    /// both hold.
    #[test]
    fn crashes_during_scaling_resolve_through_the_retry_ledger(
        seed in 0u64..1_000_000,
        count in 18usize..36,
        max_replicas in 2usize..4,
        policy_idx in 0usize..6,
        retry_sel in 0usize..2,
    ) {
        let trace = mixed_trace(count, seed);
        let schedule = FailureSchedule::generate(
            max_replicas,
            SimDuration::from_secs(240.0),
            80.0,
            15.0,
            seed ^ 0xe1a5,
        );
        let retry = if retry_sel == 0 {
            RetryPolicy::none()
        } else {
            RetryPolicy::exponential(2, 0.5)
        };
        let cfg = ElasticConfig::new(property_scaler(max_replicas))
            .with_initial(max_replicas)
            .with_schedule(schedule)
            .with_retry(retry)
            .with_admission(AdmissionConfig::never_sheds())
            .with_sla_window(30.0);
        let outcome = fleet(max_replicas, policy(policy_idx)).run_elastic(&trace, &cfg);
        assert_exactly_once(&trace, &outcome);
        assert_no_routes_to_retired(&outcome);
        // Fail-fast: every lost attempt is terminal. With budget: terminal
        // failures only after the budget is spent.
        if retry_sel == 0 {
            prop_assert_eq!(outcome.reliability.retries_scheduled, 0);
            prop_assert_eq!(
                outcome.reliability.failed_attempts,
                outcome.failed.len() as u64
            );
        }
        prop_assert_eq!(
            outcome.reliability.crashes,
            cfg.schedule.events().len() as u64
        );
        // The availability series spans the run whenever anything completed.
        if !outcome.fleet.records.is_empty() {
            prop_assert!(!outcome.sla_windows.is_empty());
        }
    }

    /// (d) Determinism: for a fixed seed the whole elastic outcome —
    /// fleet digest, sheds, scale events, route instants, both ledgers,
    /// SLA windows — is reproduced bit for bit under every router policy.
    #[test]
    fn elastic_outcomes_are_deterministic_for_a_fixed_seed_under_every_policy(
        seed in 0u64..1_000_000,
        count in 16usize..30,
        max_replicas in 2usize..4,
        admission_sel in 0usize..3,
    ) {
        let trace = mixed_trace(count, seed);
        let schedule = FailureSchedule::generate(
            max_replicas,
            SimDuration::from_secs(200.0),
            100.0,
            12.0,
            seed ^ 0xd37e,
        );
        for idx in 0..6 {
            let mut cfg = ElasticConfig::new(property_scaler(max_replicas))
                .with_schedule(schedule.clone())
                .with_retry(RetryPolicy::exponential(2, 0.5));
            if let Some(adm) = admission_corner(admission_sel) {
                cfg = cfg.with_admission(adm);
            }
            let a = fleet(max_replicas, policy(idx)).run_elastic(&trace, &cfg);
            let b = fleet(max_replicas, policy(idx)).run_elastic(&trace, &cfg);
            prop_assert_eq!(fleet_digest(&a.fleet), fleet_digest(&b.fleet));
            prop_assert_eq!(&a.fleet.assignments, &b.fleet.assignments);
            prop_assert_eq!(&a.shed, &b.shed);
            prop_assert_eq!(&a.scale_events, &b.scale_events);
            prop_assert_eq!(&a.route_instants, &b.route_instants);
            prop_assert_eq!(&a.failed, &b.failed);
            prop_assert_eq!(a.elasticity, b.elasticity);
            prop_assert_eq!(a.reliability, b.reliability);
            prop_assert_eq!(&a.sla_windows, &b.sla_windows);
        }
    }
}

// ---------------------------------------------------------------------------
// Armed-but-idle golden pins.
//
// The constants below are *the same* goldens as `tests/fleet_equivalence.rs`
// pins for the plain fleet (same trace recipes, same digest walk): an
// autoscaler pinned to the fleet size plus a shedder that can never fire
// must not move a bit, even though control boundaries — observation runs
// included — still execute. Re-capture (only for intentional behaviour
// changes) via that suite's GOLDEN_PRINT procedure; the three files
// (`fleet_equivalence`, `reliability_properties`, this one) must stay in
// lockstep.
// ---------------------------------------------------------------------------

const GOLDEN_FLEET_2X_ROUND_ROBIN: u64 = 0xb4a0_4cc9_72b0_c57f;
const GOLDEN_FLEET_4X_JSQ: u64 = 0x3598_362b_d2d5_f0d0;
const GOLDEN_FLEET_4X_P2C: u64 = 0x922d_41e0_3abc_c691;

fn assert_armed_idle_invariants(outcome: &ElasticFleetOutcome, n: u64) {
    assert!(outcome.shed.is_empty());
    assert!(outcome.scale_events.is_empty());
    assert!(outcome.failed.is_empty());
    assert!(outcome.reliability.is_zero());
    assert_eq!(outcome.elasticity.scale_up_events, 0);
    assert_eq!(outcome.elasticity.scale_down_events, 0);
    assert_eq!(outcome.elasticity.shed_total(), 0);
    assert_eq!(outcome.elasticity.min_active_replicas, n);
    assert_eq!(outcome.elasticity.max_active_replicas, n);
    assert!(outcome.elasticity.replica_seconds > 0.0);
}

#[test]
fn armed_idle_two_replica_round_robin_stays_on_golden() {
    let trace = sharegpt_trace(12.0, 80, 4242);
    let outcome =
        fleet(2, RouterPolicy::RoundRobin).run_elastic(&trace, &ElasticConfig::armed_idle(2));
    assert_eq!(
        fleet_digest(&outcome.fleet),
        GOLDEN_FLEET_2X_ROUND_ROBIN,
        "armed-but-idle elasticity tier moved the 2x round-robin golden"
    );
    assert_armed_idle_invariants(&outcome, 2);
}

#[test]
fn armed_idle_four_replica_jsq_stays_on_golden() {
    let trace = sharegpt_trace(24.0, 80, 4242);
    let outcome = fleet(4, RouterPolicy::JoinShortestQueue)
        .run_elastic(&trace, &ElasticConfig::armed_idle(4));
    assert_eq!(
        fleet_digest(&outcome.fleet),
        GOLDEN_FLEET_4X_JSQ,
        "armed-but-idle elasticity tier moved the 4x JSQ golden"
    );
    assert_armed_idle_invariants(&outcome, 4);
}

#[test]
fn armed_idle_four_replica_p2c_stays_on_golden() {
    let trace = sharegpt_trace(24.0, 80, 4242);
    let outcome = fleet(4, RouterPolicy::PowerOfTwoChoices { seed: 0x90f1ee7 })
        .run_elastic(&trace, &ElasticConfig::armed_idle(4));
    assert_eq!(
        fleet_digest(&outcome.fleet),
        GOLDEN_FLEET_4X_P2C,
        "armed-but-idle elasticity tier moved the 4x p2c golden"
    );
    assert_armed_idle_invariants(&outcome, 4);
}

#[test]
fn armed_idle_summary_rolls_up_a_clean_elasticity_ledger() {
    let trace = sharegpt_trace(12.0, 40, 9);
    let outcome =
        fleet(2, RouterPolicy::LeastKvLoad).run_elastic(&trace, &ElasticConfig::armed_idle(2));
    let summary = outcome.summary(
        "LoongServe x2",
        "ShareGPT",
        12.0,
        &SloSpec::default_for_lwm(),
    );
    assert!(summary.reliability.is_zero());
    assert!(
        !summary.elasticity.is_zero(),
        "replica-seconds always accrue"
    );
    assert_eq!(summary.elasticity.shed_total(), 0);
    assert_eq!(summary.success_ratio(), 1.0);
}
