//! Integration tests comparing LoongServe with the baseline systems.
//!
//! These encode the qualitative claims of the paper's evaluation (§7.2):
//! LoongServe protects the decode phase better than vLLM, beats chunked
//! prefill on long-context work, and — unlike DistServe — can serve requests
//! that exceed half the cluster's memory.

use loongserve::prelude::*;

fn run_on_trace(kind: SystemKind, trace: &Trace, rate: f64) -> (RunSummary, RunOutcome) {
    let system = SystemUnderTest::paper_single_node(kind);
    system.run(trace, rate, &SloSpec::default_for_lwm())
}

#[test]
fn every_figure10_system_serves_a_light_sharegpt_load() {
    let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(2.0, 60, 51);
    for kind in SystemKind::figure10_systems() {
        let (summary, outcome) = run_on_trace(kind, &trace, 2.0);
        assert_eq!(
            summary.completed + outcome.rejected.len() + outcome.unfinished,
            60,
            "{}: request accounting is broken",
            kind.label()
        );
        assert!(
            summary.completed >= 55,
            "{}: only {} of 60 short requests completed under light load",
            kind.label(),
            summary.completed
        );
    }
}

#[test]
fn loongserve_protects_decode_phase_better_than_vllm() {
    // Mixed workload: long prefills interleave with decodes. vLLM's single
    // static engine stalls decodes behind prefills; LoongServe separates
    // them onto different instance groups.
    let trace = WorkloadSpec::Dataset(DatasetKind::Mixed).generate(0.3, 70, 53);
    let (loong, _) = run_on_trace(SystemKind::LoongServe, &trace, 0.3);
    let (vllm, _) = run_on_trace(SystemKind::Vllm, &trace, 0.3);
    assert!(
        loong.output_latency.mean < vllm.output_latency.mean,
        "LoongServe output latency {} should beat vLLM {}",
        loong.output_latency.mean,
        vllm.output_latency.mean
    );
}

#[test]
fn loongserve_beats_chunked_prefill_on_long_contexts() {
    let trace = WorkloadSpec::Dataset(DatasetKind::LEval).generate(0.5, 50, 59);
    let (loong, _) = run_on_trace(SystemKind::LoongServe, &trace, 0.5);
    let (splitfuse, _) = run_on_trace(SystemKind::LightLlmSplitFuse, &trace, 0.5);
    // Chunking the prompt repeatedly re-reads the KV prefix, so the prefill
    // phase (normalised input latency) must be slower than LoongServe's.
    assert!(
        loong.input_latency.mean < splitfuse.input_latency.mean,
        "LoongServe input latency {} should beat SplitFuse {}",
        loong.input_latency.mean,
        splitfuse.input_latency.mean
    );
}

#[test]
fn distserve_rejects_what_the_unified_pool_can_serve() {
    // A request bigger than half the cluster's KV but smaller than the whole
    // pool: DistServe (each phase confined to half the GPUs) must reject it,
    // LoongServe serves it.
    let single_instance_capacity = EngineConfig::paper_single_node().instance_kv_capacity();
    let big = single_instance_capacity * 3; // fits in 4 instances, not in 2.
    let request = Request::with_max_output(RequestId(0), SimTime::ZERO, big, 16, 16);
    let trace = Trace::from_requests("oversized", vec![request]);

    let (loong, loong_out) = run_on_trace(SystemKind::LoongServe, &trace, 0.01);
    assert_eq!(
        loong.completed, 1,
        "LoongServe should serve the request via the unified pool"
    );
    assert!(loong_out.rejected.is_empty());

    let (dist, dist_out) = run_on_trace(SystemKind::DistServe, &trace, 0.01);
    assert_eq!(dist.completed, 0);
    assert_eq!(
        dist_out.rejected.len(),
        1,
        "DistServe must reject: each half lacks the memory"
    );
}

#[test]
fn replicated_instances_reject_long_requests_that_static_hybrid_serves() {
    // The Figure 12 ablation: replication (TP=2 x 4) is capped by a single
    // replica's memory; static hybrid SP shares the whole pool.
    let per_instance = {
        let mut config = EngineConfig::paper_single_node();
        config.tp = 2;
        config.instance_kv_capacity()
    };
    let big = per_instance + per_instance / 2;
    let request = Request::with_max_output(RequestId(0), SimTime::ZERO, big, 16, 16);
    let trace = Trace::from_requests("oversized", vec![request]);

    let (replicated, replicated_out) = run_on_trace(SystemKind::Replicated, &trace, 0.01);
    assert_eq!(replicated.completed, 0);
    assert_eq!(replicated_out.rejected.len(), 1);

    let (hybrid, hybrid_out) = run_on_trace(SystemKind::StaticHybrid, &trace, 0.01);
    assert_eq!(
        hybrid.completed, 1,
        "static SP over all instances has the memory"
    );
    assert!(hybrid_out.rejected.is_empty());
}

#[test]
fn distserve_pays_migration_bytes_loongserve_avoids() {
    let trace = WorkloadSpec::Dataset(DatasetKind::LEval).generate(0.3, 30, 61);
    let (_, dist_out) = run_on_trace(SystemKind::DistServe, &trace, 0.3);
    let (_, loong_out) = run_on_trace(SystemKind::LoongServe, &trace, 0.3);
    assert!(
        dist_out.migration_bytes > 0.0,
        "disaggregation must migrate KV at every phase transition"
    );
    assert!(
        loong_out.migration_bytes < dist_out.migration_bytes,
        "LoongServe ({} B) should migrate less than DistServe ({} B)",
        loong_out.migration_bytes,
        dist_out.migration_bytes
    );
}

#[test]
fn scale_up_ablation_changes_behaviour_under_heavy_decode_load() {
    // Figure 13a: on ShareGPT (short prompts, long outputs) at high rates,
    // disabling elastic scale-up hurts decode latency or SLO attainment.
    let rate = 40.0;
    let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(rate, 250, 67);
    let (with, with_out) = run_on_trace(SystemKind::LoongServe, &trace, rate);
    let (without, _) = run_on_trace(SystemKind::LoongServeNoScaleUp, &trace, rate);
    let scale_ups = with_out
        .scaling_events
        .iter()
        .filter(|e| e.kind == ScalingEventKind::ScaleUp)
        .count();
    assert!(
        with.output_latency.mean <= without.output_latency.mean * 1.05 || scale_ups > 0,
        "scale-up should not make decoding worse (with {}, without {})",
        with.output_latency.mean,
        without.output_latency.mean
    );
}
