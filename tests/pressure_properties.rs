//! Properties of the KV memory-pressure subsystem.
//!
//! These tests drive constrained-capacity engines through a sustained
//! bursty overload (the MMPP arrival process) and assert the subsystem's
//! contract:
//!
//! * **Termination** — both victim policies finish the trace: no deadlock
//!   or livelock, every request completes (none rejected, none unfinished)
//!   well before the watchdog sim-time cap.
//! * **Conservation** — request accounting balances and every completed
//!   record has causally ordered timestamps; ids complete exactly once.
//! * **Policy behaviour** — the recompute policy re-prefills preempted
//!   requests (preemptions observed engine-side and on the records), while
//!   the swap policy restores KV from the host tier without recompute
//!   (swap traffic observed, zero preemptions, every swap-out matched by a
//!   swap-in).
//! * **Zero-pressure neutrality** — a pressure-armed engine that never
//!   crosses a watermark (conservative reservation, ample capacity) is
//!   bit-for-bit identical to the plain engine; the pinned goldens in
//!   `tests/determinism_golden.rs` pin the disabled case.
//! * **Determinism** — identically seeded overload runs digest identically.
//! * **Failure composition** — an MMPP burst arriving while a replica is
//!   down per a [`FailureSchedule`] concentrates on the survivors' starved
//!   pools and still drains: pressure, retry re-routing and the casualty
//!   ledger compose without wedging (`tests/reliability_properties.rs`
//!   owns the tier's own contracts).

use loongserve::prelude::*;

#[path = "golden_util.rs"]
mod golden_util;
use golden_util::outcome_digest;

/// Watchdog: overload runs must finish far below this simulated horizon; a
/// livelocking policy would instead spin events until the cap and leave
/// requests unfinished, failing the assertions below.
const WATCHDOG_S: f64 = 200_000.0;

/// A bursty MMPP overload trace of ShareGPT-length requests: ~40 req/s
/// bursts against single-digit sustainable capacity at the tiny KV pools
/// used below.
fn overload_trace(count: usize, seed: u64) -> Trace {
    let mut rng = SimRng::seed(seed);
    Trace::generate(
        DatasetKind::ShareGpt,
        ArrivalProcess::MarkovModulated {
            rate_high: 40.0,
            rate_low: 2.0,
            mean_high_secs: 3.0,
            mean_low_secs: 3.0,
        },
        count,
        &mut rng,
    )
}

/// Builds a constrained-capacity engine with the given pressure mode and a
/// watchdog sim-time cap, through the same `build_engine` path production
/// callers use.
fn pressure_engine(kind: SystemKind, mode: PressureMode, capacity: u64) -> ServingEngine {
    SystemUnderTest::paper_single_node(kind)
        .with_pressure(mode)
        .with_kv_capacity(capacity)
        .with_max_sim_time(SimDuration::from_secs(WATCHDOG_S))
        .build_engine(None)
}

/// Asserts the conservation and causality properties shared by every run.
fn check_conserved(outcome: &RunOutcome, trace: &Trace) {
    assert_eq!(
        outcome.records.len() + outcome.rejected.len() + outcome.unfinished,
        trace.len(),
        "every request is completed, rejected or unfinished exactly once"
    );
    for pair in outcome.records.windows(2) {
        assert!(pair[0].id < pair[1].id, "records sorted, ids unique");
    }
    for r in &outcome.records {
        r.validate().expect("causally ordered record");
    }
    assert!(
        outcome.sim_time < SimTime::from_secs(WATCHDOG_S),
        "run must finish well before the watchdog cap (no livelock)"
    );
}

#[test]
fn recompute_policy_survives_overload_and_reprefills_victims() {
    let trace = overload_trace(120, 21);
    let mut engine = pressure_engine(SystemKind::Vllm, PressureMode::Recompute, 6_000);
    let outcome = engine.run(&trace);
    check_conserved(&outcome, &trace);
    assert_eq!(outcome.unfinished, 0, "overload must drain completely");
    assert!(
        outcome.pressure.preemptions > 0,
        "the constrained pool must actually trigger preemptions"
    );
    let record_preemptions: u64 = outcome
        .records
        .iter()
        .map(|r| u64::from(r.preemptions))
        .sum();
    assert!(
        record_preemptions >= outcome.pressure.preemptions,
        "preempted requests completed after re-prefilling"
    );
    // Recompute never touches the host tier.
    assert_eq!(outcome.pressure.swap_out_events, 0);
    assert_eq!(outcome.pressure.swap_out_bytes, 0.0);
}

#[test]
fn swap_policy_survives_overload_and_restores_without_recompute() {
    let trace = overload_trace(120, 21);
    let mut engine = pressure_engine(SystemKind::LoongServe, PressureMode::SwapToHost, 1_500);
    let outcome = engine.run(&trace);
    check_conserved(&outcome, &trace);
    assert_eq!(outcome.unfinished, 0, "overload must drain completely");
    assert!(
        outcome.pressure.swap_out_events > 0,
        "the constrained pool must actually trigger swap-outs"
    );
    assert_eq!(
        outcome.pressure.swap_in_events, outcome.pressure.swap_out_events,
        "every swapped request is restored (KV preserved, no recompute)"
    );
    assert_eq!(
        outcome.pressure.preemptions, 0,
        "with an ample host tier the swap policy never falls back to recompute"
    );
    assert!(outcome.pressure.swap_out_bytes > 0.0);
    assert!((outcome.pressure.swap_in_bytes - outcome.pressure.swap_out_bytes).abs() < 1e-6);
    assert!(outcome.pressure.swap_stall_s > 0.0);
    assert!(outcome.pressure.max_outstanding_swapped_tokens > 0);
}

#[test]
fn overload_runs_are_deterministic() {
    let trace = overload_trace(60, 5);
    for (kind, mode, capacity) in [
        (SystemKind::Vllm, PressureMode::Recompute, 6_000),
        (SystemKind::LoongServe, PressureMode::SwapToHost, 1_500),
    ] {
        let a = pressure_engine(kind, mode, capacity).run(&trace);
        let b = pressure_engine(kind, mode, capacity).run(&trace);
        assert_eq!(
            outcome_digest(&a),
            outcome_digest(&b),
            "{kind:?}/{mode:?}: identical seeds must digest identically"
        );
    }
}

#[test]
fn armed_but_unpressured_engine_is_bit_for_bit_the_plain_engine() {
    // A pressure config with the conservative (factor 1.0) reservation and
    // ample capacity never crosses a watermark, so the armed engine must
    // reproduce the plain engine's outcome exactly — the strongest form of
    // the zero-cost-when-disabled invariant (the disabled case itself is
    // pinned by tests/determinism_golden.rs).
    let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(6.0, 60, 97);
    let conservative = PressureConfig {
        output_reserve_factor: 1.0,
        ..PressureConfig::swap_to_host()
    };
    let build_armed = || {
        let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
        let tp = SystemKind::LoongServe.tp(system.cluster.gpus_per_node);
        let config = EngineConfig {
            cluster: system.cluster.clone(),
            tp,
            model: system.model.clone(),
            workspace_fraction: 0.10,
            sib_noise: 0.01,
            seed: system.seed,
            max_sim_time: None,
            host_swap: Some(HostSwapConfig::from_cluster(
                &system.cluster,
                &system.model,
                0.5,
            )),
            kv_capacity_override: None,
            prefix_cache: None,
            attention: system.attention,
        };
        let scheduler = Box::new(LoongServeScheduler::new().with_pressure(conservative));
        ServingEngine::new(config, scheduler)
    };
    let armed = build_armed().run(&trace);
    let plain = SystemUnderTest::paper_single_node(SystemKind::LoongServe)
        .build_engine(Some(&trace))
        .run(&trace);
    assert_eq!(
        outcome_digest(&armed),
        outcome_digest(&plain),
        "an armed-but-unpressured engine must not change a single bit"
    );
    assert!(armed.pressure.is_zero(), "no pressure activity occurred");
}

#[test]
fn replicated_baseline_survives_overload_under_both_policies() {
    // The replicated baseline keeps strict per-instance locality, so a
    // single skew-filled replica can wedge even while pool-global
    // utilisation sits below the watermarks — the stall-rescue eviction
    // (and, for swap, the single-replica swap-in rewrite) must keep it
    // live. Regression for both review findings.
    let trace = overload_trace(100, 13);
    for mode in [PressureMode::Recompute, PressureMode::SwapToHost] {
        let mut engine = pressure_engine(SystemKind::Replicated, mode, 1_500);
        let outcome = engine.run(&trace);
        check_conserved(&outcome, &trace);
        assert_eq!(
            outcome.unfinished, 0,
            "{mode:?}: skewed per-replica pressure must still drain"
        );
        assert!(
            !outcome.pressure.is_zero(),
            "{mode:?}: the constrained replicas must trigger pressure activity"
        );
    }
}

#[test]
fn oversized_requests_are_rejected_not_wedged_under_pressure() {
    // A request whose prompt + declared bound exceeds the whole pool can
    // never be admitted; under optimistic admission it must still be
    // rejected up front (not admitted, grown and wedged as the sole
    // unevictable decoder).
    let mut requests = overload_trace(20, 3).requests;
    let huge_id = RequestId(requests.len() as u64);
    requests.push(Request::with_max_output(
        huge_id,
        SimTime::from_secs(0.5),
        5_000,
        4_000,
        4_000,
    ));
    let trace = Trace::from_requests("overload+oversized", requests);
    for (kind, mode) in [
        (SystemKind::Vllm, PressureMode::Recompute),
        (SystemKind::LoongServe, PressureMode::SwapToHost),
    ] {
        let mut engine = pressure_engine(kind, mode, 1_500);
        let outcome = engine.run(&trace);
        check_conserved(&outcome, &trace);
        assert!(
            outcome.rejected.iter().any(|(id, _)| *id == huge_id),
            "{kind:?}/{mode:?}: the oversized request must be rejected"
        );
        assert_eq!(
            outcome.unfinished, 0,
            "{kind:?}/{mode:?}: everything else drains"
        );
    }
}

#[test]
fn fleet_rollups_surface_per_replica_pressure_counters() {
    // Two KV-starved swap-mode replicas behind round-robin routing: the
    // merged FleetOutcome and the FleetSummary per-replica rollups must
    // surface the pressure counters end to end.
    let trace = overload_trace(80, 9);
    let mut config = FleetConfig::paper_fleet(SystemKind::LoongServe, 2, RouterPolicy::RoundRobin);
    config.pressure = PressureMode::SwapToHost;
    config.kv_capacity_override = Some(1_500);
    let outcome = FleetEngine::new(config).run(&trace);
    assert_eq!(outcome.total_requests(), trace.len());
    assert!(
        outcome.pressure.swap_out_events > 0,
        "the starved replicas must swap"
    );
    let summary = outcome.summary("LoongServe x2", "burst", 21.0, &SloSpec::default_for_lwm());
    assert_eq!(summary.fleet.pressure, outcome.pressure);
    let mut merged = PressureStats::default();
    for (replica, rollup) in outcome.per_replica.iter().zip(&summary.per_replica) {
        assert_eq!(rollup.pressure, replica.outcome.pressure);
        merged.merge(&replica.outcome.pressure);
    }
    assert_eq!(merged, outcome.pressure);
}

#[test]
fn mmpp_burst_during_an_outage_drains_without_wedging() {
    // Compose the two stress tiers: a bursty MMPP overload against starved
    // swap-mode pools *and* a replica outage across the opening burst. The
    // whole burst piles onto the surviving replica's constrained pool, the
    // crash's casualties re-enter routing under the retry budget, and the
    // run must still drain completely — no deadlock between the pressure
    // machinery and the reliability tier's era-segmented execution.
    let trace = overload_trace(100, 17);
    let schedule = FailureSchedule::from_events(vec![FailureEvent::new(
        ReplicaId(0),
        SimTime::from_secs(1.0),
        SimTime::from_secs(12.0),
    )]);
    let mut config =
        FleetConfig::paper_fleet(SystemKind::LoongServe, 2, RouterPolicy::JoinShortestQueue);
    config.pressure = PressureMode::SwapToHost;
    config.kv_capacity_override = Some(1_500);
    let outcome = FleetEngine::new(config).run_reliable(
        &trace,
        &ReliabilityConfig::new(schedule).with_retry(RetryPolicy::exponential(3, 0.5)),
    );

    // Exactly-once over the composition, and a complete drain: the only
    // replica up during the burst has a starved pool, yet nothing wedges.
    assert_eq!(outcome.total_requests(), trace.len());
    assert_eq!(outcome.fleet.unfinished, 0, "burst-in-outage must drain");
    assert!(
        outcome.failed.is_empty(),
        "one crash against a three-retry budget loses nothing"
    );
    assert!(
        outcome.fleet.sim_time < SimTime::from_secs(WATCHDOG_S),
        "run must finish well before the watchdog horizon (no livelock)"
    );
    for r in &outcome.fleet.records {
        r.validate().expect("causally ordered record");
    }

    // The crash really cost attempts (recovered via retries, since nothing
    // terminally failed) and the starved survivor really hit pressure.
    assert!(
        outcome.reliability.failed_attempts > 0,
        "the opening burst must strand in-flight work on the crashed replica"
    );
    assert_eq!(
        outcome.reliability.retries_scheduled, outcome.reliability.failed_attempts,
        "every casualty got a retry"
    );
    assert!(outcome.reliability.recovered_requests > 0);
    assert!(
        outcome.fleet.pressure.swap_out_events > 0,
        "the burst concentrated on a starved pool must trigger swap traffic"
    );
}

#[test]
fn swap_policy_with_tiny_host_falls_back_to_recompute_and_still_terminates() {
    let trace = overload_trace(80, 33);
    // A host tier of 600 tokens can hold at most one small victim at a
    // time; most evictions must fall back to preemption.
    let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe)
        .with_pressure(PressureMode::SwapToHost)
        .with_kv_capacity(1_500);
    let tp = SystemKind::LoongServe.tp(system.cluster.gpus_per_node);
    let config = EngineConfig {
        cluster: system.cluster.clone(),
        tp,
        model: system.model.clone(),
        workspace_fraction: 0.10,
        sib_noise: 0.01,
        seed: system.seed,
        max_sim_time: Some(SimDuration::from_secs(WATCHDOG_S)),
        host_swap: Some(HostSwapConfig::with_tokens(&system.cluster, 600)),
        kv_capacity_override: Some(1_500),
        prefix_cache: None,
        attention: system.attention,
    };
    let registry = InstanceRegistry::build(&system.cluster, tp);
    let scheduler = SystemKind::LoongServe.build_pressure_scheduler(
        &registry.all_ids(),
        None,
        PressureConfig::swap_to_host(),
    );
    let outcome = ServingEngine::new(config, scheduler).run(&trace);
    check_conserved(&outcome, &trace);
    assert_eq!(outcome.unfinished, 0, "fallback must still drain the trace");
    assert!(
        outcome.pressure.preemptions > 0,
        "a saturated host must fall back to preemption"
    );
}
