//! Conservation properties of the fleet tier.
//!
//! Over random traces, replica counts and **all four routing policies**
//! (plus passthrough), the fleet must conserve requests and tokens:
//!
//! * routing assigns every request to exactly one replica,
//! * every request is accounted for exactly once in the merged outcome
//!   (completed ⊎ rejected ⊎ unfinished), with no loss and no duplication,
//! * completed records carry the input trace's exact token counts, so the
//!   fleet's merged token totals equal the trace's.
//!
//! These are the fleet-scope analogue of the engine's view-equivalence
//! audit: whatever the router decides, the tier above the engines may not
//! invent, drop or mutate work.

use loongserve::prelude::*;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const PROPTEST_SEED: u64 = 0xf1ee_7c05_e27a_7104;

fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

/// The policy space the properties quantify over: the four load-balancing
/// policies and the passthrough identity.
fn policy(idx: usize) -> RouterPolicy {
    match idx % 5 {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        2 => RouterPolicy::LeastKvLoad,
        3 => RouterPolicy::PowerOfTwoChoices { seed: 0xdecade },
        _ => RouterPolicy::Passthrough,
    }
}

proptest! {
    // Every case is a full multi-replica fleet simulation (with the
    // engine's debug-build view audit armed inside each replica), so a
    // small case budget still covers a lot of machine.
    #![proptest_config(ci_config(10))]

    /// Routing is a total function onto the replica set: one replica per
    /// request, every request covered, and the split sub-traces partition
    /// the trace.
    #[test]
    fn routing_assigns_every_request_to_exactly_one_replica(
        seed in 0u64..10_000,
        rate_milli in 200u64..8_000,
        count in 1usize..40,
        replicas in 1usize..5,
        policy_idx in 0usize..5,
    ) {
        let rate = rate_milli as f64 / 1000.0;
        let trace = WorkloadSpec::Dataset(DatasetKind::Mixed).generate(rate, count, seed);
        let mut fleet = FleetEngine::new(FleetConfig::paper_fleet(
            SystemKind::LoongServe,
            replicas,
            policy(policy_idx),
        ));
        let assignment = fleet.route(&trace);
        prop_assert_eq!(assignment.len(), trace.len());
        prop_assert!(assignment.iter().all(|&r| r < replicas));
        let subs = trace.split_by_assignment(replicas, &assignment);
        prop_assert_eq!(subs.len(), replicas);
        prop_assert_eq!(subs.iter().map(Trace::len).sum::<usize>(), trace.len());
        // The multiset of ids across sub-traces is exactly the trace's ids.
        let mut routed: Vec<RequestId> = subs
            .iter()
            .flat_map(|s| s.requests.iter().map(|r| r.id))
            .collect();
        routed.sort();
        let mut expected: Vec<RequestId> = trace.requests.iter().map(|r| r.id).collect();
        expected.sort();
        prop_assert_eq!(routed, expected);
    }

    /// A full fleet run conserves requests: completed ⊎ rejected ⊎
    /// unfinished covers the trace exactly once, across all policies and
    /// replica counts, for LoongServe and a baseline system.
    #[test]
    fn fleet_run_completes_every_request_exactly_once(
        seed in 0u64..10_000,
        rate_milli in 200u64..6_000,
        count in 1usize..25,
        replicas in 1usize..5,
        policy_idx in 0usize..5,
        system_idx in 0usize..2,
    ) {
        let kind = [SystemKind::LoongServe, SystemKind::Vllm][system_idx];
        let rate = rate_milli as f64 / 1000.0;
        let trace = WorkloadSpec::Dataset(DatasetKind::Mixed).generate(rate, count, seed);
        let mut fleet = FleetEngine::new(FleetConfig::paper_fleet(
            kind,
            replicas,
            policy(policy_idx),
        ));
        let outcome = fleet.run(&trace);

        // Counts conserve.
        prop_assert_eq!(outcome.total_requests(), count);
        prop_assert_eq!(
            outcome.per_replica.iter().map(|r| r.assigned).sum::<usize>(),
            count
        );
        prop_assert_eq!(outcome.assignments.len(), count);

        // No request appears in more than one terminal set, and none is
        // invented: completed and rejected ids are disjoint subsets of the
        // trace's ids.
        let trace_ids: BTreeSet<RequestId> = trace.requests.iter().map(|r| r.id).collect();
        let completed: BTreeSet<RequestId> = outcome.records.iter().map(|r| r.id).collect();
        prop_assert_eq!(completed.len(), outcome.records.len(), "duplicate completion");
        let rejected: BTreeSet<RequestId> = outcome.rejected.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(rejected.len(), outcome.rejected.len(), "duplicate rejection");
        prop_assert!(completed.is_disjoint(&rejected), "completed AND rejected");
        prop_assert!(completed.is_subset(&trace_ids), "invented completion");
        prop_assert!(rejected.is_subset(&trace_ids), "invented rejection");
        prop_assert_eq!(
            count - completed.len() - rejected.len(),
            outcome.unfinished,
            "unfinished count inconsistent with terminal sets"
        );

        // Per-replica outcomes merge without loss: the merged record list
        // is exactly the union of replica record lists.
        prop_assert_eq!(
            outcome.per_replica.iter().map(|r| r.outcome.records.len()).sum::<usize>(),
            outcome.records.len()
        );
        prop_assert_eq!(
            outcome.per_replica.iter().map(|r| r.outcome.iterations).sum::<u64>(),
            outcome.iterations
        );
    }

    /// Completed records preserve the trace's token counts bit for bit, so
    /// merged fleet token totals equal the input totals over the completed
    /// set — tokens are neither lost nor duplicated by routing or merging.
    #[test]
    fn fleet_records_conserve_token_totals(
        seed in 0u64..10_000,
        count in 1usize..25,
        replicas in 1usize..5,
        policy_idx in 0usize..5,
    ) {
        let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(4.0, count, seed);
        let by_id: BTreeMap<RequestId, (u64, u64)> = trace
            .requests
            .iter()
            .map(|r| (r.id, (r.input_len, r.output_len)))
            .collect();
        let mut fleet = FleetEngine::new(FleetConfig::paper_fleet(
            SystemKind::LoongServe,
            replicas,
            policy(policy_idx),
        ));
        let outcome = fleet.run(&trace);
        for record in &outcome.records {
            let &(input_len, output_len) = by_id.get(&record.id).expect("record id from trace");
            prop_assert_eq!(record.input_len, input_len);
            prop_assert_eq!(record.output_len, output_len);
        }
        // Totals over the completed set match the trace's totals over the
        // same set (and therefore the whole trace when everything
        // completes).
        let completed: BTreeSet<RequestId> = outcome.records.iter().map(|r| r.id).collect();
        let expected_tokens: u64 = trace
            .requests
            .iter()
            .filter(|r| completed.contains(&r.id))
            .map(|r| r.input_len + r.output_len)
            .sum();
        let merged_tokens: u64 = outcome
            .records
            .iter()
            .map(|r| r.input_len + r.output_len)
            .sum();
        prop_assert_eq!(merged_tokens, expected_tokens);
    }

    /// Identically-configured fleet runs are bit-for-bit reproducible for
    /// every policy (the property the golden digests spot-check).
    #[test]
    fn fleet_runs_are_deterministic(
        seed in 0u64..10_000,
        count in 1usize..15,
        replicas in 1usize..4,
        policy_idx in 0usize..5,
    ) {
        let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(6.0, count, seed);
        let run = || {
            let mut fleet = FleetEngine::new(FleetConfig::paper_fleet(
                SystemKind::LoongServe,
                replicas,
                policy(policy_idx),
            ));
            fleet.run(&trace)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.assignments, b.assignments);
        prop_assert_eq!(a.records, b.records);
        prop_assert_eq!(a.rejected, b.rejected);
        prop_assert_eq!(a.sim_time, b.sim_time);
        prop_assert_eq!(a.iterations, b.iterations);
    }
}
