//! View-equivalence properties for the O(active) engine loop.
//!
//! The engine maintains its scheduler-view inputs (pending/decoding sets,
//! idle/busy partition, KV residency) incrementally. Debug builds shadow
//! every scheduling point with a naive full-scan rebuild — the exact code
//! the indices replaced — and `assert_eq!` the two (see the `audit` module
//! in `loongserve::engine`). The properties here drive that audit across
//! random traces, rates and systems: any divergence between the
//! incremental view and the O(all-requests) rebuild panics inside the run.
//!
//! A second set of properties checks the `RequestTable` phase indices
//! directly against a brute-force model (an append-only arrival log plus a
//! per-request phase map), since the engine only exercises the transitions
//! its schedulers happen to take.

use loong_simcore::table::{PhaseClass, RequestTable};
use loongserve::prelude::*;
use proptest::prelude::*;

const PROPTEST_SEED: u64 = 0x7669_6577_6571_7576;

fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

// Debug assertions are what arm the engine's per-scheduling-point audit;
// without them this suite would only test outcomes, not views.
#[cfg(not(debug_assertions))]
compile_error!("view_equivalence must run with debug assertions enabled");

proptest! {
    // Every case is a full engine run whose every scheduling point is
    // audited, so a small case budget still checks thousands of views.
    #![proptest_config(ci_config(12))]

    /// The incrementally maintained view equals a naive full-scan rebuild
    /// at every scheduling point, for random traces across the systems
    /// that exercise all four action kinds (LoongServe: prefill, decode
    /// and migration; the SplitFuse baseline: chunked prefill).
    #[test]
    fn incremental_views_match_full_rebuild_on_random_traces(
        seed in 0u64..10_000,
        rate_milli in 100u64..4_000,
        count in 5usize..30,
        system_idx in 0usize..4,
    ) {
        let kind = [
            SystemKind::LoongServe,
            SystemKind::Vllm,
            SystemKind::LightLlmSplitFuse,
            SystemKind::DistServe,
        ][system_idx];
        let rate = rate_milli as f64 / 1000.0;
        let trace = WorkloadSpec::Dataset(DatasetKind::Mixed).generate(rate, count, seed);
        let system = SystemUnderTest::paper_single_node(kind);
        // The run panics if any scheduling point's incremental view
        // diverges from the naive rebuild.
        let (_, outcome) = system.run(&trace, rate, &SloSpec::default_for_lwm());
        prop_assert_eq!(
            outcome.records.len() + outcome.rejected.len() + outcome.unfinished,
            count
        );
    }

    /// Same property under a simulated-time cap, which exits the loop
    /// mid-flight and stresses the "work still in flight" bookkeeping.
    #[test]
    fn incremental_views_match_under_time_cap(
        seed in 0u64..10_000,
        cap_ds in 1u64..80,
        count in 5usize..20,
    ) {
        let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(2.0, count, seed);
        let mut config = EngineConfig::paper_single_node();
        config.max_sim_time = Some(SimDuration::from_secs(cap_ds as f64 / 10.0));
        let registry = InstanceRegistry::build(&config.cluster, config.tp);
        let scheduler = SystemKind::LoongServe.build_scheduler(&registry.all_ids(), Some(&trace));
        let mut engine = ServingEngine::new(config, scheduler);
        let outcome = engine.run(&trace);
        prop_assert!(outcome.records.len() + outcome.rejected.len() + outcome.unfinished <= count);
    }

    /// `RequestTable` phase-index iteration equals a brute-force scan of an
    /// append-only arrival log for arbitrary admit/transition sequences.
    #[test]
    fn request_table_matches_bruteforce_model(
        ops in proptest::collection::vec((0u64..12, 0usize..5), 1..200)
    ) {
        const CLASSES: [PhaseClass; 5] = [
            PhaseClass::Pending,
            PhaseClass::DecodeReady,
            PhaseClass::InFlight,
            PhaseClass::Swapped,
            PhaseClass::Done,
        ];
        let mut table: RequestTable<u64> = RequestTable::new();
        // Model: per-id (admitted, class) plus an admission-order log — the
        // log plays the role of the engine's append-only arrival vector.
        let mut model: Vec<(RequestId, bool, PhaseClass)> = Vec::new();
        let mut admission_log: Vec<RequestId> = Vec::new();

        for (raw, op) in ops {
            let id = RequestId(raw);
            let known = model.iter().any(|&(i, _, _)| i == id);
            match op {
                0 if !known => {
                    table.insert(id, raw);
                    model.push((id, false, PhaseClass::Pending));
                }
                1 if known => {
                    let entry = model.iter_mut().find(|(i, _, _)| *i == id).unwrap();
                    if !entry.1 {
                        entry.1 = true;
                        admission_log.push(id);
                        table.admit(id);
                    }
                }
                c if known => {
                    let class = CLASSES[c % 5];
                    model.iter_mut().find(|(i, _, _)| *i == id).unwrap().2 = class;
                    table.set_class(id, class);
                }
                _ => {}
            }
            prop_assert!(table.check_invariants().is_ok());
            for class in CLASSES {
                // Naive rebuild: scan the admission log and filter by the
                // current class — exactly what the old engine loop did.
                let naive: Vec<RequestId> = admission_log
                    .iter()
                    .filter(|&&i| {
                        model
                            .iter()
                            .any(|&(j, admitted, c)| j == i && admitted && c == class)
                    })
                    .copied()
                    .collect();
                let incremental: Vec<RequestId> = table.iter_class(class).collect();
                prop_assert_eq!(incremental, naive);
            }
        }
    }
}

/// Admission order in the model above follows op order, which is also the
/// order `admit` assigns ranks — but requests admitted in the same batch of
/// simultaneous events must keep FIFO order too. The engine relies on the
/// event queue for that; this pins the composition of the two.
#[test]
fn simultaneous_arrivals_keep_fifo_order_in_pending_view() {
    use loong_simcore::ids::RequestId;
    use loong_simcore::time::SimTime;
    use loong_workload::request::Request;

    let t = SimTime::from_secs(1.0);
    // Same arrival instant, descending ids: the pending view must list
    // them in trace order, not id order.
    let requests = vec![
        Request::new(RequestId(2), t, 4_000, 4),
        Request::new(RequestId(1), t, 4_000, 4),
        Request::new(RequestId(0), t, 4_000, 4),
    ];
    let trace = Trace::from_requests("fifo", requests);
    let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
    let (_, outcome) = system.run(&trace, 1.0, &SloSpec::default_for_lwm());
    // The audit inside the run already checked view order; completing all
    // three confirms the engine processed them.
    assert_eq!(outcome.records.len(), 3);
}
