//! End-to-end integration tests: full serving runs through the public API.
//!
//! These tests exercise the whole stack — workload generation, the serving
//! engine, the LoongServe global manager, the ESP mechanisms, the KV pool
//! and the metrics — and check the qualitative properties the paper's
//! evaluation reports.

use loongserve::prelude::*;

fn run(
    kind: SystemKind,
    dataset: DatasetKind,
    rate: f64,
    requests: usize,
    seed: u64,
) -> (RunSummary, RunOutcome) {
    let system = SystemUnderTest::paper_single_node(kind);
    let trace = WorkloadSpec::Dataset(dataset).generate(rate, requests, seed);
    system.run(&trace, rate, &SloSpec::default_for_lwm())
}

#[test]
fn loongserve_serves_sharegpt_to_completion() {
    let (summary, outcome) = run(SystemKind::LoongServe, DatasetKind::ShareGpt, 5.0, 80, 11);
    assert_eq!(summary.completed, 80, "all requests should finish");
    assert_eq!(outcome.unfinished, 0);
    assert!(outcome.rejected.is_empty());
    assert!(summary.throughput_tokens_per_s > 0.0);
    // Every record must be causally consistent.
    for r in &outcome.records {
        assert!(r.validate().is_ok(), "{:?}", r);
    }
}

#[test]
fn loongserve_serves_long_context_workloads() {
    let (summary, outcome) = run(SystemKind::LoongServe, DatasetKind::LvEval, 0.05, 25, 13);
    assert_eq!(summary.completed, 25);
    assert_eq!(outcome.unfinished, 0);
    // Long-context prefills dominate: normalised input latency stays well
    // below one second per token even for ~100K+ prompts.
    assert!(
        summary.input_latency.mean < 1.0,
        "input latency {}",
        summary.input_latency.mean
    );
}

#[test]
fn loongserve_uses_elastic_scaling_on_mixed_workload() {
    let (_summary, outcome) = run(SystemKind::LoongServe, DatasetKind::Mixed, 0.3, 80, 17);
    // Mixed workloads have long prefills followed by light decode phases, so
    // proactive scale-downs must happen.
    let downs = outcome
        .scaling_events
        .iter()
        .filter(|e| e.kind == ScalingEventKind::ProactiveScaleDown)
        .count();
    assert!(
        downs > 0,
        "expected proactive scale-downs on the mixed workload"
    );
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let (a_summary, a_outcome) = run(SystemKind::LoongServe, DatasetKind::Mixed, 0.2, 40, 23);
    let (b_summary, b_outcome) = run(SystemKind::LoongServe, DatasetKind::Mixed, 0.2, 40, 23);
    assert_eq!(a_summary, b_summary);
    assert_eq!(a_outcome.records, b_outcome.records);
    assert_eq!(a_outcome.iterations, b_outcome.iterations);
}

#[test]
fn higher_load_never_improves_latency() {
    let (low, _) = run(SystemKind::LoongServe, DatasetKind::LEval, 0.2, 40, 29);
    let (high, _) = run(SystemKind::LoongServe, DatasetKind::LEval, 2.0, 40, 29);
    assert!(
        high.per_token_latency.mean >= low.per_token_latency.mean * 0.9,
        "latency at high load ({}) should not be meaningfully lower than at low load ({})",
        high.per_token_latency.mean,
        low.per_token_latency.mean
    );
}

#[test]
fn sweep_produces_monotone_slo_curve_shape() {
    let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
    let config = SweepConfig {
        workload: WorkloadSpec::Dataset(DatasetKind::ShareGpt),
        rates: vec![1.0, 10.0, 40.0],
        requests_per_run: 50,
        slo: SloSpec::default_for_lwm(),
        seed: 31,
        parallel: false,
    };
    let result = sweep_system(&system, &config);
    assert_eq!(result.summaries.len(), 3);
    assert_eq!(result.slo_curve.len(), 3);
    // Attainment at the lowest rate should be at least as good as at the
    // highest rate.
    let first = result.slo_curve.first().unwrap().attainment;
    let last = result.slo_curve.last().unwrap().attainment;
    assert!(
        first >= last - 1e-9,
        "attainment should not improve with load: {first} vs {last}"
    );
}

#[test]
fn two_node_cluster_serves_more_load_than_one() {
    let trace = WorkloadSpec::Dataset(DatasetKind::Mixed).generate(0.5, 60, 37);
    let slo = SloSpec::default_for_lwm();
    let single = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
    let double = SystemUnderTest::paper_two_node(SystemKind::LoongServe);
    let (s1, _) = single.run(&trace, 0.5, &slo);
    let (s2, _) = double.run(&trace, 0.5, &slo);
    assert_eq!(s1.completed, 60);
    assert_eq!(s2.completed, 60);
    // Twice the GPUs should not be slower end to end.
    assert!(
        s2.per_token_latency.mean <= s1.per_token_latency.mean * 1.1,
        "16 GPUs ({}) should be at least as fast as 8 ({})",
        s2.per_token_latency.mean,
        s1.per_token_latency.mean
    );
}

#[test]
fn engine_respects_sim_time_cap() {
    let mut config = EngineConfig::paper_single_node();
    config.max_sim_time = Some(SimDuration::from_secs(1.0));
    let trace = WorkloadSpec::Dataset(DatasetKind::LvEval).generate(0.1, 30, 41);
    let scheduler = SystemKind::LoongServe.build_scheduler(
        &InstanceRegistry::build(&config.cluster, config.tp).all_ids(),
        Some(&trace),
    );
    let mut engine = ServingEngine::new(config, scheduler);
    let outcome = engine.run(&trace);
    assert!(outcome.records.len() + outcome.unfinished + outcome.rejected.len() == 30);
    assert!(
        outcome.unfinished > 0,
        "a 1-second cap cannot finish 30 long-context requests"
    );
}

#[test]
fn identical_runs_reproduce_bit_for_bit() {
    // The whole repository's reproducibility story rests on engine runs
    // being a pure function of (system, trace, slo). Run every system twice
    // on the same trace and require identical summaries and records —
    // this catches any hash-order dependence sneaking into a scheduler.
    let slo = SloSpec::default_for_lwm();
    let trace = WorkloadSpec::Dataset(DatasetKind::Mixed).generate(0.5, 40, 17);
    for kind in [
        SystemKind::LoongServe,
        SystemKind::Vllm,
        SystemKind::LightLlmSplitFuse,
        SystemKind::DistServe,
    ] {
        let (s1, o1) = SystemUnderTest::paper_single_node(kind).run(&trace, 0.5, &slo);
        let (s2, o2) = SystemUnderTest::paper_single_node(kind).run(&trace, 0.5, &slo);
        assert_eq!(s1, s2, "{kind:?}: summaries differ between identical runs");
        assert_eq!(
            o1.records, o2.records,
            "{kind:?}: request records differ between identical runs"
        );
        assert_eq!(o1.rejected, o2.rejected);
        assert_eq!(o1.unfinished, o2.unfinished);
    }
}
