//! Shared digest machinery for the golden determinism suites.
//!
//! Both `tests/determinism_golden.rs` (single engine) and
//! `tests/fleet_equivalence.rs` (fleet tier) pin 64-bit digests of complete
//! outcomes. The field walk lives here, once: when `RunOutcome` grows a
//! field, extending [`outcome_digest`] updates **every** golden suite at
//! the same time, so no suite can silently keep pinning the old shape.
//!
//! Included into each test binary via `#[path = "golden_util.rs"]`; the
//! pinned constants stay in the suites themselves. Each suite uses a
//! different subset of the helpers, so unused-item lints are silenced
//! per-binary here.
#![allow(dead_code)]

use loongserve::prelude::*;

/// FNV-1a over a stream of u64 words.
pub struct Digest(pub u64);

impl Digest {
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    pub fn word(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub fn time(&mut self, t: SimTime) {
        self.word(t.as_secs().to_bits());
    }

    pub fn str(&mut self, s: &str) {
        self.word(s.len() as u64);
        for b in s.bytes() {
            self.word(b as u64);
        }
    }

    /// Folds every field of a [`RunOutcome`] into the digest.
    pub fn outcome(&mut self, outcome: &RunOutcome) {
        self.word(outcome.records.len() as u64);
        for r in &outcome.records {
            self.word(r.id.raw());
            self.time(r.arrival);
            self.word(r.input_len);
            self.word(r.output_len);
            self.time(r.prefill_start);
            self.time(r.first_token);
            self.time(r.finish);
            self.word(r.preemptions as u64);
        }
        self.word(outcome.rejected.len() as u64);
        for (id, reason) in &outcome.rejected {
            self.word(id.raw());
            self.str(reason);
        }
        self.word(outcome.unfinished as u64);
        self.word(outcome.scaling_events.len() as u64);
        for e in &outcome.scaling_events {
            self.time(e.at);
            self.word(e.delta_instances as u64);
        }
        self.time(outcome.sim_time);
        self.word(outcome.iterations);
        self.word(outcome.migration_bytes.to_bits());
        self.word(outcome.scheduler_calls);
        // The pressure block participates only when the run actually
        // experienced pressure: an unpressured run must keep reproducing
        // the pre-subsystem digests bit for bit (the zero-cost-when-
        // disabled invariant the golden constants pin), while pressured
        // runs still pin every counter.
        if !outcome.pressure.is_zero() {
            self.word(outcome.pressure.preemptions);
            self.word(outcome.pressure.swap_out_events);
            self.word(outcome.pressure.swap_in_events);
            self.word(outcome.pressure.swap_out_bytes.to_bits());
            self.word(outcome.pressure.swap_in_bytes.to_bits());
            self.word(outcome.pressure.swap_stall_s.to_bits());
            self.word(outcome.pressure.max_outstanding_swapped_tokens);
        }
        // Same contract for the prefix-cache block: cache-off (and
        // never-hit) runs keep reproducing the pre-tier digests bit for
        // bit, while cache-active runs pin every counter. `prefilled_tokens`
        // is deliberately not folded on the zero-cache path: it is fully
        // determined by the iteration stream the digest already pins, and
        // folding it unconditionally would invalidate the pinned constants
        // without adding discrimination.
        if !outcome.cache.is_zero() {
            self.word(outcome.cache.lookups);
            self.word(outcome.cache.hits);
            self.word(outcome.cache.reused_tokens);
            self.word(outcome.cache.saved_prefill_s.to_bits());
            self.word(outcome.cache.evicted_entries);
            self.word(outcome.cache.evicted_tokens);
            self.word(outcome.cache.retained_tokens_high_water);
            self.word(outcome.prefilled_tokens);
        }
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

/// A bit-for-bit digest of everything in a [`RunOutcome`].
pub fn outcome_digest(outcome: &RunOutcome) -> u64 {
    let mut d = Digest::new();
    d.outcome(outcome);
    d.0
}
