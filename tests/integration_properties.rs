//! Property-based tests over the core data structures and invariants.
//!
//! These use `proptest` to explore input spaces the unit tests cannot
//! enumerate: arbitrary placement problems, arbitrary allocate/release
//! sequences against the unified KV pool, arbitrary batches through the
//! cost model, and arbitrary traces through the full LoongServe engine.

use loongserve::prelude::*;
use proptest::prelude::*;

/// Fixed RNG seed for every property suite in this file, so CI runs are
/// bit-for-bit reproducible. Override locally with `PROPTEST_RNG_SEED` to
/// explore other seeds.
const PROPTEST_SEED: u64 = 0x4c6f_6f6e_6753_7276;

/// Pinned configuration: an explicit case budget (keeps CI fast), no
/// failure-persistence files written into the tree, and a fixed seed.
/// Deliberately spelled out rather than relying on the vendored crate's
/// defaults, so this suite stays pinned even if those defaults change.
fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

proptest! {
    #![proptest_config(ci_config(64))]

    /// Any feasible placement plan covers exactly the requested tokens, uses
    /// only candidate instances, and never exceeds any instance's free slots.
    #[test]
    fn placement_plans_are_exact_and_feasible(
        tokens in 0u64..2_000_000,
        frees in proptest::collection::vec(0u64..600_000, 1..8),
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            PlacementStrategy::PackMostFree,
            PlacementStrategy::Balanced,
            PlacementStrategy::EvenSplit,
        ][strategy_idx];
        let candidates: Vec<(InstanceId, u64)> = frees
            .iter()
            .enumerate()
            .map(|(i, &f)| (InstanceId::from(i), f))
            .collect();
        let total: u64 = frees.iter().sum();
        match plan_placement(RequestId(0), tokens, &candidates, strategy) {
            Some(plan) => {
                prop_assert_eq!(plan.total_tokens(), tokens);
                prop_assert!(plan.validate().is_ok());
                for (inst, t) in &plan.spans {
                    let free = candidates.iter().find(|(i, _)| i == inst).unwrap().1;
                    prop_assert!(*t <= free, "span {} exceeds free {}", t, free);
                }
            }
            None => {
                // Only the even-split strategy may fail despite sufficient
                // total capacity (that is exactly its weakness); the other
                // strategies must succeed whenever the total fits.
                if strategy != PlacementStrategy::EvenSplit {
                    prop_assert!(tokens > total, "plan failed although {tokens} <= {total}");
                }
            }
        }
    }

    /// The unified pool's bookkeeping — both residency indexes and the
    /// host swap tier — stays consistent under arbitrary interleavings of
    /// commit/append/migrate/release/swap_out/swap_in/drain.
    #[test]
    fn unified_pool_invariants_hold_under_random_operations(
        ops in proptest::collection::vec((0u8..7, 0u64..6, 0u64..4, 1u64..5_000), 1..80)
    ) {
        let mut pool = UnifiedKvPool::new(4, 20_000);
        pool.enable_host_tier(30_000);
        let all: Vec<InstanceId> = (0..4u64).map(InstanceId).collect();
        let mut live: Vec<RequestId> = Vec::new();
        for (op, req_raw, inst_raw, tokens) in ops {
            let req = RequestId(req_raw);
            let inst = InstanceId(inst_raw % 4);
            match op {
                0 => {
                    if pool.append(req, inst, tokens).is_ok() && !live.contains(&req) {
                        live.push(req);
                    }
                }
                1 => {
                    let _ = pool.release(req);
                    // Device-side release does not touch the host tier; a
                    // swapped request stays live until the cleanup pass
                    // swaps it back in.
                    if pool.swapped_tokens_of(req) == 0 {
                        live.retain(|r| *r != req);
                    }
                }
                2 => {
                    let to = InstanceId((inst_raw + 1) % 4);
                    let held = pool.instance(inst).used_by(req);
                    if held > 0 {
                        let _ = pool.migrate(req, inst, to, held.min(tokens));
                    }
                }
                3 => {
                    let _ = pool.drain_instance(req, inst);
                }
                4 => {
                    // A committed plan covers `tokens` across every instance.
                    if let Some(plan) = pool.plan(req, tokens, &all, PlacementStrategy::Balanced) {
                        if pool.commit(&plan).is_ok() && !live.contains(&req) {
                            live.push(req);
                        }
                    }
                }
                5 => {
                    let _ = pool.swap_out(req);
                }
                _ => {
                    let _ = pool.swap_in(req, &all, PlacementStrategy::PackMostFree);
                }
            }
            prop_assert!(pool.check_invariants().is_ok());
            prop_assert!(pool.total_used() + pool.total_free() == pool.total_capacity());
            // Whole-request swap granularity: never split across tiers.
            for &r in &live {
                prop_assert!(
                    pool.tokens_of(r) == 0 || pool.swapped_tokens_of(r) == 0,
                    "request split across device and host tiers"
                );
            }
        }
        // Releasing everything (device and host side) empties both tiers.
        for req in live {
            pool.release(req);
            if pool.swapped_tokens_of(req) > 0 {
                pool.swap_in(req, &all, PlacementStrategy::PackMostFree)
                    .expect("everything else was released, so the device has room");
                pool.release(req);
            }
        }
        let leftover: u64 = pool.resident_requests().iter().map(|&r| pool.tokens_of(r)).sum();
        prop_assert_eq!(pool.total_used(), leftover);
        prop_assert_eq!(pool.total_swapped(), 0);
    }

    /// Iteration costs are positive, finite, and monotone in batch size.
    #[test]
    fn cost_model_is_positive_and_monotone(
        len_a in 16u64..200_000,
        len_b in 16u64..200_000,
        tp_idx in 0usize..3,
        sp in 1usize..5,
    ) {
        let tp = [1usize, 2, 4][tp_idx];
        let cm = CostModel::new(ModelConfig::lwm_1m_text());
        let p = ParallelConfig::new(tp, sp);
        let link = LinkSpec::nvlink_a800();
        let single = cm.prefill_cost(&[len_a], p, link).total();
        let double = cm.prefill_cost(&[len_a, len_b], p, link).total();
        prop_assert!(single.is_finite() && single > 0.0);
        prop_assert!(double >= single, "adding a request cannot make the iteration faster");

        let d1 = cm.decode_cost(&[len_a], p, 1, link).total();
        let d2 = cm.decode_cost(&[len_a, len_b], p, 1, link).total();
        prop_assert!(d1.is_finite() && d1 > 0.0);
        prop_assert!(d2 >= d1 * 0.999);
    }

    /// The analytical model fitted on roofline samples predicts unseen
    /// batches within a loose error bound (Figure 15's property).
    #[test]
    fn fitted_analytical_model_generalises(validation_len in 20_000u64..400_000) {
        let cm = CostModel::new(ModelConfig::lwm_1m_text());
        let mut rng = SimRng::seed(5);
        let p = ParallelConfig::new(2, 4);
        let sib = ScalingInfoBase::profile(&cm, &[p], LinkSpec::nvlink_a800(), 0.0, &mut rng);
        let model = sib.prefill_model(p).expect("profiled");
        let truth = cm.prefill_cost(&[validation_len], p, LinkSpec::nvlink_a800()).total();
        let predicted = model.predict(&[validation_len]);
        let err = ((predicted - truth) / truth).abs();
        prop_assert!(err < 0.15, "relative error {err} too large at len {validation_len}");
    }
}

proptest! {
    // Full engine runs are expensive; keep the case count small.
    #![proptest_config(ci_config(8))]

    /// Request accounting is conserved for arbitrary small traces and no
    /// completed record violates causality, for both LoongServe and vLLM.
    #[test]
    fn engine_conserves_requests_on_arbitrary_traces(
        seed in 0u64..1_000,
        rate_milli in 50u64..2_000,
        count in 5usize..25,
        system_idx in 0usize..2,
    ) {
        let kind = [SystemKind::LoongServe, SystemKind::Vllm][system_idx];
        let rate = rate_milli as f64 / 1000.0;
        let trace = WorkloadSpec::Dataset(DatasetKind::Mixed).generate(rate, count, seed);
        let system = SystemUnderTest::paper_single_node(kind);
        let (summary, outcome) = system.run(&trace, rate, &SloSpec::default_for_lwm());
        prop_assert_eq!(summary.completed + outcome.rejected.len() + outcome.unfinished, count);
        for record in &outcome.records {
            prop_assert!(record.validate().is_ok());
            prop_assert!(record.arrival >= SimTime::ZERO);
        }
    }
}
