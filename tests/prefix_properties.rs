//! Properties of the prefix-cache tier.
//!
//! Over multi-turn conversation traces these pin the tier's contract:
//!
//! * **Reuse correctness** — with the cache enabled, the hit rate is
//!   positive, total prefilled prompt tokens are strictly below the
//!   cache-off run, and every request still produces exactly its trace
//!   output (same completed set, same per-request token counts): the cache
//!   changes *work*, never *results*.
//! * **Eviction-under-pressure disjointness** — with a starved KV pool and
//!   a pressure policy armed on top of the cache, runs still terminate and
//!   every scheduling point upholds disjointness: retained prefixes only
//!   ever hold KV of finished requests (the engine's debug audit asserts
//!   it point-wise; these runs execute with debug assertions on), so
//!   pressure victim selection and prefix eviction can never touch the
//!   same request.
//! * **Determinism across fleet routing** — identically seeded fleet runs
//!   agree bit for bit under every routing policy, a 1-replica
//!   cache-enabled fleet reproduces the bare cache-enabled engine, and
//!   prefix-affinity routing never hits less than conversation-splitting
//!   round-robin.
//! * **Zero-cost when disabled** — cache-off runs report all-zero cache
//!   stats and digest identically to the pre-tier engine; the pinned
//!   constants in `tests/determinism_golden.rs` pin that externally.

use loongserve::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[path = "golden_util.rs"]
mod golden_util;
use golden_util::outcome_digest;

const PROPTEST_SEED: u64 = 0x9ef1_0000_cafe_2026;

fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

/// A multi-turn ShareGPT trace: `conversations` conversations arriving as a
/// Poisson process, each with a geometric number of strictly-growing turns.
fn multi_turn_trace(conversations: usize, rate: f64, seed: u64) -> Trace {
    let mut rng = SimRng::seed(seed);
    Trace::generate_multi_turn(
        DatasetKind::ShareGpt,
        &MultiTurnProfile::sharegpt(),
        ArrivalProcess::Poisson { rate },
        conversations,
        &mut rng,
    )
}

fn run_system(kind: SystemKind, trace: &Trace, cache: bool) -> RunOutcome {
    let mut system = SystemUnderTest::paper_single_node(kind);
    if cache {
        system = system.with_prefix_cache(PrefixCacheConfig::default());
    }
    system.build_engine(Some(trace)).run(trace)
}

/// Per-request `(input_len, output_len)` of the completed records.
fn completion_map(outcome: &RunOutcome) -> BTreeMap<RequestId, (u64, u64)> {
    outcome
        .records
        .iter()
        .map(|r| (r.id, (r.input_len, r.output_len)))
        .collect()
}

#[test]
fn cache_reuses_prefixes_and_preserves_every_output() {
    let trace = multi_turn_trace(30, 0.4, 0x5eed_0001);
    assert!(trace.len() > 30, "trace should contain follow-up turns");
    let off = run_system(SystemKind::LoongServe, &trace, false);
    let on = run_system(SystemKind::LoongServe, &trace, true);

    // Both runs serve everything.
    assert_eq!(off.unfinished, 0);
    assert_eq!(on.unfinished, 0);
    assert!(off.rejected.is_empty() && on.rejected.is_empty());

    // Identical per-request results: same completed set, same token counts,
    // and every record carries its trace-specified output.
    assert_eq!(completion_map(&off), completion_map(&on));
    let by_id: BTreeMap<RequestId, &Request> = trace.requests.iter().map(|r| (r.id, r)).collect();
    for rec in &on.records {
        let req = by_id[&rec.id];
        assert_eq!(rec.input_len, req.input_len);
        assert_eq!(rec.output_len, req.output_len);
        assert!(rec.validate().is_ok());
    }

    // The cache actually worked: positive hit rate, reused tokens, and
    // strictly less prefill work than the cache-off run.
    assert!(on.cache.hits > 0, "multi-turn trace must hit the cache");
    assert!(on.cache.hit_rate() > 0.0);
    assert!(on.cache.reused_tokens > 0);
    assert!(on.cache.saved_prefill_s > 0.0);
    assert!(on.cache.retained_tokens_high_water > 0);
    assert!(
        on.prefilled_tokens < off.prefilled_tokens,
        "cache-on prefilled {} tokens, cache-off {}",
        on.prefilled_tokens,
        off.prefilled_tokens
    );
    assert_eq!(
        on.prefilled_tokens + on.cache.reused_tokens,
        off.prefilled_tokens,
        "every prompt token is either prefilled or adopted exactly once"
    );

    // The cache-off run reports all-zero cache stats.
    assert!(off.cache.is_zero());
}

#[test]
fn cache_off_runs_are_bit_for_bit_reproducible() {
    let trace = multi_turn_trace(12, 0.5, 0x5eed_0002);
    let a = run_system(SystemKind::LoongServe, &trace, false);
    let b = run_system(SystemKind::LoongServe, &trace, false);
    assert_eq!(outcome_digest(&a), outcome_digest(&b));
    assert!(a.cache.is_zero());
}

proptest! {
    #![proptest_config(ci_config(8))]

    /// Reuse correctness over random multi-turn workloads and both the
    /// LoongServe manager and the vLLM-style baseline (the engine adopts
    /// prefixes uniformly for every scheduler).
    #[test]
    fn reuse_changes_work_never_results(
        seed in 0u64..1_000_000,
        conversations in 6usize..20,
        rate_centi in 20u64..80,
        vllm_sel in 0usize..2,
    ) {
        let kind = if vllm_sel == 1 { SystemKind::Vllm } else { SystemKind::LoongServe };
        let trace = multi_turn_trace(conversations, rate_centi as f64 / 100.0, seed);
        let off = run_system(kind, &trace, false);
        let on = run_system(kind, &trace, true);

        prop_assert_eq!(completion_map(&off), completion_map(&on));
        prop_assert_eq!(off.unfinished, on.unfinished);
        prop_assert_eq!(&off.rejected, &on.rejected);
        // Prefill work never grows, and shrinks by exactly the adopted
        // tokens whenever the cache hit.
        prop_assert_eq!(
            on.prefilled_tokens + on.cache.reused_tokens,
            off.prefilled_tokens
        );
        if on.cache.hits > 0 {
            prop_assert!(on.prefilled_tokens < off.prefilled_tokens);
        }
        // Identical seeds reproduce identical cache behaviour.
        let again = run_system(kind, &trace, true);
        prop_assert_eq!(outcome_digest(&on), outcome_digest(&again));
        prop_assert_eq!(on.cache, again.cache);
    }

    /// Eviction under a starved pool and an armed pressure policy: the run
    /// terminates with every request served, while the engine's per-point
    /// debug audit (active in these builds) proves retained prefixes stay
    /// disjoint from the active working set the whole way.
    #[test]
    fn eviction_under_pressure_stays_disjoint_and_terminates(
        seed in 0u64..1_000_000,
        conversations in 5usize..12,
        recompute_sel in 0usize..2,
    ) {
        let trace = multi_turn_trace(conversations, 1.0, seed);
        let mode = if recompute_sel == 1 { PressureMode::Recompute } else { PressureMode::SwapToHost };
        let outcome = SystemUnderTest::paper_single_node(SystemKind::LoongServe)
            .with_prefix_cache(PrefixCacheConfig::default())
            .with_pressure(mode)
            // ~2% of the real budget: decode growth crosses the pressure
            // watermarks and retention competes with admission.
            .with_kv_capacity(4_000)
            .with_max_sim_time(SimDuration::from_secs(200_000.0))
            .build_engine(Some(&trace))
            .run(&trace);
        prop_assert_eq!(outcome.unfinished, 0, "no livelock under pressure + cache");
        prop_assert!(outcome.rejected.is_empty());
        let by_id: BTreeMap<RequestId, &Request> =
            trace.requests.iter().map(|r| (r.id, r)).collect();
        prop_assert_eq!(outcome.records.len(), trace.len());
        for rec in &outcome.records {
            prop_assert_eq!(rec.output_len, by_id[&rec.id].output_len);
        }
    }

    /// Fleet determinism: every routing policy reproduces assignments,
    /// records and cache counters bit for bit across identically seeded
    /// runs, with the cache enabled on every replica.
    #[test]
    fn fleet_routing_policies_are_deterministic_with_cache(
        seed in 0u64..1_000_000,
        conversations in 8usize..16,
        replicas in 2usize..4,
        policy_idx in 0usize..6,
    ) {
        let policy = match policy_idx {
            0 => RouterPolicy::RoundRobin,
            1 => RouterPolicy::JoinShortestQueue,
            2 => RouterPolicy::LeastKvLoad,
            3 => RouterPolicy::PowerOfTwoChoices { seed: 0xdecade },
            4 => RouterPolicy::PrefixAffinity,
            _ => RouterPolicy::Passthrough,
        };
        let trace = multi_turn_trace(conversations, 0.5, seed);
        let mut config = FleetConfig::paper_fleet(SystemKind::LoongServe, replicas, policy);
        config.prefix_cache = Some(PrefixCacheConfig::default());
        let a = FleetEngine::new(config.clone()).run(&trace);
        let b = FleetEngine::new(config).run(&trace);
        prop_assert_eq!(&a.assignments, &b.assignments);
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.cache, b.cache);
        prop_assert_eq!(a.total_requests(), trace.len());
    }
}

#[test]
fn one_replica_cached_fleet_reproduces_the_bare_engine() {
    let trace = multi_turn_trace(15, 0.5, 0x5eed_0003);
    let bare = run_system(SystemKind::LoongServe, &trace, true);
    let mut config = FleetConfig::paper_fleet(SystemKind::LoongServe, 1, RouterPolicy::Passthrough);
    config.prefix_cache = Some(PrefixCacheConfig::default());
    let fleet = FleetEngine::new(config).run(&trace);
    assert_eq!(fleet.records, bare.records);
    assert_eq!(fleet.iterations, bare.iterations);
    assert_eq!(fleet.cache, bare.cache);
    assert_eq!(
        outcome_digest(&fleet.per_replica[0].outcome),
        outcome_digest(&bare)
    );
}

#[test]
fn prefix_affinity_routing_beats_conversation_splitting() {
    let trace = multi_turn_trace(40, 0.8, 0x5eed_0004);
    let run_fleet = |policy: RouterPolicy| {
        let mut config = FleetConfig::paper_fleet(SystemKind::LoongServe, 3, policy);
        config.prefix_cache = Some(PrefixCacheConfig::default());
        FleetEngine::new(config).run(&trace)
    };
    let affinity = run_fleet(RouterPolicy::PrefixAffinity);
    let round_robin = run_fleet(RouterPolicy::RoundRobin);
    assert!(affinity.cache.hits > 0);
    assert!(
        affinity.cache.hits >= round_robin.cache.hits,
        "affinity ({}) must not hit less than round-robin ({})",
        affinity.cache.hits,
        round_robin.cache.hits
    );
    // Affinity keeps every turn of a conversation on one replica, so each
    // follow-up can at worst miss on timing, never on placement.
    let summary = affinity.summary(
        "LoongServe x3",
        "ShareGPT multi-turn",
        0.8,
        &SloSpec::default_for_lwm(),
    );
    assert_eq!(summary.fleet.cache, affinity.cache);
    assert_eq!(
        affinity.cache.hits,
        summary
            .per_replica
            .iter()
            .map(|s| s.cache.hits)
            .sum::<u64>()
    );
}
