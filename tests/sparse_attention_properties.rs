//! Properties of the attention-cost policy tier.
//!
//! Three contracts pin the tier (crates/model/src/attention.rs):
//!
//! * **Dense neutrality** — selecting `AttentionCostPolicy::Dense`
//!   *explicitly* reproduces every pinned golden digest bit-for-bit across
//!   the engine, fleet, reliable and elastic paths. The policy plumbing
//!   (builder, config threading, re-routed FLOP/KV terms) must be invisible
//!   when the policy is the paper's dense attention.
//! * **Monotonicity** — no sparse policy ever charges more than dense for
//!   the same batch (the modelled kernels fall back to the dense path when
//!   the context fits the budget), and page-sparse decode cost is flat in
//!   context length beyond its token budget.
//! * **Determinism** — identically seeded runs under any sparse policy
//!   agree bit-for-bit, and still drain their traces to completion.

use loongserve::prelude::*;
use proptest::prelude::*;

#[path = "golden_util.rs"]
mod golden_util;
use golden_util::{outcome_digest, Digest};

/// Fixed RNG seed so CI runs are bit-for-bit reproducible.
const PROPTEST_SEED: u64 = 0x5041_5253_4552_0a17;

fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

// ---------------------------------------------------------------------------
// Dense neutrality: the pinned goldens, reproduced with the policy selected
// explicitly. Constants are in lockstep with `tests/determinism_golden.rs`
// (engine) and `tests/fleet_equivalence.rs` / `tests/reliability_properties.rs`
// / `tests/elasticity_properties.rs` (fleet tiers); re-capture only via those
// suites' GOLDEN_PRINT procedures.
// ---------------------------------------------------------------------------

const GOLDEN_LOONGSERVE_SHAREGPT: u64 = 0x313d_174f_011c_a40b;
const GOLDEN_LOONGSERVE_MIXED: u64 = 0xe045_5f8a_c734_c8e8;
const GOLDEN_VLLM_SHAREGPT: u64 = 0x9fe5_405f_ae70_e47a;
const GOLDEN_FLEET_2X_ROUND_ROBIN: u64 = 0xb4a0_4cc9_72b0_c57f;
const GOLDEN_FLEET_4X_JSQ: u64 = 0x3598_362b_d2d5_f0d0;

fn sharegpt_trace(rate: f64, count: usize, seed: u64) -> Trace {
    WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(rate, count, seed)
}

fn run_digest_with_policy(
    kind: SystemKind,
    dataset: DatasetKind,
    rate: f64,
    count: usize,
    seed: u64,
    policy: AttentionCostPolicy,
) -> u64 {
    let trace = WorkloadSpec::Dataset(dataset).generate(rate, count, seed);
    let system = SystemUnderTest::paper_single_node(kind).with_attention(policy);
    let mut engine = system.build_engine(Some(&trace));
    outcome_digest(&engine.run(&trace))
}

/// Same digest walk as `tests/fleet_equivalence.rs`.
fn fleet_digest(outcome: &FleetOutcome) -> u64 {
    let mut d = Digest::new();
    d.word(outcome.assignments.len() as u64);
    for &(id, replica) in &outcome.assignments {
        d.word(id.raw());
        d.word(replica.raw());
    }
    d.word(outcome.per_replica.len() as u64);
    for r in &outcome.per_replica {
        d.word(r.replica.raw());
        d.word(r.assigned as u64);
        d.outcome(&r.outcome);
    }
    d.word(outcome.records.len() as u64);
    for r in &outcome.records {
        d.word(r.id.raw());
        d.time(r.finish);
    }
    d.word(outcome.rejected.len() as u64);
    d.word(outcome.unfinished as u64);
    d.time(outcome.sim_time);
    d.word(outcome.iterations);
    d.word(outcome.migration_bytes.to_bits());
    d.word(outcome.scheduler_calls);
    d.0
}

fn dense_fleet(replicas: usize, policy: RouterPolicy) -> FleetEngine {
    let mut config = FleetConfig::paper_fleet(SystemKind::LoongServe, replicas, policy);
    // Redundant on purpose: select the default explicitly to prove the
    // explicit path is the golden path.
    config.attention = AttentionCostPolicy::Dense;
    FleetEngine::new(config)
}

#[test]
fn explicit_dense_reproduces_engine_goldens() {
    for (label, expected, kind, dataset, rate) in [
        (
            "loongserve_sharegpt",
            GOLDEN_LOONGSERVE_SHAREGPT,
            SystemKind::LoongServe,
            DatasetKind::ShareGpt,
            6.0,
        ),
        (
            "loongserve_mixed",
            GOLDEN_LOONGSERVE_MIXED,
            SystemKind::LoongServe,
            DatasetKind::Mixed,
            0.8,
        ),
        (
            "vllm_sharegpt",
            GOLDEN_VLLM_SHAREGPT,
            SystemKind::Vllm,
            DatasetKind::ShareGpt,
            6.0,
        ),
    ] {
        let count = if dataset == DatasetKind::Mixed {
            40
        } else {
            80
        };
        let seed = if dataset == DatasetKind::Mixed {
            77
        } else {
            4242
        };
        let actual =
            run_digest_with_policy(kind, dataset, rate, count, seed, AttentionCostPolicy::Dense);
        assert_eq!(
            actual, expected,
            "{label}: explicit Dense diverged from the pinned golden"
        );
    }
}

#[test]
fn explicit_dense_reproduces_fleet_goldens() {
    let outcome = dense_fleet(2, RouterPolicy::RoundRobin).run(&sharegpt_trace(12.0, 80, 4242));
    assert_eq!(
        fleet_digest(&outcome),
        GOLDEN_FLEET_2X_ROUND_ROBIN,
        "explicit Dense moved the 2x round-robin fleet golden"
    );
    let outcome =
        dense_fleet(4, RouterPolicy::JoinShortestQueue).run(&sharegpt_trace(24.0, 80, 4242));
    assert_eq!(
        fleet_digest(&outcome),
        GOLDEN_FLEET_4X_JSQ,
        "explicit Dense moved the 4x JSQ fleet golden"
    );
}

#[test]
fn explicit_dense_reproduces_reliable_golden() {
    let reliability = ReliabilityConfig::disarmed()
        .with_retry(RetryPolicy::exponential(3, 0.5))
        .with_breaker(CircuitBreakerConfig::new(3, 60.0, 120.0));
    let outcome = dense_fleet(2, RouterPolicy::RoundRobin)
        .run_reliable(&sharegpt_trace(12.0, 80, 4242), &reliability);
    assert_eq!(
        fleet_digest(&outcome.fleet),
        GOLDEN_FLEET_2X_ROUND_ROBIN,
        "explicit Dense moved the armed-idle reliable golden"
    );
}

#[test]
fn explicit_dense_reproduces_elastic_golden() {
    let outcome = dense_fleet(2, RouterPolicy::RoundRobin).run_elastic(
        &sharegpt_trace(12.0, 80, 4242),
        &ElasticConfig::armed_idle(2),
    );
    assert_eq!(
        fleet_digest(&outcome.fleet),
        GOLDEN_FLEET_2X_ROUND_ROBIN,
        "explicit Dense moved the armed-idle elastic golden"
    );
}

// ---------------------------------------------------------------------------
// Monotonicity and saturation of the sparse policies, over random batches.
// ---------------------------------------------------------------------------

fn cost_models() -> (CostModel, Vec<CostModel>) {
    let dense = CostModel::builder(ModelConfig::lwm_1m_text()).build();
    let sparse = vec![
        CostModel::builder(ModelConfig::lwm_1m_text())
            .attention(AttentionCostPolicy::page_sparse())
            .build(),
        CostModel::builder(ModelConfig::lwm_1m_text())
            .attention(AttentionCostPolicy::hierarchical())
            .build(),
    ];
    (dense, sparse)
}

proptest! {
    #![proptest_config(ci_config(64))]

    /// No sparse policy ever prices a prefill, decode or chunked-prefill
    /// iteration above dense for the same batch and group shape.
    #[test]
    fn sparse_cost_never_exceeds_dense(
        lens in proptest::collection::vec(1u64..600_000, 1..12),
        tp_idx in 0usize..3,
        sp_idx in 0usize..3,
        masters_sel in 0usize..2,
        chunk in 1u64..8_192,
        processed in 0u64..400_000,
    ) {
        let (dense, sparse_models) = cost_models();
        let parallel = ParallelConfig::new([1, 2, 4][tp_idx], [1, 2, 4][sp_idx]);
        let link = LinkSpec::nvlink_a800();
        let masters = if masters_sel == 0 { 1 } else { parallel.sp };
        for cm in &sparse_models {
            let label = cm.attention.label();
            let (s, d) = (
                cm.prefill_cost(&lens, parallel, link).total(),
                dense.prefill_cost(&lens, parallel, link).total(),
            );
            prop_assert!(s <= d + 1e-12, "{label} prefill {s} > dense {d}");
            let (s, d) = (
                cm.decode_cost(&lens, parallel, masters, link).total(),
                dense.decode_cost(&lens, parallel, masters, link).total(),
            );
            prop_assert!(s <= d + 1e-12, "{label} decode {s} > dense {d}");
            let (s, d) = (
                cm.chunked_prefill_cost(chunk, processed, &lens, parallel, link).total(),
                dense.chunked_prefill_cost(chunk, processed, &lens, parallel, link).total(),
            );
            prop_assert!(s <= d + 1e-12, "{label} chunked {s} > dense {d}");
        }
    }

    /// Page-sparse decode cost is flat in context beyond the token budget:
    /// any two contexts past the budget price identically (the KV-read cap
    /// dominates the bandwidth-bound roofline; the selection FLOPs stay
    /// orders of magnitude below it).
    #[test]
    fn page_sparse_decode_is_flat_beyond_the_budget(
        c1 in 5_000u64..1_000_000,
        c2 in 5_000u64..1_000_000,
        batch in 1usize..16,
        sp_idx in 0usize..3,
    ) {
        let cm = CostModel::builder(ModelConfig::lwm_1m_text())
            .attention(AttentionCostPolicy::page_sparse())
            .build();
        let parallel = ParallelConfig::new(2, [1, 2, 4][sp_idx]);
        let link = LinkSpec::nvlink_a800();
        let t1 = cm.decode_cost(&vec![c1; batch], parallel, 1, link).total();
        let t2 = cm.decode_cost(&vec![c2; batch], parallel, 1, link).total();
        prop_assert!(
            (t1 - t2).abs() / t1 < 1e-6,
            "decode cost moved past the budget: {t1} at {c1} vs {t2} at {c2}"
        );
    }

    /// Both saturation helpers respect the policy and stay consistent with
    /// their context-free forms at context zero.
    #[test]
    fn context_aware_helpers_are_consistent(
        tp_idx in 0usize..3,
        sp_idx in 0usize..3,
        context in 0u64..1_000_000,
    ) {
        let (dense, sparse_models) = cost_models();
        let tp = [1, 2, 4][tp_idx];
        let parallel = ParallelConfig::new(tp, [1, 2, 4][sp_idx]);
        for cm in std::iter::once(&dense).chain(&sparse_models) {
            prop_assert_eq!(
                cm.prefill_saturation_tokens(parallel),
                cm.prefill_saturation_tokens_at_context(parallel, 0)
            );
            prop_assert_eq!(
                cm.decode_compute_bound_batch_size(tp),
                cm.decode_compute_bound_batch_size_at_context(tp, 0).unwrap()
            );
            // More processed context never *raises* the saturation point.
            prop_assert!(
                cm.prefill_saturation_tokens_at_context(parallel, context)
                    <= cm.prefill_saturation_tokens(parallel)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism and liveness of full engine runs under the sparse policies.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ci_config(4))]

    /// Identically seeded engine runs under each sparse policy agree
    /// bit-for-bit, and the run drains its trace.
    #[test]
    fn sparse_engine_runs_are_deterministic_and_complete(
        seed in 0u64..1_000_000,
        count in 15usize..30,
        policy_idx in 0usize..2,
    ) {
        let policy = [
            AttentionCostPolicy::page_sparse(),
            AttentionCostPolicy::hierarchical(),
        ][policy_idx];
        let trace = sharegpt_trace(6.0, count, seed);
        let run = || {
            let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe)
                .with_attention(policy);
            let mut engine = system.build_engine(Some(&trace));
            engine.run(&trace)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(outcome_digest(&a), outcome_digest(&b));
        prop_assert_eq!(a.unfinished, 0, "sparse runs must still drain the trace");
        prop_assert_eq!(a.records.len() + a.rejected.len(), trace.len());
    }
}

#[test]
fn sparse_policies_change_behaviour_when_contexts_are_long() {
    // The policy is not a no-op: on a long-context workload the page-sparse
    // run must diverge from dense (cheaper decode iterations change
    // timestamps and scheduling decisions).
    let dense = run_digest_with_policy(
        SystemKind::LoongServe,
        DatasetKind::Mixed,
        0.8,
        40,
        77,
        AttentionCostPolicy::Dense,
    );
    let sparse = run_digest_with_policy(
        SystemKind::LoongServe,
        DatasetKind::Mixed,
        0.8,
        40,
        77,
        AttentionCostPolicy::page_sparse(),
    );
    assert_ne!(
        dense, sparse,
        "page-sparse decode should alter long-context runs"
    );
}
