//! Fleet-tier equivalence and determinism goldens.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Single-replica identity.** A 1-replica [`FleetEngine`] must be the
//!    bare [`ServingEngine`] with routing glued on: under the passthrough
//!    router (and, since every policy degenerates to "the only replica",
//!    under all four load-balancing policies too) the fleet's merged
//!    outcome equals the single engine's [`RunOutcome`] **bit for bit** —
//!    every timestamp, every rejection reason, every counter.
//! 2. **Multi-replica determinism.** 2- and 4-replica fleet runs pin a
//!    64-bit digest of the full [`FleetOutcome`] — assignments, per-replica
//!    outcomes, merged records — alongside the single-engine goldens in
//!    `tests/determinism_golden.rs`. Routing or merge refactors must not
//!    move a bit.
//!
//! To re-capture after an *intentional* behaviour change, run:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test --test fleet_equivalence -- --nocapture
//! ```

use loongserve::prelude::*;

#[path = "golden_util.rs"]
mod golden_util;
use golden_util::Digest;

/// A bit-for-bit digest of everything in a [`FleetOutcome`].
fn fleet_digest(outcome: &FleetOutcome) -> u64 {
    let mut d = Digest::new();
    d.word(outcome.assignments.len() as u64);
    for &(id, replica) in &outcome.assignments {
        d.word(id.raw());
        d.word(replica.raw());
    }
    d.word(outcome.per_replica.len() as u64);
    for r in &outcome.per_replica {
        d.word(r.replica.raw());
        d.word(r.assigned as u64);
        d.outcome(&r.outcome);
    }
    d.word(outcome.records.len() as u64);
    for r in &outcome.records {
        d.word(r.id.raw());
        d.time(r.finish);
    }
    d.word(outcome.rejected.len() as u64);
    d.word(outcome.unfinished as u64);
    d.time(outcome.sim_time);
    d.word(outcome.iterations);
    d.word(outcome.migration_bytes.to_bits());
    d.word(outcome.scheduler_calls);
    d.0
}

fn sharegpt_trace(rate: f64, count: usize, seed: u64) -> Trace {
    WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(rate, count, seed)
}

/// Asserts that a fleet's merged outcome equals the single engine's, field
/// by field, bit for bit.
fn assert_outcome_equal(fleet: &FleetOutcome, single: &RunOutcome) {
    assert_eq!(fleet.records, single.records, "records diverged");
    assert_eq!(fleet.rejected, single.rejected, "rejections diverged");
    assert_eq!(fleet.unfinished, single.unfinished, "unfinished diverged");
    assert_eq!(fleet.sim_time, single.sim_time, "sim time diverged");
    assert_eq!(fleet.iterations, single.iterations, "iterations diverged");
    assert_eq!(
        fleet.migration_bytes.to_bits(),
        single.migration_bytes.to_bits(),
        "migration bytes diverged"
    );
    assert_eq!(
        fleet.scheduler_calls, single.scheduler_calls,
        "scheduler calls diverged"
    );
}

fn single_outcome(kind: SystemKind, trace: &Trace) -> RunOutcome {
    let system = SystemUnderTest::paper_single_node(kind);
    let mut engine = system.build_engine(Some(trace));
    engine.run(trace)
}

fn fleet_outcome(
    kind: SystemKind,
    replicas: usize,
    policy: RouterPolicy,
    trace: &Trace,
) -> FleetOutcome {
    let mut fleet = FleetEngine::new(FleetConfig::paper_fleet(kind, replicas, policy));
    fleet.run(trace)
}

#[test]
fn one_replica_passthrough_is_the_bare_engine_bit_for_bit() {
    let trace = sharegpt_trace(6.0, 60, 4242);
    let single = single_outcome(SystemKind::LoongServe, &trace);
    let fleet = fleet_outcome(SystemKind::LoongServe, 1, RouterPolicy::Passthrough, &trace);
    assert_outcome_equal(&fleet, &single);
    // The one replica saw the whole trace.
    assert_eq!(fleet.per_replica.len(), 1);
    assert_eq!(fleet.per_replica[0].assigned, trace.len());
    assert!(fleet
        .assignments
        .iter()
        .all(|&(_, replica)| replica == ReplicaId(0)));
}

#[test]
fn one_replica_passthrough_matches_for_baseline_systems_too() {
    let trace = sharegpt_trace(6.0, 40, 99);
    for kind in [SystemKind::Vllm, SystemKind::DistServe] {
        let single = single_outcome(kind, &trace);
        let fleet = fleet_outcome(kind, 1, RouterPolicy::Passthrough, &trace);
        assert_outcome_equal(&fleet, &single);
    }
}

#[test]
fn every_policy_degenerates_to_passthrough_on_one_replica() {
    let trace = sharegpt_trace(4.0, 30, 7);
    let single = single_outcome(SystemKind::LoongServe, &trace);
    for policy in RouterPolicy::all_policies() {
        let fleet = fleet_outcome(SystemKind::LoongServe, 1, policy, &trace);
        assert_outcome_equal(&fleet, &single);
    }
}

fn check(label: &str, expected: u64, actual: u64) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN {label} = 0x{actual:016x}");
        return;
    }
    assert_eq!(
        actual, expected,
        "{label}: FleetOutcome digest changed: expected 0x{expected:016x}, got 0x{actual:016x}. \
         Router/merge refactors must be bit-for-bit neutral; re-capture with GOLDEN_PRINT=1 \
         only for intentional behaviour changes."
    );
}

#[test]
fn two_replica_round_robin_outcome_is_pinned() {
    let trace = sharegpt_trace(12.0, 80, 4242);
    let fleet = fleet_outcome(SystemKind::LoongServe, 2, RouterPolicy::RoundRobin, &trace);
    assert_eq!(fleet.total_requests(), 80);
    check(
        "fleet_2x_round_robin",
        GOLDEN_FLEET_2X_ROUND_ROBIN,
        fleet_digest(&fleet),
    );
}

#[test]
fn four_replica_jsq_outcome_is_pinned() {
    let trace = sharegpt_trace(24.0, 80, 4242);
    let fleet = fleet_outcome(
        SystemKind::LoongServe,
        4,
        RouterPolicy::JoinShortestQueue,
        &trace,
    );
    assert_eq!(fleet.total_requests(), 80);
    check("fleet_4x_jsq", GOLDEN_FLEET_4X_JSQ, fleet_digest(&fleet));
}

#[test]
fn four_replica_p2c_outcome_is_pinned() {
    let trace = sharegpt_trace(24.0, 80, 4242);
    let fleet = fleet_outcome(
        SystemKind::LoongServe,
        4,
        RouterPolicy::PowerOfTwoChoices { seed: 0x90f1ee7 },
        &trace,
    );
    check("fleet_4x_p2c", GOLDEN_FLEET_4X_P2C, fleet_digest(&fleet));
}

#[test]
fn repeated_fleet_runs_reproduce_the_digest() {
    let trace = sharegpt_trace(12.0, 40, 9);
    let a = fleet_digest(&fleet_outcome(
        SystemKind::LoongServe,
        2,
        RouterPolicy::LeastKvLoad,
        &trace,
    ));
    let b = fleet_digest(&fleet_outcome(
        SystemKind::LoongServe,
        2,
        RouterPolicy::LeastKvLoad,
        &trace,
    ));
    assert_eq!(a, b, "identical seeds must reproduce identical fleet runs");
}

// Captured at fleet-tier introduction; see module docs for the re-capture
// procedure.
const GOLDEN_FLEET_2X_ROUND_ROBIN: u64 = 0xb4a0_4cc9_72b0_c57f;
const GOLDEN_FLEET_4X_JSQ: u64 = 0x3598_362b_d2d5_f0d0;
const GOLDEN_FLEET_4X_P2C: u64 = 0x922d_41e0_3abc_c691;
