//! Golden determinism tests for the serving engine.
//!
//! These pin a 64-bit digest of the full [`RunOutcome`] — every record
//! timestamp bit, every rejection, every scaling event — for identically
//! seeded runs of LoongServe and one baseline. The constants were captured
//! from the engine *before* the incremental scheduler-view refactor; the
//! refactored engine must reproduce them bit-for-bit, which is the
//! acceptance oracle for "O(active) bookkeeping changes no decision".
//!
//! To re-capture after an *intentional* behaviour change, run:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test --test determinism_golden -- --nocapture
//! ```

use loongserve::prelude::*;

#[path = "golden_util.rs"]
mod golden_util;
use golden_util::outcome_digest;

fn run_digest(kind: SystemKind, dataset: DatasetKind, rate: f64, count: usize, seed: u64) -> u64 {
    let trace = WorkloadSpec::Dataset(dataset).generate(rate, count, seed);
    let system = SystemUnderTest::paper_single_node(kind);
    let mut engine = system.build_engine(Some(&trace));
    outcome_digest(&engine.run(&trace))
}

fn check(label: &str, expected: u64, actual: u64) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN {label} = 0x{actual:016x}");
        return;
    }
    assert_eq!(
        actual, expected,
        "{label}: RunOutcome digest changed: expected 0x{expected:016x}, got 0x{actual:016x}. \
         Engine bookkeeping refactors must be bit-for-bit neutral; re-capture with \
         GOLDEN_PRINT=1 only for intentional behaviour changes."
    );
}

#[test]
fn loongserve_sharegpt_outcome_is_pinned() {
    let actual = run_digest(SystemKind::LoongServe, DatasetKind::ShareGpt, 6.0, 80, 4242);
    check("loongserve_sharegpt", GOLDEN_LOONGSERVE_SHAREGPT, actual);
}

#[test]
fn loongserve_mixed_outcome_is_pinned() {
    let actual = run_digest(SystemKind::LoongServe, DatasetKind::Mixed, 0.8, 40, 77);
    check("loongserve_mixed", GOLDEN_LOONGSERVE_MIXED, actual);
}

#[test]
fn vllm_baseline_outcome_is_pinned() {
    let actual = run_digest(SystemKind::Vllm, DatasetKind::ShareGpt, 6.0, 80, 4242);
    check("vllm_sharegpt", GOLDEN_VLLM_SHAREGPT, actual);
}

#[test]
fn repeated_runs_reproduce_the_digest() {
    let a = run_digest(SystemKind::LoongServe, DatasetKind::ShareGpt, 6.0, 40, 9);
    let b = run_digest(SystemKind::LoongServe, DatasetKind::ShareGpt, 6.0, 40, 9);
    assert_eq!(a, b, "identical seeds must reproduce identical outcomes");
}

// Captured from the pre-refactor engine (HashMap states + full-scan view
// rebuild) at commit a66a012; see module docs for the re-capture procedure.
const GOLDEN_LOONGSERVE_SHAREGPT: u64 = 0x313d_174f_011c_a40b;
const GOLDEN_LOONGSERVE_MIXED: u64 = 0xe045_5f8a_c734_c8e8;
const GOLDEN_VLLM_SHAREGPT: u64 = 0x9fe5_405f_ae70_e47a;
