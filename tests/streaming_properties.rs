//! Properties of the fleet-scale execution paths: streamed traces and
//! pooled (parallel) era execution.
//!
//! Three contracts are pinned here, matching `DESIGN.md` §Fleet-scale
//! execution:
//!
//! * **Streamed ≡ materialised** — for every run path (`run`,
//!   `run_reliable`, `run_elastic`), every router policy (passthrough
//!   included) and every generator family, consuming the workload lazily
//!   through a [`TraceStream`] produces the same outcome, field for field
//!   and bit for bit, as materialising the [`Trace`] first. The streamed
//!   path may never buy its O(active + pending-retries) memory bound with
//!   a single changed timestamp.
//! * **Parallel ≡ serial** — with `FleetConfig::parallel` flipped on, the
//!   bounded worker pool executes era segments concurrently but merges
//!   them in replica-id order, so reliable and elastic runs under crash
//!   schedules (retries, breakers, scale events and all) reproduce the
//!   serial outcome bit for bit.
//! * **Footprint accounting** — the [`FleetFootprint`] returned by the
//!   streamed paths counts every pulled request exactly once and its
//!   resident high-water never exceeds the stream length.
//!
//! The generator-level bit-identity (stream vs. batch sampling) is pinned
//! separately in `crates/workload/src/stream.rs`; this suite is about the
//! *run* paths consuming the stream.

use loongserve::prelude::*;
use proptest::prelude::*;

const PROPTEST_SEED: u64 = 0x57e8_a811_0808_2026;

fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

/// The six router policies, passthrough included — every equivalence here
/// must hold for all of them.
fn policy(idx: usize) -> RouterPolicy {
    match idx {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        2 => RouterPolicy::LeastKvLoad,
        3 => RouterPolicy::PowerOfTwoChoices { seed: 0xdecade },
        4 => RouterPolicy::PrefixAffinity,
        _ => RouterPolicy::Passthrough,
    }
}

fn fleet(replicas: usize, policy: RouterPolicy, parallel: bool) -> FleetEngine {
    let mut config = FleetConfig::paper_fleet(SystemKind::LoongServe, replicas, policy);
    config.parallel = parallel;
    FleetEngine::new(config)
}

/// A crash schedule dense enough to exercise several eras within the
/// simulated horizon.
fn crash_schedule(replicas: usize, seed: u64) -> FailureSchedule {
    FailureSchedule::generate(
        replicas,
        SimDuration::from_secs(300.0),
        90.0,
        15.0,
        seed ^ 0xfa11,
    )
}

fn reliability_config(schedule: FailureSchedule, retry_sel: usize) -> ReliabilityConfig {
    let config = ReliabilityConfig::new(schedule).with_sla_window(30.0);
    match retry_sel {
        0 => config,
        1 => config.with_retry(RetryPolicy::exponential(2, 0.5)),
        _ => config
            .with_retry(RetryPolicy::exponential(3, 0.25))
            .with_breaker(CircuitBreakerConfig::new(3, 30.0, 120.0)),
    }
}

fn elastic_config(max_replicas: usize, schedule: FailureSchedule) -> ElasticConfig {
    let mut scaler = AutoscalerConfig::overload_defaults(1, max_replicas);
    scaler.control_interval_s = 20.0;
    scaler.cooldown_s = 10.0;
    scaler.provisioning_delay_s = 7.0;
    scaler.scale_up_backlog_tokens = 30_000;
    scaler.scale_down_backlog_tokens = 8_000;
    ElasticConfig::new(scaler)
        .with_schedule(schedule)
        .with_retry(RetryPolicy::exponential(2, 0.5))
        .with_sla_window(30.0)
}

/// The generator families swept by the streamed≡materialised properties.
/// Each arm builds the trace and the stream from *independent* RNGs with
/// the same seed, so the comparison also re-proves generator bit-identity
/// end to end through the run path.
fn trace_and_stream(family: usize, count: usize, seed: u64) -> (Trace, TraceStream) {
    match family {
        0 => {
            let arrivals = ArrivalProcess::Poisson { rate: 6.0 };
            let trace = Trace::generate(
                DatasetKind::ShareGpt,
                arrivals,
                count,
                &mut SimRng::seed(seed),
            );
            let stream = TraceStream::dataset(
                DatasetKind::ShareGpt,
                arrivals,
                count,
                &mut SimRng::seed(seed),
            );
            (trace, stream)
        }
        1 => {
            let arrivals = ArrivalProcess::Poisson { rate: 2.0 };
            let profile = MultiTurnProfile::sharegpt();
            let trace = Trace::generate_multi_turn(
                DatasetKind::ShareGpt,
                &profile,
                arrivals,
                count,
                &mut SimRng::seed(seed),
            );
            let stream = TraceStream::multi_turn(
                DatasetKind::ShareGpt,
                &profile,
                arrivals,
                count,
                &mut SimRng::seed(seed),
            );
            (trace, stream)
        }
        _ => {
            let arrivals = ArrivalProcess::Poisson { rate: 3.0 };
            let profile = MixedClassProfile::overload_mix();
            let trace =
                Trace::generate_mixed_classes(arrivals, count, &profile, &mut SimRng::seed(seed));
            let stream =
                TraceStream::mixed_classes(arrivals, count, &profile, &mut SimRng::seed(seed));
            (trace, stream)
        }
    }
}

/// Footprint sanity shared by every streamed path: each trace request was
/// pulled exactly once, and the resident high-water is within the stream.
fn assert_footprint(footprint: &FleetFootprint, trace: &Trace) {
    assert_eq!(footprint.streamed_requests, trace.len());
    assert!(footprint.peak_resident_requests <= trace.len());
    assert!(trace.is_empty() || footprint.peak_resident_requests > 0);
}

proptest! {
    #![proptest_config(ci_config(8))]

    /// (a) `run_stream` ≡ `run` across generator families and every
    /// router policy, serial and pooled.
    #[test]
    fn streamed_plain_run_matches_materialized(
        seed in 0u64..1_000_000,
        count in 12usize..32,
        replicas in 2usize..4,
        policy_idx in 0usize..6,
        family in 0usize..3,
        parallel_sel in 0usize..2,
    ) {
        let parallel = parallel_sel == 1;
        let (trace, stream) = trace_and_stream(family, count, seed);
        let materialized = fleet(replicas, policy(policy_idx), parallel).run(&trace);
        let (streamed, footprint) =
            fleet(replicas, policy(policy_idx), parallel).run_stream(stream);
        prop_assert_eq!(format!("{materialized:?}"), format!("{streamed:?}"));
        assert_footprint(&footprint, &trace);
    }

    /// (b) `run_reliable_stream` ≡ `run_reliable` under crash schedules,
    /// retry corners and every router policy.
    #[test]
    fn streamed_reliable_run_matches_materialized(
        seed in 0u64..1_000_000,
        count in 12usize..32,
        replicas in 2usize..4,
        policy_idx in 0usize..6,
        family in 0usize..3,
        retry_sel in 0usize..3,
    ) {
        let (trace, stream) = trace_and_stream(family, count, seed);
        let rel = reliability_config(crash_schedule(replicas, seed), retry_sel);
        let materialized = fleet(replicas, policy(policy_idx), false).run_reliable(&trace, &rel);
        let (streamed, footprint) =
            fleet(replicas, policy(policy_idx), false).run_reliable_stream(stream, &rel);
        prop_assert_eq!(format!("{materialized:?}"), format!("{streamed:?}"));
        assert_footprint(&footprint, &trace);
    }

    /// (c) `run_elastic_stream` ≡ `run_elastic` with crashes, retries and
    /// the autoscaler all armed, for every router policy.
    #[test]
    fn streamed_elastic_run_matches_materialized(
        seed in 0u64..1_000_000,
        count in 12usize..32,
        max_replicas in 2usize..4,
        policy_idx in 0usize..6,
        family in 0usize..3,
    ) {
        let (trace, stream) = trace_and_stream(family, count, seed);
        let cfg = elastic_config(max_replicas, crash_schedule(max_replicas, seed));
        let materialized =
            fleet(max_replicas, policy(policy_idx), false).run_elastic(&trace, &cfg);
        let (streamed, footprint) =
            fleet(max_replicas, policy(policy_idx), false).run_elastic_stream(stream, &cfg);
        prop_assert_eq!(format!("{materialized:?}"), format!("{streamed:?}"));
        assert_footprint(&footprint, &trace);
    }

    /// (d) Pooled era execution ≡ serial for `run_reliable`: crashes,
    /// casualties and retries resolve identically when the capped era
    /// segments run on the worker pool.
    #[test]
    fn parallel_and_serial_reliable_runs_agree(
        seed in 0u64..1_000_000,
        count in 12usize..32,
        replicas in 2usize..4,
        policy_idx in 0usize..6,
        retry_sel in 0usize..3,
    ) {
        let trace = Trace::generate(
            DatasetKind::ShareGpt,
            ArrivalProcess::Poisson { rate: 6.0 },
            count,
            &mut SimRng::seed(seed),
        );
        let rel = reliability_config(crash_schedule(replicas, seed), retry_sel);
        let serial = fleet(replicas, policy(policy_idx), false).run_reliable(&trace, &rel);
        let pooled = fleet(replicas, policy(policy_idx), true).run_reliable(&trace, &rel);
        prop_assert_eq!(format!("{serial:?}"), format!("{pooled:?}"));
    }

    /// (e) Pooled era execution ≡ serial for `run_elastic`: crash
    /// boundaries, observation probes, drains and final segments all run
    /// through the pool without moving a bit.
    #[test]
    fn parallel_and_serial_elastic_runs_agree(
        seed in 0u64..1_000_000,
        count in 12usize..32,
        max_replicas in 2usize..4,
        policy_idx in 0usize..6,
    ) {
        let trace = Trace::generate(
            DatasetKind::ShareGpt,
            ArrivalProcess::Poisson { rate: 6.0 },
            count,
            &mut SimRng::seed(seed),
        );
        let cfg = elastic_config(max_replicas, crash_schedule(max_replicas, seed));
        let serial = fleet(max_replicas, policy(policy_idx), false).run_elastic(&trace, &cfg);
        let pooled = fleet(max_replicas, policy(policy_idx), true).run_elastic(&trace, &cfg);
        prop_assert_eq!(format!("{serial:?}"), format!("{pooled:?}"));
    }
}

/// A `from_trace` stream replays an explicit trace verbatim through the
/// plain run path — the adapter the benches use to stream a pre-built
/// workload.
#[test]
fn from_trace_stream_replays_verbatim_through_run() {
    let trace = Trace::generate(
        DatasetKind::LEval,
        ArrivalProcess::Poisson { rate: 1.5 },
        24,
        &mut SimRng::seed(404),
    );
    let materialized = fleet(3, RouterPolicy::JoinShortestQueue, false).run(&trace);
    let (streamed, footprint) = fleet(3, RouterPolicy::JoinShortestQueue, false)
        .run_stream(TraceStream::from_trace(trace.clone()));
    assert_eq!(format!("{materialized:?}"), format!("{streamed:?}"));
    assert_eq!(footprint.streamed_requests, trace.len());
}

/// Boundary-rich schedules flush buckets at every era, so the resident
/// high-water stays strictly below the stream length — the O(active +
/// pending-retries) memory claim, pinned on a concrete workload.
#[test]
fn era_boundaries_bound_the_resident_footprint() {
    // Arrivals spread over ~400s with a crash roughly every 40s: many
    // eras, each draining its buckets before the next fills.
    let trace = Trace::generate(
        DatasetKind::ShareGpt,
        ArrivalProcess::Poisson { rate: 0.5 },
        200,
        &mut SimRng::seed(11),
    );
    let schedule = FailureSchedule::generate(2, SimDuration::from_secs(400.0), 40.0, 10.0, 77);
    let rel = ReliabilityConfig::new(schedule)
        .with_retry(RetryPolicy::exponential(2, 0.5))
        .with_sla_window(30.0);
    let stream = TraceStream::from_trace(trace.clone());
    let (outcome, footprint) =
        fleet(2, RouterPolicy::JoinShortestQueue, false).run_reliable_stream(stream, &rel);
    assert_eq!(outcome.total_requests(), trace.len());
    assert_eq!(footprint.streamed_requests, trace.len());
    assert!(
        footprint.peak_resident_requests < trace.len() / 2,
        "era boundaries must flush buckets: peak {} vs {} streamed",
        footprint.peak_resident_requests,
        trace.len()
    );
}
