//! Properties of the reliability tier: fleet runs under failure injection.
//!
//! Four contracts are pinned here, matching the tier's module docs:
//!
//! * **Exactly-once accounting** — over random seeded failure schedules,
//!   every retry policy and every router policy, each trace request ends in
//!   exactly one of the four ledgers (completed, rejected, terminally
//!   failed, unfinished): no request is lost to a crash and none is
//!   double-counted by a retry.
//! * **Token conservation with re-prefill** — completed records carry their
//!   exact trace token counts, and total prefill work is bounded below by
//!   the completed prompts and above by the trace's prompts plus the
//!   ledger's `re_prefilled_tokens`: a crash can only add the re-prefill
//!   work the ledger admits to.
//! * **Determinism** — for a fixed seed, identical runs agree bit for bit
//!   (assignments, records, failures, reliability ledger, SLA windows)
//!   under *every* router policy, including passthrough.
//! * **Armed-but-idle neutrality** — with the tier armed (retry budget,
//!   breaker, SLA windows all configured) but an empty schedule, the run
//!   reproduces the pinned golden digests of `tests/fleet_equivalence.rs`
//!   bit for bit, and the availability series reads 1.0 everywhere.
//!
//! Plus the crash-invalidation contract of the prefix-cache tier: a
//! conversation pinned by `PrefixAffinity` to a replica that crashes
//! re-routes to a healthy replica, pays one full re-prefill there, and then
//! resumes hitting the rebuilt cache — with hit-rate accounting consistent
//! between the fleet rollup and the per-replica breakdown.

use loong_simcore::ids::ConversationId;
use loongserve::prelude::*;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[path = "golden_util.rs"]
mod golden_util;
use golden_util::Digest;

const PROPTEST_SEED: u64 = 0x7e11_ab1e_0808_2026;

fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

fn sharegpt_trace(rate: f64, count: usize, seed: u64) -> Trace {
    WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(rate, count, seed)
}

fn fleet(replicas: usize, policy: RouterPolicy) -> FleetEngine {
    FleetEngine::new(FleetConfig::paper_fleet(
        SystemKind::LoongServe,
        replicas,
        policy,
    ))
}

/// The six router policies, passthrough included — the determinism sweep
/// must hold for all of them.
fn policy(idx: usize) -> RouterPolicy {
    match idx {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        2 => RouterPolicy::LeastKvLoad,
        3 => RouterPolicy::PowerOfTwoChoices { seed: 0xdecade },
        4 => RouterPolicy::PrefixAffinity,
        _ => RouterPolicy::Passthrough,
    }
}

/// The retry-policy corner cases swept by the property tests: fail-fast,
/// plain exponential backoff, and backoff with a circuit breaker armed.
fn reliability_config(schedule: FailureSchedule, retry_sel: usize) -> ReliabilityConfig {
    let config = ReliabilityConfig::new(schedule).with_sla_window(30.0);
    match retry_sel {
        0 => config,
        1 => config.with_retry(RetryPolicy::exponential(2, 0.5)),
        _ => config
            .with_retry(RetryPolicy::exponential(3, 0.25))
            .with_breaker(CircuitBreakerConfig::new(3, 30.0, 120.0)),
    }
}

/// Same digest as `tests/fleet_equivalence.rs` (via the shared
/// `golden_util` field walk): a bit-for-bit digest of a [`FleetOutcome`].
fn fleet_digest(outcome: &FleetOutcome) -> u64 {
    let mut d = Digest::new();
    d.word(outcome.assignments.len() as u64);
    for &(id, replica) in &outcome.assignments {
        d.word(id.raw());
        d.word(replica.raw());
    }
    d.word(outcome.per_replica.len() as u64);
    for r in &outcome.per_replica {
        d.word(r.replica.raw());
        d.word(r.assigned as u64);
        d.outcome(&r.outcome);
    }
    d.word(outcome.records.len() as u64);
    for r in &outcome.records {
        d.word(r.id.raw());
        d.time(r.finish);
    }
    d.word(outcome.rejected.len() as u64);
    d.word(outcome.unfinished as u64);
    d.time(outcome.sim_time);
    d.word(outcome.iterations);
    d.word(outcome.migration_bytes.to_bits());
    d.word(outcome.scheduler_calls);
    d.0
}

/// Checks the exactly-once partition: every trace id lands in precisely one
/// of completed / rejected / terminally-failed / unfinished.
fn assert_exactly_once(trace: &Trace, outcome: &ReliableFleetOutcome) {
    let trace_ids: BTreeSet<RequestId> = trace.requests.iter().map(|r| r.id).collect();
    let completed: BTreeSet<RequestId> = outcome.fleet.records.iter().map(|r| r.id).collect();
    let rejected: BTreeSet<RequestId> = outcome.fleet.rejected.iter().map(|r| r.0).collect();
    let failed: BTreeSet<RequestId> = outcome.failed.iter().map(|f| f.id).collect();

    // No ledger holds duplicates...
    prop_assert_eq!(completed.len(), outcome.fleet.records.len());
    prop_assert_eq!(rejected.len(), outcome.fleet.rejected.len());
    prop_assert_eq!(failed.len(), outcome.failed.len());
    // ...every ledger holds only trace ids...
    prop_assert!(completed.is_subset(&trace_ids));
    prop_assert!(rejected.is_subset(&trace_ids));
    prop_assert!(failed.is_subset(&trace_ids));
    // ...the ledgers are pairwise disjoint...
    prop_assert!(completed.is_disjoint(&rejected));
    prop_assert!(completed.is_disjoint(&failed));
    prop_assert!(rejected.is_disjoint(&failed));
    // ...and with `unfinished` they partition the trace exactly.
    prop_assert_eq!(
        completed.len() + rejected.len() + failed.len() + outcome.fleet.unfinished,
        trace.len()
    );
    prop_assert_eq!(outcome.total_requests(), trace.len());
}

proptest! {
    #![proptest_config(ci_config(6))]

    /// (a) Exactly-once accounting across random failure schedules, router
    /// policies and retry-policy corners.
    #[test]
    fn every_request_is_completed_or_accounted_exactly_once(
        seed in 0u64..1_000_000,
        count in 18usize..40,
        replicas in 2usize..4,
        policy_idx in 0usize..6,
        retry_sel in 0usize..3,
    ) {
        let trace = sharegpt_trace(6.0, count, seed);
        let schedule = FailureSchedule::generate(
            replicas,
            SimDuration::from_secs(300.0),
            90.0,
            15.0,
            seed ^ 0xfa11,
        );
        let rel = reliability_config(schedule, retry_sel);
        let outcome = fleet(replicas, policy(policy_idx)).run_reliable(&trace, &rel);
        assert_exactly_once(&trace, &outcome);
        // The ledger's failure counters agree with the failed list, and
        // recovered requests really did lose an attempt first.
        prop_assert_eq!(outcome.reliability.retries_exhausted, outcome.failed.len() as u64);
        prop_assert!(outcome.reliability.recovered_requests <= outcome.reliability.failed_attempts);
    }

    /// (b) Token conservation including re-prefill work: completed records
    /// carry their exact trace token counts, and total prefill work stays
    /// inside [completed prompts, trace prompts + ledgered re-prefill].
    #[test]
    fn tokens_are_conserved_including_re_prefill(
        seed in 0u64..1_000_000,
        count in 18usize..40,
        replicas in 2usize..4,
        retry_sel in 0usize..3,
    ) {
        let trace = sharegpt_trace(6.0, count, seed);
        let schedule = FailureSchedule::generate(
            replicas,
            SimDuration::from_secs(300.0),
            120.0,
            20.0,
            seed ^ 0x70c3,
        );
        let rel = reliability_config(schedule, retry_sel);
        let outcome = fleet(replicas, RouterPolicy::JoinShortestQueue).run_reliable(&trace, &rel);
        assert_exactly_once(&trace, &outcome);

        let by_id: BTreeMap<RequestId, &Request> =
            trace.requests.iter().map(|r| (r.id, r)).collect();
        for rec in &outcome.fleet.records {
            let req = by_id[&rec.id];
            prop_assert_eq!(rec.input_len, req.input_len);
            prop_assert_eq!(rec.output_len, req.output_len);
        }

        let prefilled: u64 = outcome
            .fleet
            .per_replica
            .iter()
            .map(|r| r.outcome.prefilled_tokens)
            .sum();
        let completed_input: u64 = outcome.fleet.records.iter().map(|r| r.input_len).sum();
        let trace_input: u64 = trace.requests.iter().map(|r| r.input_len).sum();
        prop_assert!(
            prefilled >= completed_input,
            "every completed prompt was prefilled: {prefilled} < {completed_input}"
        );
        prop_assert!(
            prefilled <= trace_input + outcome.reliability.re_prefilled_tokens,
            "prefill work beyond the trace must be ledgered as re-prefill: \
             {prefilled} > {trace_input} + {}",
            outcome.reliability.re_prefilled_tokens
        );
        // A run no failure touched does exactly the trace's prefill work.
        if outcome.reliability.failed_attempts == 0
            && outcome.fleet.rejected.is_empty()
            && outcome.fleet.unfinished == 0
        {
            prop_assert_eq!(outcome.reliability.re_prefilled_tokens, 0);
            prop_assert_eq!(prefilled, trace_input);
        }
    }

    /// (c) Determinism: for a fixed seed the whole outcome — assignments,
    /// records, terminal failures, reliability ledger, SLA windows — is
    /// reproduced bit for bit under every router policy.
    #[test]
    fn outcomes_are_deterministic_for_a_fixed_seed_under_every_policy(
        seed in 0u64..1_000_000,
        count in 15usize..30,
        replicas in 2usize..4,
        retry_sel in 0usize..3,
    ) {
        let trace = sharegpt_trace(8.0, count, seed);
        let schedule = FailureSchedule::generate(
            replicas,
            SimDuration::from_secs(250.0),
            100.0,
            15.0,
            seed ^ 0xd37e,
        );
        for idx in 0..6 {
            let rel = reliability_config(schedule.clone(), retry_sel);
            let a = fleet(replicas, policy(idx)).run_reliable(&trace, &rel);
            let b = fleet(replicas, policy(idx)).run_reliable(&trace, &rel);
            prop_assert_eq!(fleet_digest(&a.fleet), fleet_digest(&b.fleet));
            prop_assert_eq!(&a.fleet.assignments, &b.fleet.assignments);
            prop_assert_eq!(&a.failed, &b.failed);
            prop_assert_eq!(a.reliability, b.reliability);
            prop_assert_eq!(&a.sla_windows, &b.sla_windows);
        }
    }
}

// ---------------------------------------------------------------------------
// Armed-but-idle golden pins.
//
// The constants below are *the same* goldens as `tests/fleet_equivalence.rs`
// pins for the plain fleet (same trace recipes, same digest walk): the
// reliability tier with an empty schedule must not move a bit even with the
// retry budget, the breaker and the SLA windows all armed. Re-capture (only
// for intentional behaviour changes) via that suite's GOLDEN_PRINT
// procedure; the two files must stay in lockstep.
// ---------------------------------------------------------------------------

const GOLDEN_FLEET_2X_ROUND_ROBIN: u64 = 0xb4a0_4cc9_72b0_c57f;
const GOLDEN_FLEET_4X_JSQ: u64 = 0x3598_362b_d2d5_f0d0;
const GOLDEN_FLEET_4X_P2C: u64 = 0x922d_41e0_3abc_c691;

/// The fully-armed configuration whose machinery must stay invisible when
/// no failure fires.
fn armed_idle() -> ReliabilityConfig {
    ReliabilityConfig::disarmed()
        .with_retry(RetryPolicy::exponential(3, 0.5))
        .with_breaker(CircuitBreakerConfig::new(3, 60.0, 120.0))
}

fn assert_armed_idle_invariants(outcome: &ReliableFleetOutcome) {
    assert!(outcome.failed.is_empty());
    assert!(outcome.reliability.is_zero());
    assert!(!outcome.sla_windows.is_empty());
    for window in &outcome.sla_windows {
        assert_eq!(window.success_ratio(), 1.0, "idle tier, perfect windows");
        assert_eq!(window.failed, 0);
    }
}

#[test]
fn armed_idle_two_replica_round_robin_stays_on_golden() {
    let trace = sharegpt_trace(12.0, 80, 4242);
    let outcome = fleet(2, RouterPolicy::RoundRobin).run_reliable(&trace, &armed_idle());
    assert_eq!(
        fleet_digest(&outcome.fleet),
        GOLDEN_FLEET_2X_ROUND_ROBIN,
        "armed-but-idle reliability tier moved the 2x round-robin golden"
    );
    assert_armed_idle_invariants(&outcome);
}

#[test]
fn armed_idle_four_replica_jsq_stays_on_golden() {
    let trace = sharegpt_trace(24.0, 80, 4242);
    let outcome = fleet(4, RouterPolicy::JoinShortestQueue).run_reliable(&trace, &armed_idle());
    assert_eq!(
        fleet_digest(&outcome.fleet),
        GOLDEN_FLEET_4X_JSQ,
        "armed-but-idle reliability tier moved the 4x JSQ golden"
    );
    assert_armed_idle_invariants(&outcome);
}

#[test]
fn armed_idle_four_replica_p2c_stays_on_golden() {
    let trace = sharegpt_trace(24.0, 80, 4242);
    let outcome = fleet(4, RouterPolicy::PowerOfTwoChoices { seed: 0x90f1ee7 })
        .run_reliable(&trace, &armed_idle());
    assert_eq!(
        fleet_digest(&outcome.fleet),
        GOLDEN_FLEET_4X_P2C,
        "armed-but-idle reliability tier moved the 4x p2c golden"
    );
    assert_armed_idle_invariants(&outcome);
}

#[test]
fn armed_idle_summary_rolls_up_a_clean_ledger() {
    let trace = sharegpt_trace(12.0, 40, 9);
    let outcome = fleet(2, RouterPolicy::LeastKvLoad).run_reliable(&trace, &armed_idle());
    let summary = outcome.summary(
        "LoongServe x2",
        "ShareGPT",
        12.0,
        &SloSpec::default_for_lwm(),
    );
    assert!(summary.reliability.is_zero());
    assert_eq!(summary.success_ratio(), 1.0);
    assert_eq!(summary.sla_windows.len(), outcome.sla_windows.len());
}

// ---------------------------------------------------------------------------
// Prefix-cache invalidation on crash (satellite of the reliability tier).
// ---------------------------------------------------------------------------

/// One conversation of strictly-growing turns, one per minute: each turn's
/// prompt is the previous turn's full context plus a new user message, the
/// shape the prefix cache exploits.
fn conversation_trace(turns: u32) -> Trace {
    let mut requests = Vec::new();
    let mut input = 400u64;
    let output = 60u64;
    for turn in 0..turns {
        requests.push(
            Request::new(
                RequestId(turn as u64),
                SimTime::from_secs(60.0 * turn as f64),
                input,
                output,
            )
            .with_conversation(ConversationId(7), turn),
        );
        input += output + 120;
    }
    Trace::from_requests("one growing conversation", requests)
}

/// A crash invalidates the pinned replica's prefix cache: the conversation
/// re-routes to a healthy replica, re-prefills fully exactly once, then
/// resumes hitting the cache it rebuilt there — and the hit-rate accounting
/// stays consistent between the fleet rollup and the per-replica split.
#[test]
fn prefix_cache_invalidation_on_crash_re_prefills_once_and_rebuilds() {
    let turns = 6u32;
    let trace = conversation_trace(turns);
    let cached_fleet = || {
        let mut config =
            FleetConfig::paper_fleet(SystemKind::LoongServe, 2, RouterPolicy::PrefixAffinity);
        config.prefix_cache = Some(PrefixCacheConfig::default());
        FleetEngine::new(config)
    };

    // Baseline: no failures. Affinity pins the conversation to replica 0
    // and every follow-up turn hits the cache there.
    let baseline = cached_fleet().run_reliable(&trace, &ReliabilityConfig::disarmed());
    assert_eq!(baseline.fleet.records.len(), turns as usize);
    assert_eq!(baseline.fleet.cache.lookups, turns as u64);
    assert_eq!(baseline.fleet.cache.hits, turns as u64 - 1);
    assert!(baseline
        .fleet
        .assignments
        .iter()
        .all(|&(_, r)| r == ReplicaId(0)));

    // Crash the pinned replica between turn 1 and turn 2 and keep it down
    // past the end of the trace: turn 2 must re-route.
    let schedule = FailureSchedule::from_events(vec![FailureEvent::new(
        ReplicaId(0),
        SimTime::from_secs(100.0),
        SimTime::from_secs(1_000.0),
    )]);
    let outcome = cached_fleet().run_reliable(
        &trace,
        &ReliabilityConfig::new(schedule).with_retry(RetryPolicy::exponential(2, 1.0)),
    );

    // Everything still completes, exactly once.
    assert_eq!(outcome.fleet.records.len(), turns as usize);
    assert!(outcome.failed.is_empty());
    assert_eq!(outcome.total_requests(), trace.len());

    // Turns 0–1 ran on the pinned replica; the re-pin at the crash is
    // durable, so every later turn lands on replica 1.
    for &(id, replica) in &outcome.fleet.assignments {
        let expected = if id.raw() < 2 {
            ReplicaId(0)
        } else {
            ReplicaId(1)
        };
        assert_eq!(replica, expected, "turn {} mis-routed", id.raw());
    }

    // Exactly one forced full re-prefill: the first re-routed turn misses
    // (the crashed replica's cache is gone, the new replica's is cold),
    // then the rebuilt cache serves every remaining turn.
    assert_eq!(outcome.fleet.cache.lookups, turns as u64);
    assert_eq!(outcome.fleet.cache.hits, baseline.fleet.cache.hits - 1);
    assert!(outcome.fleet.cache.reused_tokens < baseline.fleet.cache.reused_tokens);
    let hits_on_survivor = outcome.fleet.per_replica[1].outcome.cache.hits;
    assert_eq!(
        hits_on_survivor,
        turns as u64 - 3,
        "turns 3.. hit the rebuilt cache"
    );

    // Every prompt token is either prefilled or adopted, in both runs —
    // the crash converts adoptions into re-prefill work, never into loss.
    let trace_input: u64 = trace.requests.iter().map(|r| r.input_len).sum();
    for run in [&baseline, &outcome] {
        let prefilled: u64 = run
            .fleet
            .per_replica
            .iter()
            .map(|r| r.outcome.prefilled_tokens)
            .sum();
        assert_eq!(prefilled + run.fleet.cache.reused_tokens, trace_input);
    }

    // Hit-rate accounting is consistent: the fleet rollup equals the sum
    // of the per-replica counters.
    for run in [&baseline, &outcome] {
        let mut summed = CacheStats::default();
        for r in &run.fleet.per_replica {
            summed.merge(&r.outcome.cache);
        }
        assert_eq!(summed, run.fleet.cache);
    }
}
