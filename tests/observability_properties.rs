//! Observer-inertness and determinism properties of the tracing tier.
//!
//! The contract pinned here, matching `DESIGN.md` §Observability tier:
//!
//! * **Armed ≡ disarmed** — threading a [`TraceSink`] through a run (the
//!   no-op sink or a full [`TraceRecorder`]) changes no decision: the
//!   pinned golden digests from `tests/determinism_golden.rs` reproduce
//!   bit-for-bit, and the traced fleet paths (`run_reliable_stream`,
//!   `run_elastic_stream`) produce outcomes and footprints identical,
//!   field for field, to their plain counterparts. Observation is copies
//!   of already-computed values, emitted after the decision.
//! * **Deterministic sampling** — the sampled span set is a pure function
//!   of `(seed, permille)`: re-running the same traced workload yields
//!   byte-identical Perfetto JSON and series CSV, and every retained span
//!   belongs to a request the config says is sampled.
//! * **Bounded residency** — after `finalize`, no open-request state
//!   remains, and the ledger's counts agree with the retained vectors.

use loongserve::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

#[path = "golden_util.rs"]
mod golden_util;
use golden_util::outcome_digest;

const PROPTEST_SEED: u64 = 0x0b5e_71ab_0808_2026;

fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

/// The six router policies — inertness must hold for all of them.
fn policy(idx: usize) -> RouterPolicy {
    match idx {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        2 => RouterPolicy::LeastKvLoad,
        3 => RouterPolicy::PowerOfTwoChoices { seed: 0xdecade },
        4 => RouterPolicy::PrefixAffinity,
        _ => RouterPolicy::Passthrough,
    }
}

fn fleet(replicas: usize, policy: RouterPolicy, parallel: bool) -> FleetEngine {
    let mut config = FleetConfig::paper_fleet(SystemKind::LoongServe, replicas, policy);
    config.parallel = parallel;
    FleetEngine::new(config)
}

fn crash_schedule(replicas: usize, seed: u64) -> FailureSchedule {
    FailureSchedule::generate(
        replicas,
        SimDuration::from_secs(300.0),
        90.0,
        15.0,
        seed ^ 0xfa11,
    )
}

fn reliability_config(schedule: FailureSchedule, retry_sel: usize) -> ReliabilityConfig {
    let config = ReliabilityConfig::new(schedule).with_sla_window(30.0);
    match retry_sel {
        0 => config,
        1 => config.with_retry(RetryPolicy::exponential(2, 0.5)),
        _ => config
            .with_retry(RetryPolicy::exponential(3, 0.25))
            .with_breaker(CircuitBreakerConfig::new(3, 30.0, 120.0)),
    }
}

fn elastic_config(max_replicas: usize, schedule: FailureSchedule) -> ElasticConfig {
    let mut scaler = AutoscalerConfig::overload_defaults(1, max_replicas);
    scaler.control_interval_s = 20.0;
    scaler.cooldown_s = 10.0;
    scaler.provisioning_delay_s = 7.0;
    scaler.scale_up_backlog_tokens = 30_000;
    scaler.scale_down_backlog_tokens = 8_000;
    ElasticConfig::new(scaler)
        .with_schedule(schedule)
        .with_retry(RetryPolicy::exponential(2, 0.5))
        .with_sla_window(30.0)
}

/// A mixed-class trace: all three traffic classes, bursty arrivals.
fn mixed_trace(count: usize, seed: u64) -> Trace {
    Trace::generate_mixed_classes(
        ArrivalProcess::Poisson { rate: 3.0 },
        count,
        &MixedClassProfile::overload_mix(),
        &mut SimRng::seed(seed),
    )
}

/// A recorder that keeps every span — the strongest observer.
fn full_recorder() -> TraceRecorder {
    TraceRecorder::new(TraceConfig::sample_all())
}

/// The ledger's internal consistency: retained vectors match their counts
/// and no open-request state survives `finalize`.
fn assert_ledger_consistent(rec: &TraceRecorder) {
    let ledger = rec.ledger();
    assert_eq!(ledger.open_requests, 0, "finalize must close every entry");
    assert_eq!(ledger.spans_recorded, rec.spans().len() as u64);
    assert_eq!(ledger.instants_recorded, rec.instants().len() as u64);
    assert!(ledger.sampled_requests <= ledger.requests_seen);
    assert!(ledger.peak_open_requests >= ledger.open_requests);
}

// ---------------------------------------------------------------------------
// Pinned goldens: the armed-but-no-op sink and the full recorder both
// reproduce the exact digests captured before the tracing tier existed.
// ---------------------------------------------------------------------------

// Same constants as `tests/determinism_golden.rs` (captured at commit
// a66a012): the traced run path must not move a single bit.
const GOLDEN_LOONGSERVE_SHAREGPT: u64 = 0x313d_174f_011c_a40b;
const GOLDEN_LOONGSERVE_MIXED: u64 = 0xe045_5f8a_c734_c8e8;
const GOLDEN_VLLM_SHAREGPT: u64 = 0x9fe5_405f_ae70_e47a;

fn traced_digest(
    kind: SystemKind,
    dataset: DatasetKind,
    rate: f64,
    count: usize,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> u64 {
    let trace = WorkloadSpec::Dataset(dataset).generate(rate, count, seed);
    let system = SystemUnderTest::paper_single_node(kind);
    let mut engine = system.build_engine(Some(&trace));
    outcome_digest(&engine.run_traced(&trace, sink))
}

#[test]
fn noop_sink_reproduces_pinned_goldens() {
    let cases = [
        (
            SystemKind::LoongServe,
            DatasetKind::ShareGpt,
            6.0,
            80,
            4242,
            GOLDEN_LOONGSERVE_SHAREGPT,
        ),
        (
            SystemKind::LoongServe,
            DatasetKind::Mixed,
            0.8,
            40,
            77,
            GOLDEN_LOONGSERVE_MIXED,
        ),
        (
            SystemKind::Vllm,
            DatasetKind::ShareGpt,
            6.0,
            80,
            4242,
            GOLDEN_VLLM_SHAREGPT,
        ),
    ];
    for (kind, dataset, rate, count, seed, expected) in cases {
        let actual = traced_digest(kind, dataset, rate, count, seed, &mut NoopSink);
        assert_eq!(
            actual, expected,
            "{kind:?}/{dataset:?}: the armed no-op sink moved the golden digest \
             (expected 0x{expected:016x}, got 0x{actual:016x})"
        );
    }
}

#[test]
fn recording_sink_reproduces_pinned_goldens() {
    let cases = [
        (
            SystemKind::LoongServe,
            DatasetKind::ShareGpt,
            6.0,
            80,
            4242,
            GOLDEN_LOONGSERVE_SHAREGPT,
        ),
        (
            SystemKind::LoongServe,
            DatasetKind::Mixed,
            0.8,
            40,
            77,
            GOLDEN_LOONGSERVE_MIXED,
        ),
        (
            SystemKind::Vllm,
            DatasetKind::ShareGpt,
            6.0,
            80,
            4242,
            GOLDEN_VLLM_SHAREGPT,
        ),
    ];
    for (kind, dataset, rate, count, seed, expected) in cases {
        let mut rec = full_recorder();
        let actual = traced_digest(kind, dataset, rate, count, seed, &mut rec);
        assert_eq!(
            actual, expected,
            "{kind:?}/{dataset:?}: the full recorder moved the golden digest \
             (expected 0x{expected:016x}, got 0x{actual:016x})"
        );
        // The recorder actually observed the run, not just stayed empty.
        assert!(rec.ledger().requests_seen > 0);
        assert!(!rec.spans().is_empty());
    }
}

// ---------------------------------------------------------------------------
// Property: traced ≡ plain across every run path.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ci_config(8))]

    /// The bare engine under both sinks reproduces the plain outcome
    /// bit for bit, across systems, datasets and seeds.
    #[test]
    fn engine_traced_run_is_inert(
        seed in 0u64..1_000_000,
        count in 10usize..40,
        kind_sel in 0usize..2,
        dataset_sel in 0usize..2,
    ) {
        let kind = if kind_sel == 0 { SystemKind::LoongServe } else { SystemKind::Vllm };
        let dataset = if dataset_sel == 0 { DatasetKind::ShareGpt } else { DatasetKind::Mixed };
        let trace = WorkloadSpec::Dataset(dataset).generate(4.0, count, seed);
        let system = SystemUnderTest::paper_single_node(kind);

        let plain = system.build_engine(Some(&trace)).run(&trace);
        let noop = system.build_engine(Some(&trace)).run_traced(&trace, &mut NoopSink);
        let mut rec = full_recorder();
        let recorded = system.build_engine(Some(&trace)).run_traced(&trace, &mut rec);
        rec.finalize(recorded.sim_time);

        prop_assert_eq!(outcome_digest(&plain), outcome_digest(&noop));
        prop_assert_eq!(outcome_digest(&plain), outcome_digest(&recorded));
        assert_ledger_consistent(&rec);
    }

    /// `run_reliable_stream_traced` ≡ `run_reliable_stream`: crashes,
    /// casualties, retries and breakers resolve identically whether or not
    /// a recorder watches, serial and pooled, for every router policy.
    #[test]
    fn reliable_stream_traced_is_inert(
        seed in 0u64..1_000_000,
        count in 12usize..32,
        replicas in 2usize..4,
        policy_idx in 0usize..6,
        retry_sel in 0usize..3,
        parallel_sel in 0usize..2,
    ) {
        let parallel = parallel_sel == 1;
        let trace = mixed_trace(count, seed);
        let rel = reliability_config(crash_schedule(replicas, seed), retry_sel);

        let (plain, plain_fp) = fleet(replicas, policy(policy_idx), parallel)
            .run_reliable_stream(TraceStream::from_trace(trace.clone()), &rel);
        let mut rec = full_recorder();
        let (traced, traced_fp) = fleet(replicas, policy(policy_idx), parallel)
            .run_reliable_stream_traced(TraceStream::from_trace(trace.clone()), &rel, &mut rec);

        prop_assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
        prop_assert_eq!(format!("{plain_fp:?}"), format!("{traced_fp:?}"));
        assert_ledger_consistent(&rec);
    }

    /// `run_elastic_stream_traced` ≡ `run_elastic_stream`: scale events,
    /// drains, sheds, crash casualties and retries all land identically
    /// under observation.
    #[test]
    fn elastic_stream_traced_is_inert(
        seed in 0u64..1_000_000,
        count in 12usize..32,
        max_replicas in 2usize..4,
        policy_idx in 0usize..6,
        parallel_sel in 0usize..2,
    ) {
        let parallel = parallel_sel == 1;
        let trace = mixed_trace(count, seed);
        let cfg = elastic_config(max_replicas, crash_schedule(max_replicas, seed));

        let (plain, plain_fp) = fleet(max_replicas, policy(policy_idx), parallel)
            .run_elastic_stream(TraceStream::from_trace(trace.clone()), &cfg);
        let mut rec = full_recorder();
        let (traced, traced_fp) = fleet(max_replicas, policy(policy_idx), parallel)
            .run_elastic_stream_traced(TraceStream::from_trace(trace.clone()), &cfg, &mut rec);

        prop_assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
        prop_assert_eq!(format!("{plain_fp:?}"), format!("{traced_fp:?}"));
        assert_ledger_consistent(&rec);
    }

    /// Sampled spans are a pure function of `(seed, permille)`: running
    /// the same traced workload twice yields byte-identical exports, and
    /// every retained span passes the config's own sampling predicate.
    #[test]
    fn sampled_span_set_is_deterministic_per_seed(
        seed in 0u64..1_000_000,
        count in 16usize..48,
        permille_sel in 0usize..3,
        sample_seed in 0u64..1_000_000,
    ) {
        let cfg = TraceConfig {
            sample_permille: [50, 250, 1000][permille_sel],
            seed: sample_seed,
            ..TraceConfig::default()
        };
        let run = || {
            let trace = mixed_trace(count, seed);
            let rel = reliability_config(crash_schedule(2, seed), 2);
            let mut rec = TraceRecorder::new(cfg);
            fleet(2, RouterPolicy::JoinShortestQueue, false)
                .run_reliable_stream_traced(TraceStream::from_trace(trace), &rel, &mut rec);
            rec
        };
        let a = run();
        let b = run();
        prop_assert_eq!(perfetto_json(&a), perfetto_json(&b));
        prop_assert_eq!(series_csv(&a), series_csv(&b));
        for span in a.spans() {
            prop_assert!(
                cfg.sampled(RequestId(span.id)),
                "span retained for unsampled request {}", span.id
            );
        }
        assert_ledger_consistent(&a);
    }

    /// At permille 1000 the recorder samples every distinct admitted
    /// request: the sampled count equals the ids that reached admission.
    #[test]
    fn full_sampling_covers_every_admitted_request(
        seed in 0u64..1_000_000,
        count in 12usize..32,
        replicas in 2usize..4,
    ) {
        let trace = mixed_trace(count, seed);
        let rel = reliability_config(crash_schedule(replicas, seed), 1);
        let mut rec = full_recorder();
        let (outcome, _) = fleet(replicas, RouterPolicy::RoundRobin, false)
            .run_reliable_stream_traced(TraceStream::from_trace(trace.clone()), &rel, &mut rec);

        // Ids that reached an engine at least once: completed, unfinished,
        // rejected or terminally failed — i.e. everything in the trace.
        let admitted: BTreeSet<u64> = rec.spans().iter().map(|s| s.id).collect();
        prop_assert_eq!(rec.ledger().sampled_requests, admitted.len() as u64);
        prop_assert!(admitted.len() <= trace.len());
        prop_assert!(rec.ledger().requests_seen >= admitted.len() as u64);
        prop_assert_eq!(
            outcome.total_requests(),
            trace.len()
        );
    }
}

// ---------------------------------------------------------------------------
// Attribution and export sanity on concrete runs.
// ---------------------------------------------------------------------------

/// `SystemUnderTest::run_traced` attaches a non-zero attribution to the
/// summary, the attribution's queue+prefill+decode mass covers completed
/// work, and the markdown table renders a totals row.
#[test]
fn run_traced_attaches_time_attribution() {
    let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
    let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(5.0, 40, 42);
    let slo = SloSpec::default_for_lwm();
    let mut rec = full_recorder();
    let (summary, outcome) = system.run_traced(&trace, 5.0, &slo, &mut rec);

    let (plain_summary, plain_outcome) = system.run(&trace, 5.0, &slo);
    assert_eq!(outcome_digest(&outcome), outcome_digest(&plain_outcome));
    assert_eq!(summary.completed, plain_summary.completed);

    assert!(!summary.attribution.is_zero());
    let total = summary.attribution.total();
    assert!(
        total.prefill_s > 0.0,
        "completed prefills must be attributed"
    );
    assert!(total.decode_s > 0.0, "completed decodes must be attributed");
    assert_eq!(total.retry_prefill_s, 0.0, "no crashes here, no retry work");
    assert_eq!(total.downtime_s, 0.0);
    let table = summary.attribution.markdown_table();
    assert!(table.contains("| total |"));
}

/// A crashing reliable run attributes retry prefill and downtime — the
/// "work the fleet paid twice" columns are live.
#[test]
fn crash_retries_attribute_downtime() {
    let trace = Trace::generate(
        DatasetKind::ShareGpt,
        ArrivalProcess::Poisson { rate: 2.0 },
        120,
        &mut SimRng::seed(7),
    );
    let schedule = FailureSchedule::generate(2, SimDuration::from_secs(200.0), 40.0, 10.0, 13);
    let rel = ReliabilityConfig::new(schedule)
        .with_retry(RetryPolicy::exponential(3, 0.5))
        .with_sla_window(30.0);
    let mut rec = full_recorder();
    let (outcome, _) = fleet(2, RouterPolicy::JoinShortestQueue, false).run_reliable_stream_traced(
        TraceStream::from_trace(trace),
        &rel,
        &mut rec,
    );

    assert!(
        outcome.reliability.recovered_requests > 0,
        "schedule must actually produce retries for this test to bite"
    );
    let total = rec.attribution().total();
    assert!(
        total.downtime_s > 0.0,
        "retries must attribute backoff downtime"
    );
    assert!(
        rec.instants().iter().any(|i| i.name == "crash"),
        "crash instants must be recorded"
    );
    assert!(
        rec.instants().iter().any(|i| i.name == "retry"),
        "retry instants must be recorded"
    );
    assert_ledger_consistent(&rec);
}

/// Zero-permille sampling keeps aggregation alive but retains no spans:
/// the series still fill while the span vector stays empty.
#[test]
fn zero_sampling_still_aggregates_series() {
    let trace = mixed_trace(40, 99);
    let cfg = TraceConfig {
        sample_permille: 0,
        ..TraceConfig::default()
    };
    let mut rec = TraceRecorder::new(cfg);
    let rel = reliability_config(crash_schedule(2, 99), 1);
    fleet(2, RouterPolicy::RoundRobin, false).run_reliable_stream_traced(
        TraceStream::from_trace(trace),
        &rel,
        &mut rec,
    );

    assert!(rec.spans().is_empty());
    assert_eq!(rec.ledger().sampled_requests, 0);
    assert!(rec.ledger().requests_seen > 0);
    assert!(
        rec.ledger().series_bins > 0,
        "aggregation must run regardless"
    );
    assert!(!rec.attribution().is_zero(), "attribution is always-on");
}
