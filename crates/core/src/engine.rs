//! The serving engine: a discrete-event simulation of one serving system.
//!
//! The engine owns everything a real serving frontend plus cluster would
//! own — the request lifecycle, the elastic instances, the unified KV pool,
//! and the clock — and delegates *policy* to a [`Scheduler`]. At every
//! scheduling point (a request arrival while resources are idle, or an
//! iteration/migration completing) it builds a [`SchedulerView`], executes
//! the returned [`Action`]s through the ESP mechanisms, and advances the
//! clock by the cost model's predicted iteration latencies.
//!
//! The same engine runs LoongServe and every baseline; only the scheduler
//! and the tensor-parallel degree of the elastic instances differ.

use loong_cluster::gpu::LinkSpec;
use loong_cluster::memory::{HostMemoryBudget, MemoryBudget};
use loong_cluster::topology::ClusterSpec;
use loong_esp::decode::{execute_decode, DecodePlan};
use loong_esp::group::EspGroup;
use loong_esp::instance::InstanceRegistry;
use loong_esp::prefill::{execute_prefill, PrefillPlan, PrefillRequest};
use loong_esp::scaling::migrate_request;
use loong_kvcache::placement::PlacementStrategy;
use loong_kvcache::prefix::{PrefixCacheConfig, PrefixDemand};
use loong_kvcache::unified::UnifiedKvPool;
use loong_metrics::cache::CacheStats;
use loong_metrics::pressure::PressureStats;
use loong_metrics::record::RequestRecord;
use loong_model::attention::AttentionCostPolicy;
use loong_model::config::ModelConfig;
use loong_model::roofline::{CostModel, ParallelConfig};
use loong_model::sib::ScalingInfoBase;
use loong_sched::types::{
    Action, DecodingRequest, PendingRequest, ScalingEvent, Scheduler, SwappedRequest, ViewScratch,
};
use loong_simcore::events::{Event, EventQueue};
use loong_simcore::ids::{GroupId, IdAllocator, InstanceId, RequestId};
use loong_simcore::profile;
use loong_simcore::rng::SimRng;
use loong_simcore::table::{PhaseClass, RequestTable};
use loong_simcore::time::{SimDuration, SimTime};
use loong_trace::{AdmitInfo, Gauges, NoopSink, SpanPhase, Terminal, TraceSink};
use loong_workload::request::Request;
use loong_workload::trace::Trace;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Static configuration of a serving-engine run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Tensor-parallel degree of each elastic instance.
    pub tp: usize,
    /// The model being served.
    pub model: ModelConfig,
    /// Fraction of GPU memory reserved for activations and buffers.
    pub workspace_fraction: f64,
    /// Measurement noise injected when profiling the SIB.
    pub sib_noise: f64,
    /// Seed for all engine-internal randomness.
    pub seed: u64,
    /// Hard cap on simulated time; requests still in flight when it is
    /// reached are dropped from the records. `None` means no cap.
    pub max_sim_time: Option<SimDuration>,
    /// The host-DRAM KV swap tier. `None` (the default) disables it: no
    /// host pool exists and swap actions are rejected, keeping every run
    /// bit-for-bit on the pre-subsystem path.
    pub host_swap: Option<HostSwapConfig>,
    /// Per-instance KV slot capacity override for overload experiments;
    /// `None` computes the capacity from the memory budget as always.
    pub kv_capacity_override: Option<u64>,
    /// The prefix-cache tier. `None` (the default) disables it: finished
    /// requests release their KV exactly as before and no lookup, retention
    /// or eviction code runs, keeping every run bit-for-bit on the
    /// pre-tier path.
    pub prefix_cache: Option<PrefixCacheConfig>,
    /// Attention-cost policy the run's cost model prices attention with.
    /// `Dense` (the default) keeps every run bit-for-bit on the pre-policy
    /// path; the sparse policies model LServe-style attention kernels.
    pub attention: AttentionCostPolicy,
}

/// Configuration of the host-DRAM KV swap tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSwapConfig {
    /// Host pool capacity in KV token slots (cluster-wide).
    pub capacity_tokens: u64,
    /// The device↔host link swap transfers are costed on (PCIe).
    pub link: LinkSpec,
}

impl HostSwapConfig {
    /// Sizes the tier from the cluster's per-node DRAM: total host memory
    /// across nodes, minus the reserved fraction, divided by the model's
    /// whole-footprint KV bytes per token.
    pub fn from_cluster(
        cluster: &ClusterSpec,
        model: &ModelConfig,
        reserved_fraction: f64,
    ) -> Self {
        let budget = HostMemoryBudget::new(
            cluster.host_memory_bytes * cluster.nodes as f64,
            reserved_fraction,
            model.kv_bytes_per_token(),
        );
        HostSwapConfig {
            capacity_tokens: budget.kv_slot_capacity(),
            link: cluster.host_link,
        }
    }

    /// An explicitly sized tier over the cluster's host link (small hosts
    /// for fallback tests, huge ones for stress scenarios).
    pub fn with_tokens(cluster: &ClusterSpec, capacity_tokens: u64) -> Self {
        HostSwapConfig {
            capacity_tokens,
            link: cluster.host_link,
        }
    }
}

impl EngineConfig {
    /// The paper's single-node LoongServe configuration: 8 A800 GPUs, TP=2
    /// (four elastic instances), serving LWM-1M-Text.
    pub fn paper_single_node() -> Self {
        EngineConfig {
            cluster: ClusterSpec::single_node_a800(8),
            tp: 2,
            model: ModelConfig::lwm_1m_text(),
            workspace_fraction: 0.10,
            sib_noise: 0.01,
            seed: 0x1005e,
            max_sim_time: None,
            host_swap: None,
            kv_capacity_override: None,
            prefix_cache: None,
            attention: AttentionCostPolicy::Dense,
        }
    }

    /// KV slot capacity of one elastic instance under this configuration.
    pub fn instance_kv_capacity(&self) -> u64 {
        let budget = MemoryBudget::new(
            &self.cluster.gpu,
            self.model.weight_bytes_per_gpu(self.tp),
            self.workspace_fraction,
            self.model.kv_bytes_per_token_per_gpu(self.tp),
        );
        budget.kv_slot_capacity()
    }
}

/// Per-request dynamic state inside the engine.
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Waiting in the pending queue; `prefilled` prompt tokens already
    /// processed by chunked-prefill iterations.
    Pending { prefilled: u64 },
    /// A full prefill iteration is in flight.
    Prefilling,
    /// In the decode phase, ready for the next iteration.
    DecodeReady { generated: u64 },
    /// A decode iteration is in flight.
    Decoding { generated: u64 },
    /// KV is being migrated between instances.
    Migrating { generated: u64 },
    /// KV is being copied to the host swap tier (D2H transfer in flight).
    SwappingOut { generated: u64 },
    /// Fully parked on the host swap tier, waiting for pressure to clear.
    Swapped { generated: u64 },
    /// KV is being restored from the host swap tier (H2D in flight).
    SwappingIn { generated: u64 },
    /// All output tokens produced.
    Finished,
    /// Rejected by the scheduler.
    Rejected,
}

impl Phase {
    /// The coarse class used by the request table's phase indices.
    fn class(&self) -> PhaseClass {
        match self {
            Phase::Pending { .. } => PhaseClass::Pending,
            Phase::DecodeReady { .. } => PhaseClass::DecodeReady,
            Phase::Prefilling
            | Phase::Decoding { .. }
            | Phase::Migrating { .. }
            | Phase::SwappingOut { .. }
            | Phase::SwappingIn { .. } => PhaseClass::InFlight,
            Phase::Swapped { .. } => PhaseClass::Swapped,
            Phase::Finished | Phase::Rejected => PhaseClass::Done,
        }
    }
}

#[derive(Debug, Clone)]
struct RequestState {
    request: Request,
    phase: Phase,
    prefill_start: Option<SimTime>,
    first_token: Option<SimTime>,
    finish: Option<SimTime>,
    preemptions: u32,
    /// Decode checkpoint of a preempt-and-recompute eviction: output tokens
    /// generated before the KV was discarded. The next prefill recomputes
    /// the KV of prompt *and* checkpointed tokens (vLLM's recompute
    /// semantics) and decoding resumes here rather than restarting — zero
    /// for never-preempted requests.
    resume_generated: u64,
    /// Prompt tokens adopted from the prefix cache at prefill dispatch;
    /// their KV was renamed in place, so the prefill processes (and is
    /// charged for) only the remaining suffix. Reset to zero by a
    /// preempt-and-recompute eviction, which discards the adopted KV along
    /// with everything else. Always zero with the tier disabled.
    reused: u64,
    /// True while the request may still adopt its conversation's cached
    /// prefix: set at arrival for conversation-tagged requests when the
    /// tier is enabled, cleared at its first prefill dispatch (hit or
    /// miss) or rejection. Mirrors one waiter pin in the prefix cache.
    waiting: bool,
}

impl RequestState {
    /// The prompt the next prefill must process: the original input plus
    /// any checkpointed output tokens whose KV a preemption discarded,
    /// minus tokens adopted from the prefix cache.
    fn effective_input(&self) -> u64 {
        self.request.input_len + self.resume_generated - self.reused
    }

    /// The declared output bound still ahead of the checkpoint; shrinks
    /// after a preemption so `effective_input + remaining_max_output` is
    /// invariant across evictions (admission reservations stay stable).
    fn remaining_max_output(&self) -> u64 {
        self.request
            .max_output_len
            .saturating_sub(self.resume_generated)
    }
}

/// Builds the scheduler-view entry for a pending request.
///
/// With the prefix cache enabled, the advertised `input_len` is the
/// *uncached suffix*: the prompt tokens a prefill would actually have to
/// process after adopting the conversation's retained prefix. Re-matching
/// here — at every scheduling point — is what lets a follow-up that arrived
/// while its previous turn was still decoding start hitting the cache the
/// moment that turn finishes. Admission (KV reservation and the batching
/// DP budget) therefore prices the suffix, not the full prompt; the cached
/// tokens are already allocated in the pool. With the tier disabled the
/// lookup short-circuits to zero and the entry is bit-for-bit the old one.
fn pending_entry(s: &RequestState, prefilled: u64, pool: &UnifiedKvPool) -> PendingRequest {
    let cached = if s.waiting {
        let conversation = s
            .request
            .conversation
            .expect("waiting requests have a conversation");
        pool.prefix_match_len(conversation, s.effective_input())
    } else {
        0
    };
    PendingRequest {
        id: s.request.id,
        arrival: s.request.arrival,
        input_len: s.effective_input() - cached,
        prefilled_len: prefilled,
        max_output_len: s.remaining_max_output(),
    }
}

/// Sets a request's phase and keeps the table's phase indices in sync.
///
/// Every phase write in the engine goes through here: the phase-index sets
/// are the *only* source of the scheduler view's pending/decoding lists, so
/// a direct `phase =` write that skipped the class update would silently
/// desynchronise them (the debug-build view audit would catch it).
///
/// It is also the tracing chokepoint: each write emits the matching
/// lifecycle event into the [`TraceSink`] *after* the decision is already
/// made, so sinks observe every transition but can influence none. Engine
/// phases map onto trace spans many-to-one — the per-iteration
/// `DecodeReady`/`Decoding` cycle all maps to [`SpanPhase::Decode`] — and
/// the emission is elided here whenever the span phase does not change:
/// recorders would coalesce the repeat anyway, and the decode loop cycles
/// phases every iteration, so skipping the no-op emission keeps the
/// tracing overhead proportional to *span* transitions, not engine
/// iterations. Terminal phases become [`Terminal`] events rather than
/// spans and are always emitted.
fn set_phase(
    table: &mut RequestTable<RequestState>,
    id: RequestId,
    phase: Phase,
    now: SimTime,
    sink: &mut dyn TraceSink,
) {
    /// The span a non-terminal engine phase belongs to.
    fn span_of(phase: &Phase) -> Option<SpanPhase> {
        match phase {
            Phase::Pending { .. } => Some(SpanPhase::Queued),
            Phase::Prefilling => Some(SpanPhase::Prefill),
            Phase::DecodeReady { .. } | Phase::Decoding { .. } => Some(SpanPhase::Decode),
            Phase::Migrating { .. } => Some(SpanPhase::Migrate),
            Phase::SwappingOut { .. } => Some(SpanPhase::SwapOut),
            Phase::Swapped { .. } => Some(SpanPhase::SwappedOut),
            Phase::SwappingIn { .. } => Some(SpanPhase::SwapIn),
            Phase::Finished | Phase::Rejected => None,
        }
    }

    match &phase {
        Phase::Finished => sink.on_terminal(now, id, Terminal::Completed),
        Phase::Rejected => sink.on_terminal(now, id, Terminal::Rejected),
        other => {
            let span = span_of(other).expect("non-terminal phase has a span");
            let prev = table.get(id).and_then(|s| span_of(&s.phase));
            if prev != Some(span) {
                sink.on_phase(now, id, span);
            }
        }
    }
    let class = phase.class();
    let state = table.get_mut(id).expect("known request");
    state.phase = phase;
    table.set_class(id, class);
}

/// Incrementally maintained idle/busy partition of the elastic instances.
///
/// Replaces the per-point re-filtering of `all_ids()` against a
/// `busy_until` map: dispatch moves an instance idle→busy, work completion
/// moves it back, and both sides iterate in instance-id order so the
/// scheduler view stays bit-for-bit identical to the old sorted rebuild.
#[derive(Debug)]
struct InstanceTracker {
    idle: BTreeSet<InstanceId>,
    busy: BTreeMap<InstanceId, SimTime>,
}

impl InstanceTracker {
    fn new(num_instances: usize) -> Self {
        InstanceTracker {
            idle: (0..num_instances).map(InstanceId::from).collect(),
            busy: BTreeMap::new(),
        }
    }

    /// Marks `instance` busy until `until`.
    fn dispatch(&mut self, instance: InstanceId, until: SimTime) {
        self.idle.remove(&instance);
        self.busy.insert(instance, until);
    }

    /// Marks `instance` idle again once its iteration completes.
    fn complete(&mut self, instance: InstanceId) {
        if self.busy.remove(&instance).is_some() {
            self.idle.insert(instance);
        }
    }

    /// When `instance` is busy, the time its iteration ends.
    #[cfg(debug_assertions)]
    fn busy_until(&self, instance: InstanceId) -> Option<SimTime> {
        self.busy.get(&instance).copied()
    }

    /// Copies the idle and busy sets into the view scratch buffers, in
    /// instance-id order.
    fn fill_view(&self, scratch: &mut ViewScratch) {
        scratch.idle.extend(self.idle.iter().copied());
        scratch.busy.extend(self.busy.iter().map(|(&i, &t)| (i, t)));
    }
}

/// Running mean of finished requests' decode latencies (the `AvgLat_d` term
/// of Eq. 2), maintained as a sum + count instead of re-summing an
/// unbounded vector at every scheduling point. Values are accumulated in
/// finish order, which is exactly the order the old full re-sum visited
/// them, so the floating-point result is bit-for-bit identical.
#[derive(Debug, Default)]
struct DecodeLatencyStats {
    sum: f64,
    count: u64,
}

impl DecodeLatencyStats {
    fn record(&mut self, latency_s: f64) {
        self.sum += latency_s;
        self.count += 1;
    }

    fn average(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Events driving the simulation.
#[derive(Debug)]
enum EngineEvent {
    Arrival(RequestId),
    WorkComplete(u64),
}

/// An iteration or migration in flight.
#[derive(Debug)]
enum Work {
    Prefill {
        instances: Vec<InstanceId>,
        requests: Vec<RequestId>,
    },
    Decode {
        instances: Vec<InstanceId>,
        requests: Vec<RequestId>,
    },
    ChunkedPrefill {
        instances: Vec<InstanceId>,
        prefill_request: RequestId,
        /// Prompt tokens processed once this iteration completes.
        prefilled_after: u64,
        decode_requests: Vec<RequestId>,
    },
    Migration {
        request: RequestId,
    },
    /// A preemption teardown: the KV was already freed at action time; the
    /// (epsilon-length) event only guarantees another scheduling point sees
    /// the freed slots.
    Preempt,
    SwapOut {
        request: RequestId,
    },
    SwapIn {
        request: RequestId,
    },
}

/// The result of one engine run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Completed requests with full lifecycle timestamps.
    pub records: Vec<RequestRecord>,
    /// Requests the scheduler rejected, with reasons.
    pub rejected: Vec<(RequestId, String)>,
    /// Requests neither finished nor rejected when the run ended (overload
    /// or simulated-time cap).
    pub unfinished: usize,
    /// Scaling events reported by the scheduler.
    pub scaling_events: Vec<ScalingEvent>,
    /// Total simulated time of the run.
    pub sim_time: SimTime,
    /// Number of iterations executed (prefill + decode + chunked).
    pub iterations: u64,
    /// Bytes moved by explicit KV migrations.
    pub migration_bytes: f64,
    /// Wall-clock-free sanity counter: scheduler invocations.
    pub scheduler_calls: u64,
    /// Memory-pressure activity: preempt-and-recompute evictions, swap
    /// traffic and stall time. All-zero whenever the run never crossed a
    /// pressure watermark.
    pub pressure: PressureStats,
    /// Prefix-cache activity: lookups, adoptions, reused tokens, saved
    /// prefill seconds and evictions. All-zero whenever the tier is
    /// disabled.
    pub cache: CacheStats,
    /// Total prompt tokens processed by prefill and chunked-prefill
    /// iterations. With the prefix cache enabled this counts only the
    /// uncached suffixes, so on a multi-turn trace it is strictly smaller
    /// than the cache-off figure (the reuse-correctness property pins
    /// this). Fully determined by the iteration stream the golden digests
    /// already pin, so it is not folded into them.
    pub prefilled_tokens: u64,
}

/// The serving engine.
pub struct ServingEngine {
    config: EngineConfig,
    registry: InstanceRegistry,
    cost_model: CostModel,
    sib: ScalingInfoBase,
    scheduler: Box<dyn Scheduler>,
}

impl ServingEngine {
    /// Builds an engine for the given configuration and scheduling policy.
    ///
    /// The SIB is profiled immediately (as the real system does offline)
    /// over the parallel configurations reachable with the configured
    /// tensor-parallel degree.
    pub fn new(config: EngineConfig, scheduler: Box<dyn Scheduler>) -> Self {
        config.cluster.validate().expect("valid cluster");
        config.model.validate().expect("valid model");
        let registry = InstanceRegistry::build(&config.cluster, config.tp);
        let cost_model = CostModel::builder(config.model.clone())
            .gpu(config.cluster.gpu.clone())
            .attention(config.attention)
            .build();
        let mut rng = SimRng::seed(config.seed);
        let configs: Vec<ParallelConfig> = (1..=registry.num_instances())
            .map(|sp| ParallelConfig::new(config.tp, sp))
            .collect();
        let sib = ScalingInfoBase::profile(
            &cost_model,
            &configs,
            config.cluster.intra_node_link,
            config.sib_noise,
            &mut rng,
        );
        ServingEngine {
            config,
            registry,
            cost_model,
            sib,
            scheduler,
        }
    }

    /// The instance registry used by this engine.
    pub fn registry(&self) -> &InstanceRegistry {
        &self.registry
    }

    /// The scheduler's report label.
    pub fn scheduler_name(&self) -> String {
        self.scheduler.name()
    }

    /// Runs the engine over a trace and returns the outcome.
    ///
    /// Equivalent to [`ServingEngine::run_traced`] with a [`NoopSink`]
    /// (and bit-for-bit identical to it with *any* sink — sinks observe,
    /// they cannot steer).
    pub fn run(&mut self, trace: &Trace) -> RunOutcome {
        self.run_traced(trace, &mut NoopSink)
    }

    /// Runs the engine over a trace, emitting every request lifecycle
    /// edge, cache event and scheduling-point gauge into `sink`.
    ///
    /// The loop maintains every scheduler-view input incrementally — phase
    /// index sets in the [`RequestTable`], the idle/busy instance
    /// partition, the KV residency index, running latency stats — so one
    /// scheduling point costs O(active requests + actions) instead of
    /// O(all requests ever seen). Debug builds shadow every view with a
    /// naive full-scan rebuild and assert equality.
    pub fn run_traced(&mut self, trace: &Trace, sink: &mut dyn TraceSink) -> RunOutcome {
        let capacity = self
            .config
            .kv_capacity_override
            .unwrap_or_else(|| self.config.instance_kv_capacity());
        let mut pool = UnifiedKvPool::new(self.registry.num_instances(), capacity);
        if let Some(host) = &self.config.host_swap {
            pool.enable_host_tier(host.capacity_tokens);
        }
        if let Some(prefix) = &self.config.prefix_cache {
            pool.enable_prefix_cache(*prefix);
        }
        let cache_on = pool.prefix_enabled();
        let mut cache_stats = CacheStats::default();
        let host_link = self.config.host_swap.as_ref().map(|h| h.link);
        // Whole-model KV footprint: a swapped token leaves every GPU shard.
        let kv_bytes_per_token = self.config.model.kv_bytes_per_token();
        let mut pressure_stats = PressureStats::default();
        let mut queue: EventQueue<EngineEvent> = EventQueue::new();
        let mut table: RequestTable<RequestState> =
            RequestTable::with_capacity(trace.requests.len());
        for req in &trace.requests {
            table.insert(
                req.id,
                RequestState {
                    request: req.clone(),
                    phase: Phase::Pending { prefilled: 0 },
                    prefill_start: None,
                    first_token: None,
                    finish: None,
                    preemptions: 0,
                    resume_generated: 0,
                    reused: 0,
                    waiting: false,
                },
            );
            queue.push(req.arrival, EngineEvent::Arrival(req.id));
        }
        let mut instances_state = InstanceTracker::new(self.registry.num_instances());
        let mut in_flight: HashMap<u64, Work> = HashMap::new();
        let mut work_ids = IdAllocator::<RequestId>::new();
        let mut group_ids = IdAllocator::<GroupId>::new();
        let mut rejected: Vec<(RequestId, String)> = Vec::new();
        let mut iterations = 0u64;
        let mut migration_bytes = 0.0f64;
        let mut scheduler_calls = 0u64;
        let mut prefilled_tokens = 0u64;
        let mut decode_stats = DecodeLatencyStats::default();
        // Reusable per-point buffers: the steady-state loop never allocates
        // them again.
        let mut scratch = ViewScratch::new();
        let mut batch: Vec<Event<EngineEvent>> = Vec::new();
        let mut claimed: Vec<InstanceId> = Vec::new();
        #[cfg(debug_assertions)]
        let mut audit = audit::ViewAudit::default();

        let deadline = self.config.max_sim_time.map(|d| SimTime::ZERO + d);

        while !queue.is_empty() {
            queue.pop_simultaneous_into(&mut batch);
            profile::add_events_popped(batch.len() as u64);
            profile::add_sched_points(1);
            let now = queue.now();
            if let Some(deadline) = deadline {
                if now > deadline {
                    break;
                }
            }
            for ev in batch.drain(..) {
                match ev.payload {
                    // Requests become visible to the scheduler only once
                    // their arrival event fires: admission assigns the rank
                    // that orders every phase-index iteration.
                    EngineEvent::Arrival(id) => {
                        table.admit(id);
                        {
                            let s = table.get(id).expect("known request");
                            sink.on_admitted(
                                now,
                                AdmitInfo {
                                    id,
                                    class: s.request.class,
                                    conversation: s.request.conversation,
                                    input_len: s.request.input_len,
                                    output_len: s.request.output_len,
                                },
                            );
                        }
                        if cache_on {
                            let s = table.get_mut(id).expect("known request");
                            if let Some(conversation) = s.request.conversation {
                                // Pin the conversation's (current or future)
                                // entry until this request's first prefill.
                                s.waiting = true;
                                pool.prefix_waiter_add(conversation);
                            }
                        }
                        #[cfg(debug_assertions)]
                        audit.on_arrival(id);
                    }
                    EngineEvent::WorkComplete(work_id) => {
                        let work = in_flight.remove(&work_id).expect("unknown work id");
                        Self::complete_work(
                            work,
                            now,
                            &mut table,
                            &mut pool,
                            &mut instances_state,
                            &mut decode_stats,
                            &mut cache_stats,
                            sink,
                        );
                    }
                }
            }

            // Prefix-cache housekeeping precedes the view so the scheduler
            // sees the post-eviction free slots: watermark eviction keeps
            // retained KV from crowding out admission, and head-of-queue
            // headroom eviction guarantees the FCFS head can always reserve
            // at least what it could reserve with the tier disabled (the
            // no-livelock argument: cached entries can never starve the
            // head, so cache-on runs complete whatever cache-off runs
            // complete).
            if cache_on {
                let head = table.iter_class(PhaseClass::Pending).next().map(|id| {
                    let s = table.get(id).expect("indexed request exists");
                    PrefixDemand {
                        conversation: if s.waiting {
                            s.request.conversation
                        } else {
                            None
                        },
                        remaining_input: s.effective_input(),
                        reserve_output: s.remaining_max_output().max(1),
                    }
                });
                let (entries, tokens) = pool.prefix_evict_point(head);
                cache_stats.evicted_entries += entries;
                cache_stats.evicted_tokens += tokens;
                if entries > 0 {
                    sink.on_cache_evict(now, entries, tokens);
                }
            }

            // Scheduling point: assemble the view from the maintained
            // indices. Iteration order is arrival order for requests and id
            // order for instances — identical to a full rebuild.
            scratch.clear();
            for id in table.iter_class(PhaseClass::Pending) {
                let s = table.get(id).expect("indexed request exists");
                match s.phase {
                    Phase::Pending { prefilled } => {
                        scratch.pending.push(pending_entry(s, prefilled, &pool))
                    }
                    _ => unreachable!("pending index out of sync with phase"),
                }
            }
            for id in table.iter_class(PhaseClass::DecodeReady) {
                let s = table.get(id).expect("indexed request exists");
                match s.phase {
                    Phase::DecodeReady { generated } => scratch.decoding.push(DecodingRequest {
                        id,
                        context_len: s.request.input_len + generated,
                        generated,
                        decode_time_s: s
                            .first_token
                            .map(|ft| now.saturating_since(ft).as_secs())
                            .unwrap_or(0.0),
                        kv_instances: pool.locations_ref(id).iter().map(|&(i, _)| i).collect(),
                    }),
                    _ => unreachable!("decode-ready index out of sync with phase"),
                }
            }
            for id in table.iter_class(PhaseClass::Swapped) {
                let s = table.get(id).expect("indexed request exists");
                match s.phase {
                    Phase::Swapped { generated } => scratch.swapped.push(SwappedRequest {
                        id,
                        context_len: s.request.input_len + generated,
                        generated,
                        tokens: pool.swapped_tokens_of(id),
                    }),
                    _ => unreachable!("swapped index out of sync with phase"),
                }
            }
            instances_state.fill_view(&mut scratch);
            let avg_decode_latency_s = decode_stats.average();
            sink.on_gauges(
                now,
                Gauges {
                    queue_depth: scratch.pending.len() as u64,
                    batch_size: scratch.decoding.len() as u64,
                    kv_utilization: pool.active_utilization(),
                },
            );

            #[cfg(debug_assertions)]
            audit.check(
                &table,
                &pool,
                &self.registry,
                &instances_state,
                now,
                &scratch,
            );

            let actions = {
                let view = scratch.view(
                    now,
                    &pool,
                    &self.registry,
                    &self.cost_model,
                    &self.sib,
                    avg_decode_latency_s,
                );
                scheduler_calls += 1;
                self.scheduler.schedule(&view)
            };

            claimed.clear();
            let idle = &scratch.idle;
            for action in actions {
                match action {
                    Action::Reject { request, reason } => {
                        if let Some(s) = table.get(request) {
                            if matches!(s.phase, Phase::Pending { .. }) {
                                if s.waiting {
                                    let conversation = s
                                        .request
                                        .conversation
                                        .expect("waiting requests have a conversation");
                                    table.get_mut(request).expect("known request").waiting = false;
                                    pool.prefix_waiter_drop(conversation);
                                }
                                set_phase(&mut table, request, Phase::Rejected, now, sink);
                                rejected.push((request, reason));
                            }
                        }
                    }
                    Action::Prefill {
                        instances,
                        requests,
                        retain_on,
                    } => {
                        if instances
                            .iter()
                            .any(|i| claimed.contains(i) || !idle.contains(i))
                        {
                            continue;
                        }
                        // Atomic match → reuse: each untouched request
                        // consults the prefix index exactly once, at the
                        // moment its prefill is dispatched, and a hit
                        // renames the cached slots to it in place. The
                        // prefill then processes (and the cost model
                        // charges) only the uncached suffix — recompute
                        // evictions still re-prefill their checkpointed
                        // tokens too.
                        let mut prefill_reqs: Vec<PrefillRequest> = Vec::new();
                        // Per-request (suffix, adopted) pairs of this
                        // batch's cache hits, for cost accounting below.
                        let mut adopted: Vec<(u64, u64)> = Vec::new();
                        for &id in &requests {
                            let Some(s) = table.get(id) else { continue };
                            if !matches!(s.phase, Phase::Pending { .. }) {
                                continue;
                            }
                            if s.waiting {
                                let conversation = s
                                    .request
                                    .conversation
                                    .expect("waiting requests have a conversation");
                                let s = table.get_mut(id).expect("known request");
                                s.waiting = false;
                                pool.prefix_waiter_drop(conversation);
                                cache_stats.lookups += 1;
                                let prompt = s.effective_input();
                                if let Some(tokens) = pool.prefix_adopt(id, conversation, prompt) {
                                    s.reused = tokens;
                                    cache_stats.hits += 1;
                                    cache_stats.reused_tokens += tokens;
                                    adopted.push((prompt - tokens, tokens));
                                    sink.on_cache_adopt(now, id, tokens);
                                }
                            }
                            let s = table.get(id).expect("known request");
                            prefill_reqs.push(PrefillRequest {
                                id,
                                input_len: s.effective_input(),
                            });
                        }
                        if prefill_reqs.is_empty() {
                            continue;
                        }
                        if cache_on {
                            // Admission counted reclaimable slots as free;
                            // make good on it before planning the
                            // retention placement.
                            let needed: u64 = prefill_reqs.iter().map(|r| r.input_len).sum();
                            let (e, t) = pool.prefix_evict_for_instances(&retain_on, needed);
                            cache_stats.evicted_entries += e;
                            cache_stats.evicted_tokens += t;
                            if e > 0 {
                                sink.on_cache_evict(now, e, t);
                            }
                        }
                        // Suffix prefills still attend over their adopted
                        // context: charge the extra attention the plain
                        // suffix cost omits (zero when nothing was
                        // adopted), exactly as the chunked path spans its
                        // chunk over the processed prefix.
                        let mut context_surcharge_s = 0.0f64;
                        if !adopted.is_empty() {
                            let parallel = ParallelConfig::new(self.registry.tp(), instances.len());
                            let link = self.registry.link_between(&instances);
                            for &(suffix, reused) in &adopted {
                                context_surcharge_s += self
                                    .cost_model
                                    .cached_context_attention_s(suffix, reused, parallel);
                            }
                            // Saved-prefill accounting: what prefilling the
                            // adopted tokens would have cost on this group,
                            // batched per request (attention is quadratic,
                            // so lumping them would overstate the saving).
                            let adopted_lens: Vec<u64> =
                                adopted.iter().map(|&(_, tokens)| tokens).collect();
                            cache_stats.saved_prefill_s += self
                                .cost_model
                                .prefill_cost(&adopted_lens, parallel, link)
                                .total();
                        }
                        let group = EspGroup::new(group_ids.next(), instances.clone());
                        let plan = match PrefillPlan::build(group, prefill_reqs, retain_on, &pool) {
                            Ok(plan) => plan,
                            Err(_) => continue,
                        };
                        let outcome = match execute_prefill(
                            &plan,
                            &self.cost_model,
                            &self.registry,
                            &mut pool,
                        ) {
                            Ok(o) => o,
                            Err(_) => continue,
                        };
                        iterations += 1;
                        prefilled_tokens += outcome.retained_tokens;
                        let done = now
                            + SimDuration::from_secs(outcome.cost.total() + context_surcharge_s);
                        for &inst in &instances {
                            instances_state.dispatch(inst, done);
                            claimed.push(inst);
                        }
                        for &id in &requests {
                            if table.contains(id) {
                                set_phase(&mut table, id, Phase::Prefilling, now, sink);
                                table
                                    .get_mut(id)
                                    .expect("known request")
                                    .prefill_start
                                    .get_or_insert(now);
                            }
                        }
                        let wid = work_ids.next().raw();
                        in_flight.insert(
                            wid,
                            Work::Prefill {
                                instances,
                                requests,
                            },
                        );
                        queue.push(done, EngineEvent::WorkComplete(wid));
                    }
                    Action::Decode {
                        instances,
                        masters,
                        requests,
                    } => {
                        if instances
                            .iter()
                            .any(|i| claimed.contains(i) || !idle.contains(i))
                        {
                            continue;
                        }
                        let decode_batch: Vec<(RequestId, u64)> = requests
                            .iter()
                            .filter_map(|id| {
                                let s = table.get(*id)?;
                                match s.phase {
                                    Phase::DecodeReady { generated } => {
                                        Some((*id, s.request.input_len + generated))
                                    }
                                    _ => None,
                                }
                            })
                            .collect();
                        if decode_batch.is_empty() {
                            continue;
                        }
                        if cache_on {
                            // Each batched request appends one token on a
                            // master, so headroom must exist on the master
                            // set specifically — summing free slots over
                            // the whole group could see room on non-master
                            // instances, skip eviction, and leave a
                            // cache-crowded master stalling its decodes
                            // (the pressure rescue path defers to this
                            // eviction for prefix-crowded instances).
                            let evict_on: &[InstanceId] = if masters.is_empty() {
                                &instances
                            } else {
                                &masters
                            };
                            let (e, t) = pool
                                .prefix_evict_for_instances(evict_on, decode_batch.len() as u64);
                            cache_stats.evicted_entries += e;
                            cache_stats.evicted_tokens += t;
                            if e > 0 {
                                sink.on_cache_evict(now, e, t);
                            }
                        }
                        let group =
                            EspGroup::with_masters(group_ids.next(), instances.clone(), masters);
                        let plan = match DecodePlan::build(group, &decode_batch, &pool) {
                            Ok(plan) => plan,
                            Err(_) => continue,
                        };
                        let outcome = match execute_decode(
                            &plan,
                            &self.cost_model,
                            &self.registry,
                            &mut pool,
                        ) {
                            Ok(o) => o,
                            Err(_) => continue,
                        };
                        iterations += 1;
                        let done = now + SimDuration::from_secs(outcome.cost.total());
                        for &inst in &instances {
                            instances_state.dispatch(inst, done);
                            claimed.push(inst);
                        }
                        let batch_ids: Vec<RequestId> =
                            decode_batch.iter().map(|(id, _)| *id).collect();
                        for &id in &batch_ids {
                            if let Some(Phase::DecodeReady { generated }) =
                                table.get(id).map(|s| &s.phase)
                            {
                                let generated = *generated;
                                set_phase(&mut table, id, Phase::Decoding { generated }, now, sink);
                            }
                        }
                        let wid = work_ids.next().raw();
                        in_flight.insert(
                            wid,
                            Work::Decode {
                                instances,
                                requests: batch_ids,
                            },
                        );
                        queue.push(done, EngineEvent::WorkComplete(wid));
                    }
                    Action::ChunkedPrefill {
                        instances,
                        prefill_request,
                        chunk_tokens,
                        decode_requests,
                    } => {
                        if instances
                            .iter()
                            .any(|i| claimed.contains(i) || !idle.contains(i))
                        {
                            continue;
                        }
                        let Some(state) = table.get(prefill_request) else {
                            continue;
                        };
                        let Phase::Pending { prefilled } = state.phase else {
                            continue;
                        };
                        // First chunk of an untouched request: the same
                        // atomic match → reuse as the full-prefill path.
                        if state.waiting {
                            let conversation = state
                                .request
                                .conversation
                                .expect("waiting requests have a conversation");
                            let s = table.get_mut(prefill_request).expect("known request");
                            s.waiting = false;
                            pool.prefix_waiter_drop(conversation);
                            cache_stats.lookups += 1;
                            let prompt = s.effective_input();
                            if let Some(tokens) =
                                pool.prefix_adopt(prefill_request, conversation, prompt)
                            {
                                s.reused = tokens;
                                cache_stats.hits += 1;
                                cache_stats.reused_tokens += tokens;
                                sink.on_cache_adopt(now, prefill_request, tokens);
                                let parallel =
                                    ParallelConfig::new(self.registry.tp(), instances.len());
                                let link = self.registry.link_between(&instances);
                                cache_stats.saved_prefill_s += self
                                    .cost_model
                                    .prefill_cost(&[tokens], parallel, link)
                                    .total();
                            }
                        }
                        let state = table.get(prefill_request).expect("known request");
                        let reused = state.reused;
                        let chunk = chunk_tokens.min(state.effective_input() - prefilled);
                        if chunk == 0 {
                            continue;
                        }
                        if cache_on {
                            let needed = chunk + decode_requests.len() as u64;
                            let (e, t) = pool.prefix_evict_for_instances(&instances, needed);
                            cache_stats.evicted_entries += e;
                            cache_stats.evicted_tokens += t;
                            if e > 0 {
                                sink.on_cache_evict(now, e, t);
                            }
                        }
                        // Reserve KV for the chunk on the executing instances.
                        let Some(placement) = pool.plan(
                            prefill_request,
                            chunk,
                            &instances,
                            PlacementStrategy::PackMostFree,
                        ) else {
                            continue;
                        };
                        if pool.commit(&placement).is_err() {
                            continue;
                        }
                        let decode_batch: Vec<(RequestId, u64)> = decode_requests
                            .iter()
                            .filter_map(|id| {
                                let s = table.get(*id)?;
                                match s.phase {
                                    Phase::DecodeReady { generated } => {
                                        Some((*id, s.request.input_len + generated))
                                    }
                                    _ => None,
                                }
                            })
                            .collect();
                        let decode_lens: Vec<u64> = decode_batch.iter().map(|(_, l)| *l).collect();
                        // Append the decode tokens on the first instance.
                        let master = instances[0];
                        let mut decode_ok: Vec<RequestId> = Vec::new();
                        for (id, _) in &decode_batch {
                            if pool.append(*id, master, 1).is_ok() {
                                decode_ok.push(*id);
                            }
                        }
                        let parallel = ParallelConfig::new(self.registry.tp(), instances.len());
                        let link = self.registry.link_between(&instances);
                        // Adopted tokens are real context: the chunk's
                        // attention still spans them, it just skips their
                        // KV computation (zero extra term when reused = 0).
                        let cost = self.cost_model.chunked_prefill_cost(
                            chunk,
                            prefilled + reused,
                            &decode_lens,
                            parallel,
                            link,
                        );
                        iterations += 1;
                        prefilled_tokens += chunk;
                        let done = now + SimDuration::from_secs(cost.total());
                        for &inst in &instances {
                            instances_state.dispatch(inst, done);
                            claimed.push(inst);
                        }
                        if table.contains(prefill_request) {
                            table
                                .get_mut(prefill_request)
                                .expect("known request")
                                .prefill_start
                                .get_or_insert(now);
                            set_phase(&mut table, prefill_request, Phase::Prefilling, now, sink);
                        }
                        for &id in &decode_ok {
                            if let Some(Phase::DecodeReady { generated }) =
                                table.get(id).map(|s| &s.phase)
                            {
                                let generated = *generated;
                                set_phase(&mut table, id, Phase::Decoding { generated }, now, sink);
                            }
                        }
                        let wid = work_ids.next().raw();
                        in_flight.insert(
                            wid,
                            Work::ChunkedPrefill {
                                instances,
                                prefill_request,
                                prefilled_after: prefilled + chunk,
                                decode_requests: decode_ok,
                            },
                        );
                        queue.push(done, EngineEvent::WorkComplete(wid));
                    }
                    Action::Migrate { request, targets } => {
                        let Some(state) = table.get(request) else {
                            continue;
                        };
                        let generated = match state.phase {
                            Phase::DecodeReady { generated } => generated,
                            _ => continue,
                        };
                        if cache_on {
                            let (e, t) =
                                pool.prefix_evict_for_instances(&targets, pool.tokens_of(request));
                            cache_stats.evicted_entries += e;
                            cache_stats.evicted_tokens += t;
                            if e > 0 {
                                sink.on_cache_evict(now, e, t);
                            }
                        }
                        match migrate_request(
                            request,
                            &targets,
                            &mut pool,
                            &self.cost_model,
                            &self.registry,
                        ) {
                            Ok(summary) => {
                                migration_bytes += summary.total_bytes;
                                set_phase(
                                    &mut table,
                                    request,
                                    Phase::Migrating { generated },
                                    now,
                                    sink,
                                );
                                table.get_mut(request).expect("known request").preemptions += 1;
                                let done = now + SimDuration::from_secs(summary.time_s.max(1e-6));
                                let wid = work_ids.next().raw();
                                in_flight.insert(wid, Work::Migration { request });
                                queue.push(done, EngineEvent::WorkComplete(wid));
                            }
                            Err(_) => continue,
                        }
                    }
                    Action::Preempt { request } => {
                        let Some(state) = table.get(request) else {
                            continue;
                        };
                        let Phase::DecodeReady { generated } = state.phase else {
                            continue;
                        };
                        // Discard the KV and send the request back to the
                        // pending queue; it keeps its admission rank, so it
                        // re-prefills in FCFS position once pressure clears.
                        // The checkpoint makes the next prefill recompute
                        // prompt + generated KV and decoding resume in
                        // place, so each output token is generated exactly
                        // once (vLLM's recompute semantics).
                        pool.release(request);
                        sink.on_preempted(now, request);
                        set_phase(
                            &mut table,
                            request,
                            Phase::Pending { prefilled: 0 },
                            now,
                            sink,
                        );
                        let state = table.get_mut(request).expect("known request");
                        state.resume_generated = generated;
                        // Any adopted prefix KV was just discarded with the
                        // rest; the recompute prefill covers it again.
                        state.reused = 0;
                        state.preemptions += 1;
                        pressure_stats.preemptions += 1;
                        // Freeing memory schedules no work of its own; the
                        // epsilon event guarantees a next scheduling point
                        // that sees the freed slots.
                        let done = now + SimDuration::from_secs(1e-6);
                        let wid = work_ids.next().raw();
                        in_flight.insert(wid, Work::Preempt);
                        queue.push(done, EngineEvent::WorkComplete(wid));
                    }
                    Action::SwapOut { request } => {
                        let Some(state) = table.get(request) else {
                            continue;
                        };
                        let generated = match state.phase {
                            Phase::DecodeReady { generated } => generated,
                            _ => continue,
                        };
                        let Some(link) = host_link else {
                            continue;
                        };
                        let tokens = match pool.swap_out(request) {
                            Ok(tokens) => tokens,
                            Err(_) => continue,
                        };
                        // Device slots free immediately (the DMA drains
                        // asynchronously); the request itself stalls for the
                        // D2H transfer before it is parked.
                        let bytes = tokens as f64 * kv_bytes_per_token;
                        let transfer_s = link.transfer_time(bytes).max(1e-6);
                        set_phase(
                            &mut table,
                            request,
                            Phase::SwappingOut { generated },
                            now,
                            sink,
                        );
                        pressure_stats.swap_out_events += 1;
                        pressure_stats.swap_out_bytes += bytes;
                        pressure_stats.swap_stall_s += transfer_s;
                        pressure_stats.max_outstanding_swapped_tokens = pressure_stats
                            .max_outstanding_swapped_tokens
                            .max(pool.total_swapped());
                        let done = now + SimDuration::from_secs(transfer_s);
                        let wid = work_ids.next().raw();
                        in_flight.insert(wid, Work::SwapOut { request });
                        queue.push(done, EngineEvent::WorkComplete(wid));
                    }
                    Action::SwapIn { request, targets } => {
                        let Some(state) = table.get(request) else {
                            continue;
                        };
                        let generated = match state.phase {
                            Phase::Swapped { generated } => generated,
                            _ => continue,
                        };
                        let Some(link) = host_link else {
                            continue;
                        };
                        if cache_on {
                            let (e, t) = pool.prefix_evict_for_instances(
                                &targets,
                                pool.swapped_tokens_of(request),
                            );
                            cache_stats.evicted_entries += e;
                            cache_stats.evicted_tokens += t;
                            if e > 0 {
                                sink.on_cache_evict(now, e, t);
                            }
                        }
                        let tokens = match pool.swap_in(
                            request,
                            &targets,
                            PlacementStrategy::PackMostFree,
                        ) {
                            Ok(tokens) => tokens,
                            Err(_) => continue,
                        };
                        // Device slots are reserved now (no oversubscription
                        // while the H2D transfer is in flight); the request
                        // resumes decoding when it completes.
                        let bytes = tokens as f64 * kv_bytes_per_token;
                        let transfer_s = link.transfer_time(bytes).max(1e-6);
                        set_phase(
                            &mut table,
                            request,
                            Phase::SwappingIn { generated },
                            now,
                            sink,
                        );
                        pressure_stats.swap_in_events += 1;
                        pressure_stats.swap_in_bytes += bytes;
                        pressure_stats.swap_stall_s += transfer_s;
                        let done = now + SimDuration::from_secs(transfer_s);
                        let wid = work_ids.next().raw();
                        in_flight.insert(wid, Work::SwapIn { request });
                        queue.push(done, EngineEvent::WorkComplete(wid));
                    }
                }
            }
        }

        let sim_time = queue.now();
        let mut records = Vec::new();
        let mut unfinished = 0usize;
        for (_, s) in table.into_entries() {
            match s.phase {
                Phase::Finished => {
                    records.push(RequestRecord {
                        id: s.request.id,
                        arrival: s.request.arrival,
                        input_len: s.request.input_len,
                        output_len: s.request.output_len,
                        prefill_start: s.prefill_start.expect("finished requests started prefill"),
                        first_token: s
                            .first_token
                            .expect("finished requests produced a first token"),
                        finish: s.finish.expect("finished requests finished"),
                        preemptions: s.preemptions,
                        class: s.request.class,
                    });
                }
                Phase::Rejected => {}
                _ => unfinished += 1,
            }
        }
        records.sort_by_key(|r| r.id);

        RunOutcome {
            records,
            rejected,
            unfinished,
            scaling_events: self.scheduler.scaling_events().to_vec(),
            sim_time,
            iterations,
            migration_bytes,
            scheduler_calls,
            pressure: pressure_stats,
            cache: cache_stats,
            prefilled_tokens,
        }
    }

    /// Applies the effects of a completed piece of work, updating the phase
    /// indices and the idle/busy partition as it goes.
    #[allow(clippy::too_many_arguments)]
    fn complete_work(
        work: Work,
        now: SimTime,
        table: &mut RequestTable<RequestState>,
        pool: &mut UnifiedKvPool,
        instances_state: &mut InstanceTracker,
        decode_stats: &mut DecodeLatencyStats,
        cache_stats: &mut CacheStats,
        sink: &mut dyn TraceSink,
    ) {
        match work {
            Work::Prefill {
                instances,
                requests,
            } => {
                for inst in instances {
                    instances_state.complete(inst);
                }
                for id in requests {
                    let s = table.get_mut(id).expect("known request");
                    s.first_token.get_or_insert(now);
                    // The prefill produced the first output token — or, for
                    // a recompute eviction, rebuilt the KV up to the
                    // checkpoint so decoding resumes there.
                    let generated = s.resume_generated.max(1);
                    if s.request.output_len <= generated {
                        Self::finish_request(table, id, now, pool, decode_stats, cache_stats, sink);
                    } else {
                        set_phase(table, id, Phase::DecodeReady { generated }, now, sink);
                    }
                }
            }
            Work::Decode {
                instances,
                requests,
            } => {
                for inst in instances {
                    instances_state.complete(inst);
                }
                for id in requests {
                    Self::advance_decode(table, id, now, pool, decode_stats, cache_stats, sink);
                }
            }
            Work::ChunkedPrefill {
                instances,
                prefill_request,
                prefilled_after,
                decode_requests,
            } => {
                for inst in instances {
                    instances_state.complete(inst);
                }
                let s = table.get_mut(prefill_request).expect("known request");
                // Advance the prompt; if it is done, the first token is out
                // (or, after a recompute eviction, the checkpoint is
                // rebuilt and decoding resumes there).
                let effective_input = s.effective_input();
                let prefilled = prefilled_after.min(effective_input);
                if prefilled >= effective_input {
                    s.first_token.get_or_insert(now);
                    let generated = s.resume_generated.max(1);
                    if s.request.output_len <= generated {
                        Self::finish_request(
                            table,
                            prefill_request,
                            now,
                            pool,
                            decode_stats,
                            cache_stats,
                            sink,
                        );
                    } else {
                        set_phase(
                            table,
                            prefill_request,
                            Phase::DecodeReady { generated },
                            now,
                            sink,
                        );
                    }
                } else {
                    set_phase(
                        table,
                        prefill_request,
                        Phase::Pending { prefilled },
                        now,
                        sink,
                    );
                }
                for id in decode_requests {
                    Self::advance_decode(table, id, now, pool, decode_stats, cache_stats, sink);
                }
            }
            Work::Migration { request } => {
                if let Some(Phase::Migrating { generated }) = table.get(request).map(|s| &s.phase) {
                    let generated = *generated;
                    set_phase(table, request, Phase::DecodeReady { generated }, now, sink);
                }
            }
            // The phase was reset at action time; the event only forced a
            // scheduling point.
            Work::Preempt => {}
            Work::SwapOut { request } => {
                if let Some(Phase::SwappingOut { generated }) = table.get(request).map(|s| &s.phase)
                {
                    let generated = *generated;
                    set_phase(table, request, Phase::Swapped { generated }, now, sink);
                }
            }
            Work::SwapIn { request } => {
                if let Some(Phase::SwappingIn { generated }) = table.get(request).map(|s| &s.phase)
                {
                    let generated = *generated;
                    set_phase(table, request, Phase::DecodeReady { generated }, now, sink);
                }
            }
        }
    }

    /// One decode iteration completed for `id`: emit a token, finishing the
    /// request if that was the last one.
    #[allow(clippy::too_many_arguments)]
    fn advance_decode(
        table: &mut RequestTable<RequestState>,
        id: RequestId,
        now: SimTime,
        pool: &mut UnifiedKvPool,
        decode_stats: &mut DecodeLatencyStats,
        cache_stats: &mut CacheStats,
        sink: &mut dyn TraceSink,
    ) {
        let s = table.get(id).expect("known request");
        if let Phase::Decoding { generated } = s.phase {
            let generated = generated + 1;
            if generated >= s.request.output_len {
                Self::finish_request(table, id, now, pool, decode_stats, cache_stats, sink);
            } else {
                set_phase(table, id, Phase::DecodeReady { generated }, now, sink);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_request(
        table: &mut RequestTable<RequestState>,
        id: RequestId,
        now: SimTime,
        pool: &mut UnifiedKvPool,
        decode_stats: &mut DecodeLatencyStats,
        cache_stats: &mut CacheStats,
        sink: &mut dyn TraceSink,
    ) {
        let state = table.get_mut(id).expect("known request");
        state.finish = Some(now);
        let first_token = state.first_token;
        let conversation = state.request.conversation;
        set_phase(table, id, Phase::Finished, now, sink);
        if let Some(ft) = first_token {
            decode_stats.record(now.saturating_since(ft).as_secs());
        }
        // With the prefix cache enabled, a conversation turn's full context
        // (prompt + generated KV) is retained in place — it is exactly the
        // shared history the next turn's prompt extends. Everything else
        // releases as before.
        match conversation {
            Some(conversation) if pool.prefix_enabled() => {
                let retained = pool.prefix_retain(id, conversation, now);
                if retained > 0 {
                    let total = pool.prefix().expect("enabled").retained_tokens();
                    cache_stats.retained_tokens_high_water =
                        cache_stats.retained_tokens_high_water.max(total);
                }
            }
            _ => {
                pool.release(id);
            }
        }
    }
}

/// Debug-build shadow of the incrementally maintained scheduler-view state.
///
/// Every scheduling point, [`ViewAudit::check`] rebuilds the
/// pending/decoding/idle/busy lists the slow way — a full scan over the
/// append-only arrival log and over every per-instance pool, exactly the
/// code the incremental indices replaced — and asserts the scratch buffers
/// match element for element. Compiled only with debug assertions, so
/// release builds (and benches) pay nothing; `cargo test` exercises it on
/// every engine run, including the view-equivalence proptest over random
/// traces.
#[cfg(debug_assertions)]
mod audit {
    use super::*;

    #[derive(Default)]
    pub(super) struct ViewAudit {
        /// Arrival log, in event order: the old engine's `arrived` vector.
        arrived: Vec<RequestId>,
    }

    impl ViewAudit {
        pub(super) fn on_arrival(&mut self, id: RequestId) {
            self.arrived.push(id);
        }

        pub(super) fn check(
            &self,
            table: &RequestTable<RequestState>,
            pool: &UnifiedKvPool,
            registry: &InstanceRegistry,
            instances_state: &InstanceTracker,
            now: SimTime,
            scratch: &ViewScratch,
        ) {
            table
                .check_invariants()
                .expect("request-table phase indices consistent");
            pool.check_invariants()
                .expect("kv-pool residency index consistent");

            // Eviction-disjointness: prefix retention only ever holds KV of
            // *finished* requests, so cached entries and the active working
            // set (the requests pressure policies may victimise) can never
            // overlap.
            if let Some(cache) = pool.prefix() {
                for (conversation, entry) in cache.entries() {
                    let owner = table.get(entry.owner).expect("cached owners are known");
                    assert!(
                        matches!(owner.phase, Phase::Finished),
                        "prefix entry for {conversation} retains KV of {} which is {:?}, not finished",
                        entry.owner,
                        owner.phase
                    );
                }
            }

            let naive_pending: Vec<PendingRequest> = self
                .arrived
                .iter()
                .filter_map(|&id| {
                    let s = table.get(id)?;
                    match s.phase {
                        Phase::Pending { prefilled } => Some(pending_entry(s, prefilled, pool)),
                        _ => None,
                    }
                })
                .collect();
            assert_eq!(
                scratch.pending, naive_pending,
                "incremental pending view diverged from full-scan rebuild"
            );

            let naive_decoding: Vec<DecodingRequest> = self
                .arrived
                .iter()
                .filter_map(|&id| {
                    let s = table.get(id)?;
                    match s.phase {
                        Phase::DecodeReady { generated } => Some(DecodingRequest {
                            id,
                            context_len: s.request.input_len + generated,
                            generated,
                            decode_time_s: s
                                .first_token
                                .map(|ft| now.saturating_since(ft).as_secs())
                                .unwrap_or(0.0),
                            // The naive path: scan every instance pool.
                            kv_instances: (0..pool.num_instances())
                                .map(InstanceId::from)
                                .filter(|&i| pool.instance(i).hosts(id))
                                .collect(),
                        }),
                        _ => None,
                    }
                })
                .collect();
            assert_eq!(
                scratch.decoding, naive_decoding,
                "incremental decoding view diverged from full-scan rebuild"
            );

            let naive_swapped: Vec<SwappedRequest> = self
                .arrived
                .iter()
                .filter_map(|&id| {
                    let s = table.get(id)?;
                    match s.phase {
                        Phase::Swapped { generated } => Some(SwappedRequest {
                            id,
                            context_len: s.request.input_len + generated,
                            generated,
                            tokens: pool.host().map(|h| h.swapped_tokens_of(id)).unwrap_or(0),
                        }),
                        _ => None,
                    }
                })
                .collect();
            assert_eq!(
                scratch.swapped, naive_swapped,
                "incremental swapped view diverged from full-scan rebuild"
            );

            // The old engine re-filtered every instance against `busy_until`
            // with a time comparison; the tracker instead moves instances
            // between sets on dispatch/complete. Equivalence additionally
            // proves no stale busy entry (end time <= now) ever survives to
            // a scheduling point.
            let naive_idle: Vec<InstanceId> = registry
                .all_ids()
                .into_iter()
                .filter(|&i| {
                    instances_state
                        .busy_until(i)
                        .map(|t| t <= now)
                        .unwrap_or(true)
                })
                .collect();
            assert_eq!(
                scratch.idle, naive_idle,
                "incremental idle set diverged from busy_until re-filter"
            );
            for &(inst, until) in &scratch.busy {
                assert!(
                    until > now,
                    "busy view contains stale entry: {inst} ended at {until:?} <= now {now:?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemKind;
    use loong_workload::arrival::ArrivalProcess;
    use loong_workload::datasets::DatasetKind;

    fn small_trace(rate: f64, count: usize, seed: u64) -> Trace {
        let mut rng = SimRng::seed(seed);
        Trace::generate(
            DatasetKind::ShareGpt,
            ArrivalProcess::Poisson { rate },
            count,
            &mut rng,
        )
    }

    fn engine_for(kind: SystemKind) -> ServingEngine {
        let config = EngineConfig::paper_single_node();
        let tp = kind.tp(config.cluster.gpus_per_node);
        let config = EngineConfig { tp, ..config };
        let registry = InstanceRegistry::build(&config.cluster, tp);
        let scheduler = kind.build_scheduler(&registry.all_ids(), None);
        ServingEngine::new(config, scheduler)
    }

    #[test]
    fn instance_kv_capacity_is_plausible_for_lwm_on_a800() {
        let config = EngineConfig::paper_single_node();
        let capacity = config.instance_kv_capacity();
        // Two 80 GB GPUs minus weights and workspace at 256 KiB/token/GPU:
        // a few hundred thousand tokens.
        assert!(
            capacity > 150_000 && capacity < 400_000,
            "capacity {capacity}"
        );
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let mut engine = engine_for(SystemKind::LoongServe);
        let outcome = engine.run(&Trace::from_requests("empty", vec![]));
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.unfinished, 0);
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn single_request_lifecycle_timestamps_are_ordered() {
        let mut engine = engine_for(SystemKind::LoongServe);
        let request = Request::new(RequestId(0), SimTime::from_secs(1.0), 5_000, 20);
        let outcome = engine.run(&Trace::from_requests("single", vec![request]));
        assert_eq!(outcome.records.len(), 1);
        let r = &outcome.records[0];
        assert!(r.validate().is_ok());
        assert!(r.prefill_start >= SimTime::from_secs(1.0));
        assert!(r.first_token > r.prefill_start);
        assert!(r.finish > r.first_token);
        // 20 output tokens need 19 decode iterations plus the prefill.
        assert_eq!(outcome.iterations, 20);
    }

    #[test]
    fn scheduler_name_is_exposed() {
        let engine = engine_for(SystemKind::Vllm);
        assert!(engine.scheduler_name().contains("vLLM"));
        assert_eq!(engine.registry().num_instances(), 1);
    }

    #[test]
    fn concurrent_requests_share_the_cluster() {
        let mut engine = engine_for(SystemKind::LoongServe);
        let trace = small_trace(10.0, 30, 5);
        let outcome = engine.run(&trace);
        assert_eq!(
            outcome.records.len() + outcome.unfinished + outcome.rejected.len(),
            30
        );
        assert!(
            outcome.records.len() >= 28,
            "almost all short requests should finish"
        );
        assert!(outcome.scheduler_calls > 0);
        assert!(outcome.sim_time > SimTime::ZERO);
    }

    #[test]
    fn identical_engines_produce_identical_outcomes() {
        let trace = small_trace(5.0, 20, 9);
        let mut a = engine_for(SystemKind::LoongServe);
        let mut b = engine_for(SystemKind::LoongServe);
        let oa = a.run(&trace);
        let ob = b.run(&trace);
        assert_eq!(oa.records, ob.records);
        assert_eq!(oa.iterations, ob.iterations);
    }
}
