//! The reliability tier: fleet runs under failure injection.
//!
//! [`FleetEngine::run_reliable`] replays a trace against a seeded
//! [`FailureSchedule`]: replicas crash and recover on the sim clock, a
//! crashed replica loses everything volatile (device KV, host-swap tier,
//! prefix cache — it restarts as a fresh engine), and the requests that
//! were in flight or queued on it surface back to the fleet frontend as
//! *casualties*, where the [`RetryPolicy`] decides whether they get
//! another attempt and the [`CircuitBreaker`] decides whether the replica
//! does.
//!
//! # Execution model: boundary-ordered eras
//!
//! The fleet tier routes up front and runs replicas independently; a crash
//! is the one event that couples them again, because its casualties must
//! re-enter routing. The runner therefore advances through **eras**
//! delimited by the schedule's distinct crash instants:
//!
//! 1. Route every arrival (original or retried) that falls inside the
//!    era, computing the candidate set per request at its arrival instant
//!    — replicas down per the schedule, or held open by the breaker, are
//!    excluded; policies pick among the rest with the shared sorted
//!    tie-break. If *no* replica is routable the request waits for the
//!    one that becomes routable earliest (ties to the lowest id) and
//!    arrives there at that instant.
//! 2. At the era's closing crash instant `b`, each replica crashing at
//!    `b` runs the segment it accumulated, capped at `b` (work completing
//!    by `b` counts — the crash interrupts the machine, not the ledger).
//!    Whatever is neither completed nor rejected by `b` is a casualty:
//!    the breaker is fed one failure per casualty, and each casualty is
//!    either re-submitted (arrival `b + backoff`, same request id, full
//!    re-prefill on whatever replica routing picks next) or terminally
//!    failed once its budget is spent.
//! 3. After the last era every replica runs its remaining segment to
//!    completion.
//!
//! With an empty schedule there are no boundaries: one era, one segment
//! per replica, candidates always the full fleet — the run degenerates to
//! [`FleetEngine::run`] decision for decision, which is why an armed but
//! idle reliability tier stays bit-for-bit on the pinned golden digests
//! (`tests/reliability_properties.rs` pins this against
//! `tests/fleet_equivalence.rs`).
//!
//! # Exactly-once accounting
//!
//! Every trace request ends in exactly one of four ledgers: fleet
//! `records` (completed), fleet `rejected` (admission rejection),
//! `failed` (crash casualties whose retry budget ran out), or the fleet's
//! `unfinished` count (still in flight when a *final*, uncapped segment
//! ended — only possible under an engine-level `max_sim_time`). A
//! casualty is not an outcome, it is a transition: the request either
//! reappears later (retry) or moves to `failed` at the crash instant.
//! The proptests sweep random schedules against every router policy to
//! pin this.

use crate::engine::RunOutcome;
use crate::fleet::{
    run_segment_traced, trace_seed, FleetEngine, FleetFootprint, FleetOutcome, ReplicaOutcome,
};
use loong_metrics::cache::CacheStats;
use loong_metrics::fleet::FleetSummary;
use loong_metrics::pressure::PressureStats;
use loong_metrics::record::RequestRecord;
use loong_metrics::reliability::{availability_windows, ReliabilityStats, SlaWindow};
use loong_metrics::slo::SloSpec;
use loong_sched::reliability::{
    healthy_candidates, CircuitBreaker, CircuitBreakerConfig, RetryPolicy,
};
use loong_sched::router::{FleetLoadTracker, RouteRequest};
use loong_simcore::ids::{ReplicaId, RequestId};
use loong_simcore::pool::run_indexed;
use loong_simcore::time::{SimDuration, SimTime};
use loong_trace::TraceRecorder;
use loong_workload::failure::FailureSchedule;
use loong_workload::request::Request;
use loong_workload::stream::TraceStream;
use loong_workload::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of a fleet run under failure injection.
#[derive(Debug, Clone)]
pub struct ReliabilityConfig {
    /// When replicas crash and recover. [`FailureSchedule::none`] arms the
    /// tier without firing it.
    pub schedule: FailureSchedule,
    /// What a casualty gets: [`RetryPolicy::none`] fails every casualty
    /// terminally at the crash instant.
    pub retry: RetryPolicy,
    /// The per-replica circuit breaker; `None` routes purely on the
    /// schedule's up/down state.
    pub breaker: Option<CircuitBreakerConfig>,
    /// Width of the availability windows in the outcome's SLA series, in
    /// sim-seconds.
    pub sla_window_s: f64,
}

impl ReliabilityConfig {
    /// Fail-fast handling of `schedule`: no retries, no breaker, 60 s
    /// availability windows.
    pub fn new(schedule: FailureSchedule) -> Self {
        ReliabilityConfig {
            schedule,
            retry: RetryPolicy::none(),
            breaker: None,
            sla_window_s: 60.0,
        }
    }

    /// The armed-but-idle configuration: an empty schedule, under which
    /// `run_reliable` must reproduce `run` bit for bit.
    pub fn disarmed() -> Self {
        Self::new(FailureSchedule::none())
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables the per-replica circuit breaker.
    pub fn with_breaker(mut self, breaker: CircuitBreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Sets the availability-window width.
    pub fn with_sla_window(mut self, window_s: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        self.sla_window_s = window_s;
        self
    }
}

/// A request that terminally failed: it lost an attempt to a crash and had
/// no retry budget left.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedRequest {
    /// The request.
    pub id: RequestId,
    /// The crash instant at which its budget ran out.
    pub at: SimTime,
    /// The replica whose crash consumed the last attempt.
    pub replica: ReplicaId,
    /// Human-readable reason.
    pub reason: String,
}

/// The merged result of one fleet run under failure injection.
#[derive(Debug, Clone)]
pub struct ReliableFleetOutcome {
    /// The fleet outcome over the attempts that resolved inside a replica:
    /// completed records, admission rejections, per-replica breakdowns.
    /// Per-replica `unfinished` counts cover final (uncapped) segments
    /// only — casualties live in the reliability ledger, not here.
    pub fleet: FleetOutcome,
    /// Requests that terminally failed, sorted by request id.
    pub failed: Vec<FailedRequest>,
    /// The whole-run reliability ledger.
    pub reliability: ReliabilityStats,
    /// Time-resolved availability series over `sla_window_s` windows.
    pub sla_windows: Vec<SlaWindow>,
}

impl ReliableFleetOutcome {
    /// Total requests accounted for: completed + rejected + unfinished +
    /// terminally failed. Equals the trace length for every schedule (the
    /// exactly-once property).
    pub fn total_requests(&self) -> usize {
        self.fleet.total_requests() + self.failed.len()
    }

    /// Fleet-level metric summary with the reliability ledger and the
    /// availability series attached.
    pub fn summary(
        &self,
        system: &str,
        workload: &str,
        request_rate: f64,
        slo: &SloSpec,
    ) -> FleetSummary {
        let mut summary = self.fleet.summary(system, workload, request_rate, slo);
        summary.attach_reliability(self.reliability, self.sla_windows.clone());
        summary
    }
}

/// Routing state shared across eras: per-replica segment buckets and the
/// assignment ledger.
struct RoutingLedger {
    /// Requests routed to each replica since its last crash (or the run's
    /// start), with their effective arrival instants.
    buckets: Vec<Vec<Request>>,
    /// Every routing decision in decision order; retried requests appear
    /// once per attempt.
    assignments: Vec<(RequestId, ReplicaId)>,
    /// Attempts assigned per replica over the whole run.
    assigned: Vec<usize>,
    /// Originals pulled from the source so far.
    streamed: usize,
    /// Requests currently resident in the frontend: bucket entries not yet
    /// handed to an engine, plus retries awaiting their backoff.
    resident: usize,
    /// High-water mark of `resident` — the streamed paths' memory claim.
    peak_resident: usize,
}

impl RoutingLedger {
    fn grow_resident(&mut self) {
        self.resident += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
    }
}

impl FleetEngine {
    /// Runs the fleet over a trace under failure injection: boundary-
    /// ordered eras of routing, capped segment execution at each crash,
    /// casualty retry/terminal-failure resolution, and a final uncapped
    /// segment per replica. See the module docs for the execution model.
    ///
    /// # Panics
    ///
    /// Panics if the schedule strikes a replica outside the fleet.
    pub fn run_reliable(&mut self, trace: &Trace, rel: &ReliabilityConfig) -> ReliableFleetOutcome {
        self.run_reliable_source(&trace.label, trace.requests.iter().cloned(), rel, None)
            .0
    }

    /// Runs the fleet under failure injection with the whole run observed
    /// by `recorder`: per-request lifecycle spans (casualties, retries and
    /// downtime included), per-replica timeseries, and crash/recover/
    /// breaker instants. Identical decision-for-decision to
    /// [`FleetEngine::run_reliable`].
    pub fn run_reliable_traced(
        &mut self,
        trace: &Trace,
        rel: &ReliabilityConfig,
        recorder: &mut TraceRecorder,
    ) -> ReliableFleetOutcome {
        let (outcome, _) = self.run_reliable_source(
            &trace.label,
            trace.requests.iter().cloned(),
            rel,
            Some(recorder),
        );
        recorder.finalize(outcome.fleet.sim_time);
        outcome
    }

    /// Runs the fleet under failure injection over a lazy request stream.
    /// Identical decision-for-decision to [`FleetEngine::run_reliable`] on
    /// the collected stream — arrivals and retries interleave by
    /// `(arrival, id)` either way — but the frontend holds only routed-
    /// not-yet-executed requests plus pending retries, which the returned
    /// [`FleetFootprint`] measures. Under a boundary-rich schedule the
    /// buckets flush at every crash, so peak residency tracks the *active*
    /// window, not the stream length.
    pub fn run_reliable_stream(
        &mut self,
        stream: TraceStream,
        rel: &ReliabilityConfig,
    ) -> (ReliableFleetOutcome, FleetFootprint) {
        let label = stream.label().to_string();
        self.run_reliable_source(&label, stream, rel, None)
    }

    /// Streamed reliability run observed by `recorder` — the streamed
    /// counterpart of [`FleetEngine::run_reliable_traced`]. The recorder's
    /// own residency stays `O(sampled + bins + peak-open)` (its
    /// [`loong_trace::TraceLedger`] proves it), so tracing preserves the
    /// streamed path's memory claim.
    pub fn run_reliable_stream_traced(
        &mut self,
        stream: TraceStream,
        rel: &ReliabilityConfig,
        recorder: &mut TraceRecorder,
    ) -> (ReliableFleetOutcome, FleetFootprint) {
        let label = stream.label().to_string();
        let (outcome, footprint) = self.run_reliable_source(&label, stream, rel, Some(recorder));
        recorder.finalize(outcome.fleet.sim_time);
        (outcome, footprint)
    }

    /// The shared implementation of the materialised and streamed
    /// reliability runs.
    fn run_reliable_source<I: Iterator<Item = Request>>(
        &mut self,
        label: &str,
        source: I,
        rel: &ReliabilityConfig,
        mut recorder: Option<&mut TraceRecorder>,
    ) -> (ReliableFleetOutcome, FleetFootprint) {
        let mut source = source.peekable();
        let n = self.config.replicas;
        if let Some(max) = rel.schedule.max_replica() {
            assert!(
                max.index() < n,
                "failure schedule strikes {max}, but the fleet has {n} replicas"
            );
        }
        // Fresh router and tracker per run, exactly as `route()` does.
        self.router = self.config.policy.build();
        let mut tracker = FleetLoadTracker::new(n);
        let mut breaker = rel.breaker.map(|cfg| CircuitBreaker::new(cfg, n));
        let boundaries = rel.schedule.crash_times();

        let mut ledger = RoutingLedger {
            buckets: vec![Vec::new(); n],
            assignments: Vec::new(),
            assigned: vec![0usize; n],
            streamed: 0,
            resident: 0,
            peak_resident: 0,
        };
        let mut segments: Vec<Vec<RunOutcome>> = vec![Vec::new(); n];
        // Retries waiting for their backoff to elapse, keyed by
        // (re-arrival, id) — the deterministic interleave order with
        // original arrivals. The value carries the attempt count consumed.
        let mut pending: BTreeMap<(SimTime, RequestId), (Request, u32)> = BTreeMap::new();
        let mut retries_used: BTreeMap<RequestId, u32> = BTreeMap::new();
        let mut casualty_ids: BTreeSet<RequestId> = BTreeSet::new();
        let mut failed: Vec<FailedRequest> = Vec::new();
        let mut stats = ReliabilityStats {
            crashes: rel.schedule.events().len() as u64,
            downtime_s: rel.schedule.total_downtime().as_secs(),
            ..ReliabilityStats::default()
        };
        for &b in &boundaries {
            self.drain_era(
                &mut source,
                Some(b),
                &mut pending,
                rel,
                breaker.as_ref(),
                &mut tracker,
                &mut ledger,
            );
            if let Some(rec) = recorder.as_deref_mut() {
                for event in rel.schedule.events().iter().filter(|e| e.crash == b) {
                    rec.crash(b, event.replica);
                    rec.recover(event.recover, event.replica);
                }
            }
            // Replicas crashing at b, in ascending id order (events are
            // sorted by (crash, replica)). The capped engine runs are pure,
            // so they go to the worker pool; casualty settlement — breaker
            // feed, retry scheduling, terminal failure — replays serially
            // in that same replica order afterwards.
            let crashing: Vec<(ReplicaId, Trace)> = rel
                .schedule
                .events()
                .iter()
                .filter(|e| e.crash == b)
                .filter_map(|event| {
                    let replica = event.replica;
                    let bucket = std::mem::take(&mut ledger.buckets[replica.index()]);
                    ledger.resident -= bucket.len();
                    (!bucket.is_empty()).then(|| {
                        let sub = Trace::from_requests(
                            format!("{label} · replica {replica}/{n} ∣ crash at {b}"),
                            bucket,
                        );
                        (replica, sub)
                    })
                })
                .collect();
            let system = self
                .config
                .replica_system()
                .with_max_sim_time(SimDuration::from_secs(b.as_secs()));
            let seed = trace_seed(&recorder);
            let run_segment = |sub: &Trace| run_segment_traced(&system, sub, &seed);
            let results: Vec<(RunOutcome, Option<TraceRecorder>)> = if self.config.parallel {
                run_indexed(crashing.len(), |i| run_segment(&crashing[i].1))
            } else {
                crashing.iter().map(|(_, sub)| run_segment(sub)).collect()
            };
            for ((replica, sub), (outcome, child)) in crashing.into_iter().zip(results) {
                // Absorb the segment's recording first: its in-flight
                // requests become the parent's open entries, which the
                // casualty closes below transition to retries or failures.
                if let (Some(rec), Some(child)) = (recorder.as_deref_mut(), child) {
                    rec.merge_child(replica, child);
                }
                // Casualties: assigned to this segment but neither
                // completed nor rejected when the crash struck. The
                // sub-trace holds the routed bucket (arrival-sorted), so
                // the scan needs no separate copy of it.
                let resolved: BTreeSet<RequestId> = outcome
                    .records
                    .iter()
                    .map(|r| r.id)
                    .chain(outcome.rejected.iter().map(|r| r.0))
                    .collect();
                let mut casualties: Vec<&Request> = sub
                    .requests
                    .iter()
                    .filter(|req| !resolved.contains(&req.id))
                    .collect();
                casualties.sort_by_key(|req| req.id);
                for req in casualties {
                    stats.failed_attempts += 1;
                    casualty_ids.insert(req.id);
                    if let Some(rec) = recorder.as_deref_mut() {
                        rec.casualty(b, req.id);
                    }
                    if let Some(bk) = breaker.as_mut() {
                        let tripped = bk.record_failure(replica, b);
                        if tripped {
                            if let Some(rec) = recorder.as_deref_mut() {
                                rec.breaker_open(b, replica);
                            }
                        }
                    }
                    let used = retries_used.get(&req.id).copied().unwrap_or(0);
                    if rel.retry.allows(used) {
                        let attempt = used + 1;
                        retries_used.insert(req.id, attempt);
                        let mut retry = req.clone();
                        retry.arrival = b + rel.retry.backoff(attempt);
                        stats.retries_scheduled += 1;
                        stats.re_prefilled_tokens += retry.input_len;
                        if let Some(rec) = recorder.as_deref_mut() {
                            rec.retry_scheduled(b, req.id, attempt, retry.arrival);
                        }
                        pending.insert((retry.arrival, retry.id), (retry, attempt));
                        ledger.grow_resident();
                    } else {
                        stats.retries_exhausted += 1;
                        let reason = format!(
                            "{replica} crashed at {b} with no retry budget left \
                             ({used} of {} used)",
                            rel.retry.max_retries
                        );
                        if let Some(rec) = recorder.as_deref_mut() {
                            rec.request_failed(b, req.id, &reason);
                        }
                        failed.push(FailedRequest {
                            id: req.id,
                            at: b,
                            replica,
                            reason,
                        });
                    }
                }
                segments[replica.index()].push(outcome);
            }
        }

        // Final era and final (uncapped) segment of every replica.
        self.drain_era(
            &mut source,
            None,
            &mut pending,
            rel,
            breaker.as_ref(),
            &mut tracker,
            &mut ledger,
        );
        let system = self.config.replica_system();
        let finals: Vec<Trace> = (0..n)
            .map(|r| {
                let bucket = std::mem::take(&mut ledger.buckets[r]);
                ledger.resident -= bucket.len();
                Trace::from_requests(format!("{label} · replica {r}/{n}"), bucket)
            })
            .collect();
        let seed = trace_seed(&recorder);
        let run_final = |sub: &Trace| run_segment_traced(&system, sub, &seed);
        let final_results: Vec<(RunOutcome, Option<TraceRecorder>)> = if self.config.parallel {
            run_indexed(finals.len(), |r| run_final(&finals[r]))
        } else {
            finals.iter().map(run_final).collect()
        };
        for (r, (segment, (outcome, child))) in segments.iter_mut().zip(final_results).enumerate() {
            if let (Some(rec), Some(child)) = (recorder.as_deref_mut(), child) {
                rec.merge_child(ReplicaId::from(r), child);
            }
            segment.push(outcome);
        }

        // Merge, mirroring the plain fleet merge: records and rejections
        // in request-id order, counters summed in replica-id order.
        let mut records: Vec<RequestRecord> = Vec::new();
        let mut rejected: Vec<(RequestId, String)> = Vec::new();
        let mut unfinished = 0usize;
        let mut sim_time = SimTime::ZERO;
        let mut iterations = 0u64;
        let mut migration_bytes = 0.0f64;
        let mut scheduler_calls = 0u64;
        let mut pressure = PressureStats::default();
        let mut cache = CacheStats::default();
        let mut per_replica = Vec::with_capacity(n);
        for (r, segs) in segments.into_iter().enumerate() {
            let outcome = merge_segments(segs);
            records.extend(outcome.records.iter().copied());
            rejected.extend(outcome.rejected.iter().cloned());
            unfinished += outcome.unfinished;
            sim_time = sim_time.max(outcome.sim_time);
            iterations += outcome.iterations;
            migration_bytes += outcome.migration_bytes;
            scheduler_calls += outcome.scheduler_calls;
            pressure.merge(&outcome.pressure);
            cache.merge(&outcome.cache);
            per_replica.push(ReplicaOutcome {
                replica: ReplicaId::from(r),
                assigned: ledger.assigned[r],
                outcome,
            });
        }
        records.sort_by_key(|r| r.id);
        rejected.sort_by_key(|r| r.0);
        failed.sort_by_key(|f| f.id);

        stats.recovered_requests = casualty_ids
            .iter()
            .filter(|id| records.binary_search_by_key(*id, |r| r.id).is_ok())
            .count() as u64;
        if let Some(bk) = &breaker {
            stats.breaker_opens = bk.opens();
        }
        let failure_instants: Vec<SimTime> = failed.iter().map(|f| f.at).collect();
        let sla_windows = availability_windows(rel.sla_window_s, &records, &failure_instants);

        (
            ReliableFleetOutcome {
                fleet: FleetOutcome {
                    per_replica,
                    assignments: ledger.assignments,
                    records,
                    rejected,
                    unfinished,
                    sim_time,
                    iterations,
                    migration_bytes,
                    scheduler_calls,
                    pressure,
                    cache,
                },
                failed,
                reliability: stats,
                sla_windows,
            },
            FleetFootprint {
                streamed_requests: ledger.streamed,
                peak_resident_requests: ledger.peak_resident,
            },
        )
    }

    /// Routes every arrival — source requests and pending retries
    /// interleaved by (arrival, id) — strictly before `end` (all of them
    /// when `end` is `None`). The source is pulled lazily: nothing beyond
    /// the era boundary is ever materialised.
    #[allow(clippy::too_many_arguments)]
    fn drain_era<I: Iterator<Item = Request>>(
        &mut self,
        source: &mut std::iter::Peekable<I>,
        end: Option<SimTime>,
        pending: &mut BTreeMap<(SimTime, RequestId), (Request, u32)>,
        rel: &ReliabilityConfig,
        breaker: Option<&CircuitBreaker>,
        tracker: &mut FleetLoadTracker,
        ledger: &mut RoutingLedger,
    ) {
        let in_era = |t: SimTime| end.is_none_or(|e| t < e);
        loop {
            let original_key = source
                .peek()
                .map(|req| (req.arrival, req.id))
                .filter(|&(at, _)| in_era(at));
            let retry_key = pending
                .first_key_value()
                .map(|(&key, _)| key)
                .filter(|&(at, _)| in_era(at));
            // Pick the earlier of the two streams by (arrival, id); an
            // original can never share its id with a pending retry, so the
            // order is total.
            match (original_key, retry_key) {
                (None, None) => break,
                (Some(okey), retry) => {
                    if let Some(key) = retry {
                        if key < okey {
                            let (retry_req, _) = pending.remove(&key).expect("key just seen");
                            ledger.resident -= 1;
                            self.route_attempt(retry_req, rel, breaker, tracker, ledger);
                            continue;
                        }
                    }
                    let req = source.next().expect("peeked above");
                    ledger.streamed += 1;
                    self.route_attempt(req, rel, breaker, tracker, ledger);
                }
                (None, Some(key)) => {
                    let (retry_req, _) = pending.remove(&key).expect("key just seen");
                    ledger.resident -= 1;
                    self.route_attempt(retry_req, rel, breaker, tracker, ledger);
                }
            }
        }
    }

    /// Routes one attempt at its arrival instant over the healthy
    /// candidate set, falling back to wait-for-earliest-recovery when no
    /// replica is routable.
    fn route_attempt(
        &mut self,
        req: Request,
        rel: &ReliabilityConfig,
        breaker: Option<&CircuitBreaker>,
        tracker: &mut FleetLoadTracker,
        ledger: &mut RoutingLedger,
    ) {
        let n = self.config.replicas;
        let t = req.arrival;
        let candidates = healthy_candidates(n, |r| {
            rel.schedule.is_down(r, t) || breaker.is_some_and(|b| b.is_open(r, t))
        });
        let route_req = RouteRequest {
            id: req.id,
            arrival: t,
            input_len: req.input_len,
            max_output_len: req.max_output_len,
            conversation: req.conversation,
        };
        let (replica, start) = if candidates.is_empty() {
            // Whole fleet unroutable: the frontend holds the request for
            // the replica that becomes routable earliest (schedule
            // recovery and breaker cooldown both count), ties to the
            // lowest id, and it arrives there at that instant.
            let mut best = ReplicaId::from(0usize);
            let mut best_ready = SimTime::ZERO;
            for r in 0..n {
                let rid = ReplicaId::from(r);
                let mut ready = rel.schedule.next_up(rid, t);
                if let Some(bk) = breaker {
                    ready = ready.max(bk.open_until(rid));
                }
                if r == 0 || ready < best_ready {
                    best = rid;
                    best_ready = ready;
                }
            }
            (best, best_ready.max(t))
        } else {
            (
                self.router.route(&route_req, tracker.loads(), &candidates),
                t,
            )
        };
        assert!(
            replica.index() < n,
            "router returned out-of-range {replica}"
        );
        tracker.on_assign(replica, &route_req);
        let mut placed = req;
        placed.arrival = start;
        ledger.assignments.push((placed.id, replica));
        ledger.assigned[replica.index()] += 1;
        ledger.buckets[replica.index()].push(placed);
        ledger.grow_resident();
    }
}

/// Merges one replica's segment outcomes (in segment order; the last one
/// is the final, uncapped segment). Counters sum, sim time maximises, and
/// `unfinished` comes from the final segment alone — a capped segment's
/// unfinished requests are crash casualties, owned by the retry ledger.
/// Shared with the elasticity tier, whose drain segments merge the same
/// way.
pub(crate) fn merge_segments(segments: Vec<RunOutcome>) -> RunOutcome {
    let last = segments.len() - 1;
    let mut merged: Option<RunOutcome> = None;
    for (i, seg) in segments.into_iter().enumerate() {
        match &mut merged {
            None => {
                let mut seg = seg;
                if i != last {
                    seg.unfinished = 0;
                }
                merged = Some(seg);
            }
            Some(acc) => {
                acc.records.extend(seg.records);
                acc.rejected.extend(seg.rejected);
                acc.unfinished = if i == last { seg.unfinished } else { 0 };
                acc.scaling_events.extend(seg.scaling_events);
                acc.sim_time = acc.sim_time.max(seg.sim_time);
                acc.iterations += seg.iterations;
                acc.migration_bytes += seg.migration_bytes;
                acc.scheduler_calls += seg.scheduler_calls;
                acc.pressure.merge(&seg.pressure);
                acc.cache.merge(&seg.cache);
                acc.prefilled_tokens += seg.prefilled_tokens;
            }
        }
    }
    merged.expect("every replica runs at least its final segment")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use crate::systems::SystemKind;
    use loong_sched::router::RouterPolicy;
    use loong_workload::datasets::DatasetKind;
    use loong_workload::failure::FailureEvent;

    fn small_trace(count: usize, seed: u64) -> Trace {
        crate::experiment::WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(8.0, count, seed)
    }

    fn fleet(replicas: usize, policy: RouterPolicy) -> FleetEngine {
        FleetEngine::new(FleetConfig::paper_fleet(
            SystemKind::LoongServe,
            replicas,
            policy,
        ))
    }

    #[test]
    fn disarmed_run_matches_plain_run() {
        let trace = small_trace(24, 3);
        let mut engine = fleet(2, RouterPolicy::RoundRobin);
        let plain = engine.run(&trace);
        let reliable = engine.run_reliable(&trace, &ReliabilityConfig::disarmed());
        assert_eq!(plain.records, reliable.fleet.records);
        assert_eq!(plain.rejected, reliable.fleet.rejected);
        assert_eq!(plain.assignments, reliable.fleet.assignments);
        assert_eq!(plain.unfinished, reliable.fleet.unfinished);
        assert_eq!(plain.sim_time, reliable.fleet.sim_time);
        assert_eq!(plain.iterations, reliable.fleet.iterations);
        assert!(reliable.failed.is_empty());
        assert!(reliable.reliability.is_zero());
    }

    #[test]
    fn fail_fast_crash_fails_unresolved_requests_terminally() {
        let trace = small_trace(24, 3);
        // Crash replica 0 early enough that some of its requests are still
        // in flight, with no retry budget.
        let schedule = FailureSchedule::from_events(vec![FailureEvent::new(
            ReplicaId(0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(1_000.0),
        )]);
        let mut engine = fleet(2, RouterPolicy::RoundRobin);
        let outcome = engine.run_reliable(&trace, &ReliabilityConfig::new(schedule));
        assert_eq!(outcome.total_requests(), trace.len());
        assert!(
            !outcome.failed.is_empty(),
            "an early crash with no retries must fail something"
        );
        assert_eq!(
            outcome.reliability.retries_exhausted,
            outcome.failed.len() as u64
        );
        assert_eq!(outcome.reliability.retries_scheduled, 0);
        assert_eq!(outcome.reliability.crashes, 1);
        // Terminal failures and completions are disjoint.
        for f in &outcome.failed {
            assert!(outcome
                .fleet
                .records
                .binary_search_by_key(&f.id, |r| r.id)
                .is_err());
        }
    }

    #[test]
    fn retries_recover_what_fail_fast_loses() {
        let trace = small_trace(24, 3);
        let schedule = || {
            FailureSchedule::from_events(vec![FailureEvent::new(
                ReplicaId(0),
                SimTime::from_secs(1.0),
                SimTime::from_secs(2.0),
            )])
        };
        let mut engine = fleet(2, RouterPolicy::RoundRobin);
        let fail_fast = engine.run_reliable(&trace, &ReliabilityConfig::new(schedule()));
        let retried = engine.run_reliable(
            &trace,
            &ReliabilityConfig::new(schedule()).with_retry(RetryPolicy::exponential(3, 0.5)),
        );
        assert!(!fail_fast.failed.is_empty());
        assert!(retried.failed.is_empty(), "one crash, three retries");
        assert_eq!(retried.fleet.records.len(), trace.len());
        assert_eq!(
            retried.reliability.recovered_requests,
            fail_fast.failed.len() as u64
        );
        assert!(retried.reliability.re_prefilled_tokens > 0);
        assert_eq!(retried.total_requests(), trace.len());
    }

    #[test]
    fn breaker_keeps_a_crash_looping_replica_out_of_rotation() {
        let trace = small_trace(30, 11);
        // Replica 0 crash-loops; the breaker should trip and the stats
        // ledger should say so.
        let schedule = FailureSchedule::from_events(vec![
            FailureEvent::new(
                ReplicaId(0),
                SimTime::from_secs(0.5),
                SimTime::from_secs(0.6),
            ),
            FailureEvent::new(
                ReplicaId(0),
                SimTime::from_secs(0.7),
                SimTime::from_secs(0.8),
            ),
            FailureEvent::new(
                ReplicaId(0),
                SimTime::from_secs(0.9),
                SimTime::from_secs(1.0),
            ),
        ]);
        let mut engine = fleet(2, RouterPolicy::JoinShortestQueue);
        let outcome = engine.run_reliable(
            &trace,
            &ReliabilityConfig::new(schedule)
                .with_retry(RetryPolicy::exponential(5, 0.1))
                .with_breaker(CircuitBreakerConfig::new(2, 60.0, 3_600.0)),
        );
        assert!(outcome.reliability.breaker_opens >= 1);
        assert_eq!(outcome.total_requests(), trace.len());
        // With the breaker holding replica 0 open for an hour, late
        // assignments all land on replica 1.
        let after_trip = outcome
            .fleet
            .assignments
            .iter()
            .rev()
            .take(5)
            .all(|&(_, r)| r == ReplicaId(1));
        assert!(after_trip, "breaker must exclude the crash-looping replica");
    }

    #[test]
    fn whole_fleet_outage_waits_for_earliest_recovery() {
        let trace = small_trace(12, 5);
        // Both replicas down over [0, 100) / [0, 50): every early arrival
        // must wait and land on replica 1, which recovers first.
        let schedule = FailureSchedule::from_events(vec![
            FailureEvent::new(
                ReplicaId(0),
                SimTime::from_secs(0.0),
                SimTime::from_secs(100.0),
            ),
            FailureEvent::new(
                ReplicaId(1),
                SimTime::from_secs(0.0),
                SimTime::from_secs(50.0),
            ),
        ]);
        let mut engine = fleet(2, RouterPolicy::RoundRobin);
        let outcome = engine.run_reliable(
            &trace,
            &ReliabilityConfig::new(schedule).with_retry(RetryPolicy::exponential(1, 1.0)),
        );
        assert_eq!(outcome.total_requests(), trace.len());
        // Nothing can complete before replica 1 recovers.
        for record in &outcome.fleet.records {
            assert!(record.finish >= SimTime::from_secs(50.0));
        }
    }
}
