//! The serving systems under comparison.
//!
//! A [`SystemKind`] bundles a scheduling policy with the parallelism shape
//! it requires (the tensor-parallel degree of the elastic instances), so a
//! single call can build the exact configuration the paper evaluates:
//! LoongServe with TP=2 and up to ESP=4 on one node, vLLM with TP=8,
//! DistServe with two TP=4 halves, and so on.

use crate::engine::{EngineConfig, RunOutcome, ServingEngine};
use loong_cluster::topology::ClusterSpec;
use loong_metrics::slo::SloSpec;
use loong_metrics::summary::RunSummary;
use loong_model::config::ModelConfig;
use loong_sched::baselines::{
    DistServeScheduler, IndependentInstancesScheduler, SplitFuseScheduler, StaticHybridScheduler,
};
use loong_sched::manager::{LoongServeConfig, LoongServeScheduler};
use loong_sched::types::Scheduler;
use loong_simcore::ids::InstanceId;
use loong_workload::trace::Trace;
use serde::{Deserialize, Serialize};

/// The serving systems reproduced from the paper's evaluation (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// LoongServe with elastic sequence parallelism (TP=2, ESP up to the
    /// instance count).
    LoongServe,
    /// LoongServe with elastic scale-up disabled (the Figure 13a ablation).
    LoongServeNoScaleUp,
    /// vLLM-style static tensor parallelism over the whole node (TP=8).
    Vllm,
    /// DeepSpeed-MII with Dynamic SplitFuse chunked prefill (TP=8).
    DeepSpeedMii,
    /// LightLLM with SplitFuse and a workload-tuned chunk size (TP=8).
    LightLlmSplitFuse,
    /// DistServe-style prefill–decode disaggregation (two TP=4 halves).
    DistServe,
    /// Static hybrid parallelism: TP=2 with a fixed SP over all instances
    /// (the "w/o ESP (TP=2, SP=4)" ablation).
    StaticHybrid,
    /// Four independent TP=2 replicas (the "w/o ESP (TP=2) x 4" ablation).
    Replicated,
}

impl SystemKind {
    /// All systems compared in Figure 10.
    pub fn figure10_systems() -> Vec<SystemKind> {
        vec![
            SystemKind::LoongServe,
            SystemKind::Vllm,
            SystemKind::DeepSpeedMii,
            SystemKind::LightLlmSplitFuse,
            SystemKind::DistServe,
        ]
    }

    /// The parallelism ablations compared in Figure 12.
    pub fn figure12_systems() -> Vec<SystemKind> {
        vec![
            SystemKind::LoongServe,
            SystemKind::Vllm,
            SystemKind::StaticHybrid,
            SystemKind::Replicated,
        ]
    }

    /// The report label, matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::LoongServe => "LoongServe",
            SystemKind::LoongServeNoScaleUp => "LoongServe w/o Elastic Scale-up",
            SystemKind::Vllm => "vLLM (TP=8)",
            SystemKind::DeepSpeedMii => "DeepSpeed-MII (Dynamic SplitFuse)",
            SystemKind::LightLlmSplitFuse => "LightLLM w/ SplitFuse",
            SystemKind::DistServe => "DistServe (Prefill-Decoding Disaggregation)",
            SystemKind::StaticHybrid => "LoongServe w/o ESP (TP=2, SP=4)",
            SystemKind::Replicated => "LoongServe w/o ESP (TP=2) x 4",
        }
    }

    /// The tensor-parallel degree of each elastic instance for this system
    /// on a node with `gpus_per_node` GPUs.
    pub fn tp(&self, gpus_per_node: usize) -> usize {
        match self {
            SystemKind::LoongServe
            | SystemKind::LoongServeNoScaleUp
            | SystemKind::StaticHybrid
            | SystemKind::Replicated => 2,
            SystemKind::Vllm | SystemKind::DeepSpeedMii | SystemKind::LightLlmSplitFuse => {
                gpus_per_node
            }
            SystemKind::DistServe => (gpus_per_node / 2).max(1),
        }
    }

    /// Builds the scheduler for this system. `trace` supplies workload
    /// statistics for policies that tune themselves per dataset (the
    /// SplitFuse chunk size, per §7.1).
    pub fn build_scheduler(
        &self,
        instances: &[InstanceId],
        trace: Option<&Trace>,
    ) -> Box<dyn Scheduler> {
        match self {
            SystemKind::LoongServe => Box::new(LoongServeScheduler::new()),
            SystemKind::LoongServeNoScaleUp => {
                Box::new(LoongServeScheduler::with_config(LoongServeConfig {
                    enable_scale_up: false,
                    enable_proactive_scale_down: true,
                }))
            }
            SystemKind::Vllm => Box::new(IndependentInstancesScheduler::vllm()),
            SystemKind::DeepSpeedMii => Box::new(SplitFuseScheduler::deepspeed_mii()),
            SystemKind::LightLlmSplitFuse => {
                let (mean_in, mean_out) = trace
                    .map(|t| {
                        let s = t.stats();
                        (s.mean_input_len.max(1.0), s.mean_output_len.max(1.0))
                    })
                    .unwrap_or((8_192.0, 256.0));
                Box::new(SplitFuseScheduler::lightllm_for_workload(mean_in, mean_out))
            }
            SystemKind::DistServe => Box::new(DistServeScheduler::from_instances(instances)),
            SystemKind::StaticHybrid => Box::new(StaticHybridScheduler::new()),
            SystemKind::Replicated => Box::new(IndependentInstancesScheduler::replicated()),
        }
    }
}

/// A fully specified experiment: system + cluster + model.
#[derive(Debug, Clone)]
pub struct SystemUnderTest {
    /// Which system to run.
    pub kind: SystemKind,
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// The model being served.
    pub model: ModelConfig,
    /// Seed for the engine's internal randomness.
    pub seed: u64,
}

impl SystemUnderTest {
    /// The paper's single-node testbed for a given system.
    pub fn paper_single_node(kind: SystemKind) -> Self {
        SystemUnderTest {
            kind,
            cluster: ClusterSpec::single_node_a800(8),
            model: ModelConfig::lwm_1m_text(),
            seed: 0x5eed,
        }
    }

    /// The paper's two-node testbed (Figure 11) for a given system.
    pub fn paper_two_node(kind: SystemKind) -> Self {
        SystemUnderTest {
            cluster: ClusterSpec::two_node_a800(),
            ..Self::paper_single_node(kind)
        }
    }

    /// Builds the serving engine for this system.
    pub fn build_engine(&self, trace: Option<&Trace>) -> ServingEngine {
        let tp = self.kind.tp(self.cluster.gpus_per_node);
        let config = EngineConfig {
            cluster: self.cluster.clone(),
            tp,
            model: self.model.clone(),
            workspace_fraction: 0.10,
            sib_noise: 0.01,
            seed: self.seed,
            max_sim_time: None,
        };
        // The scheduler needs the instance list, which depends on tp.
        let registry = loong_esp::instance::InstanceRegistry::build(&self.cluster, tp);
        let scheduler = self.kind.build_scheduler(&registry.all_ids(), trace);
        ServingEngine::new(config, scheduler)
    }

    /// Runs this system over a trace and summarises the outcome.
    pub fn run(&self, trace: &Trace, request_rate: f64, slo: &SloSpec) -> (RunSummary, RunOutcome) {
        let mut engine = self.build_engine(Some(trace));
        let outcome = engine.run(trace);
        let summary = RunSummary::from_records(
            self.kind.label(),
            trace.label.clone(),
            request_rate,
            &outcome.records,
            slo,
        );
        (summary, outcome)
    }
}
