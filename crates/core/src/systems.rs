//! The serving systems under comparison.
//!
//! A [`SystemKind`] bundles a scheduling policy with the parallelism shape
//! it requires (the tensor-parallel degree of the elastic instances), so a
//! single call can build the exact configuration the paper evaluates:
//! LoongServe with TP=2 and up to ESP=4 on one node, vLLM with TP=8,
//! DistServe with two TP=4 halves, and so on.

use crate::engine::{EngineConfig, HostSwapConfig, RunOutcome, ServingEngine};
use loong_cluster::topology::ClusterSpec;
use loong_kvcache::prefix::PrefixCacheConfig;
use loong_metrics::slo::SloSpec;
use loong_metrics::summary::RunSummary;
use loong_model::attention::AttentionCostPolicy;
use loong_model::config::ModelConfig;
use loong_sched::baselines::{
    DistServeScheduler, IndependentInstancesScheduler, SplitFuseScheduler, StaticHybridScheduler,
};
use loong_sched::manager::{LoongServeConfig, LoongServeScheduler};
use loong_sched::pressure::PressureConfig;
use loong_sched::types::Scheduler;
use loong_simcore::ids::InstanceId;
use loong_simcore::time::SimDuration;
use loong_workload::trace::Trace;
use serde::{Deserialize, Serialize};

/// The serving systems reproduced from the paper's evaluation (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// LoongServe with elastic sequence parallelism (TP=2, ESP up to the
    /// instance count).
    LoongServe,
    /// LoongServe with elastic scale-up disabled (the Figure 13a ablation).
    LoongServeNoScaleUp,
    /// vLLM-style static tensor parallelism over the whole node (TP=8).
    Vllm,
    /// DeepSpeed-MII with Dynamic SplitFuse chunked prefill (TP=8).
    DeepSpeedMii,
    /// LightLLM with SplitFuse and a workload-tuned chunk size (TP=8).
    LightLlmSplitFuse,
    /// DistServe-style prefill–decode disaggregation (two TP=4 halves).
    DistServe,
    /// Static hybrid parallelism: TP=2 with a fixed SP over all instances
    /// (the "w/o ESP (TP=2, SP=4)" ablation).
    StaticHybrid,
    /// Four independent TP=2 replicas (the "w/o ESP (TP=2) x 4" ablation).
    Replicated,
}

impl SystemKind {
    /// All systems compared in Figure 10.
    pub fn figure10_systems() -> Vec<SystemKind> {
        vec![
            SystemKind::LoongServe,
            SystemKind::Vllm,
            SystemKind::DeepSpeedMii,
            SystemKind::LightLlmSplitFuse,
            SystemKind::DistServe,
        ]
    }

    /// The parallelism ablations compared in Figure 12.
    pub fn figure12_systems() -> Vec<SystemKind> {
        vec![
            SystemKind::LoongServe,
            SystemKind::Vllm,
            SystemKind::StaticHybrid,
            SystemKind::Replicated,
        ]
    }

    /// The report label, matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::LoongServe => "LoongServe",
            SystemKind::LoongServeNoScaleUp => "LoongServe w/o Elastic Scale-up",
            SystemKind::Vllm => "vLLM (TP=8)",
            SystemKind::DeepSpeedMii => "DeepSpeed-MII (Dynamic SplitFuse)",
            SystemKind::LightLlmSplitFuse => "LightLLM w/ SplitFuse",
            SystemKind::DistServe => "DistServe (Prefill-Decoding Disaggregation)",
            SystemKind::StaticHybrid => "LoongServe w/o ESP (TP=2, SP=4)",
            SystemKind::Replicated => "LoongServe w/o ESP (TP=2) x 4",
        }
    }

    /// The tensor-parallel degree of each elastic instance for this system
    /// on a node with `gpus_per_node` GPUs.
    pub fn tp(&self, gpus_per_node: usize) -> usize {
        match self {
            SystemKind::LoongServe
            | SystemKind::LoongServeNoScaleUp
            | SystemKind::StaticHybrid
            | SystemKind::Replicated => 2,
            SystemKind::Vllm | SystemKind::DeepSpeedMii | SystemKind::LightLlmSplitFuse => {
                gpus_per_node
            }
            SystemKind::DistServe => (gpus_per_node / 2).max(1),
        }
    }

    /// Builds the scheduler for this system. `trace` supplies workload
    /// statistics for policies that tune themselves per dataset (the
    /// SplitFuse chunk size, per §7.1).
    pub fn build_scheduler(
        &self,
        instances: &[InstanceId],
        trace: Option<&Trace>,
    ) -> Box<dyn Scheduler> {
        match self {
            SystemKind::LoongServe => Box::new(LoongServeScheduler::new()),
            SystemKind::LoongServeNoScaleUp => {
                Box::new(LoongServeScheduler::with_config(LoongServeConfig {
                    enable_scale_up: false,
                    enable_proactive_scale_down: true,
                }))
            }
            SystemKind::Vllm => Box::new(IndependentInstancesScheduler::vllm()),
            SystemKind::DeepSpeedMii => Box::new(SplitFuseScheduler::deepspeed_mii()),
            SystemKind::LightLlmSplitFuse => {
                let (mean_in, mean_out) = trace
                    .map(|t| {
                        let s = t.stats();
                        (s.mean_input_len.max(1.0), s.mean_output_len.max(1.0))
                    })
                    .unwrap_or((8_192.0, 256.0));
                Box::new(SplitFuseScheduler::lightllm_for_workload(mean_in, mean_out))
            }
            SystemKind::DistServe => Box::new(DistServeScheduler::from_instances(instances)),
            SystemKind::StaticHybrid => Box::new(StaticHybridScheduler::new()),
            SystemKind::Replicated => Box::new(IndependentInstancesScheduler::replicated()),
        }
    }

    /// Builds the scheduler with memory-pressure handling enabled.
    ///
    /// # Panics
    ///
    /// Panics for systems that have no pressure-aware scheduler (the
    /// chunked-prefill and disaggregation baselines).
    pub fn build_pressure_scheduler(
        &self,
        instances: &[InstanceId],
        trace: Option<&Trace>,
        pressure: PressureConfig,
    ) -> Box<dyn Scheduler> {
        let _ = (instances, trace);
        match self {
            SystemKind::LoongServe => Box::new(LoongServeScheduler::new().with_pressure(pressure)),
            SystemKind::LoongServeNoScaleUp => Box::new(
                LoongServeScheduler::with_config(LoongServeConfig {
                    enable_scale_up: false,
                    enable_proactive_scale_down: true,
                })
                .with_pressure(pressure),
            ),
            SystemKind::Vllm => {
                Box::new(IndependentInstancesScheduler::vllm().with_pressure(pressure))
            }
            SystemKind::Replicated => {
                Box::new(IndependentInstancesScheduler::replicated().with_pressure(pressure))
            }
            other => panic!("{other:?} has no pressure-aware scheduler"),
        }
    }
}

/// How a system handles KV memory pressure.
///
/// `Off` is the pre-subsystem behaviour: conservative full-output
/// reservation at admission, so the pool can never be exhausted and the
/// golden digests stay bit-for-bit. The other two modes admit optimistically
/// and trade memory under pressure — for compute (`Recompute`, the
/// vLLM-style baseline) or for PCIe bandwidth (`SwapToHost`, which also
/// enables the host-DRAM tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PressureMode {
    /// No pressure handling (conservative admission; the default).
    Off,
    /// Preempt-and-recompute victims under pressure.
    Recompute,
    /// Swap victims to the host-DRAM tier and restore them later.
    SwapToHost,
}

impl PressureMode {
    fn config(&self) -> Option<PressureConfig> {
        match self {
            PressureMode::Off => None,
            PressureMode::Recompute => Some(PressureConfig::recompute()),
            PressureMode::SwapToHost => Some(PressureConfig::swap_to_host()),
        }
    }
}

/// A fully specified experiment: system + cluster + model.
#[derive(Debug, Clone)]
pub struct SystemUnderTest {
    /// Which system to run.
    pub kind: SystemKind,
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// The model being served.
    pub model: ModelConfig,
    /// Seed for the engine's internal randomness.
    pub seed: u64,
    /// Memory-pressure handling.
    pub pressure: PressureMode,
    /// Per-instance KV capacity override for overload experiments.
    pub kv_capacity_override: Option<u64>,
    /// Hard cap on simulated time (a watchdog for overload experiments);
    /// `None` runs to completion.
    pub max_sim_time: Option<SimDuration>,
    /// The prefix-cache tier (KV reuse across conversation turns). `None`
    /// — the default — keeps runs bit-for-bit on the pre-tier path.
    pub prefix_cache: Option<PrefixCacheConfig>,
    /// Attention-cost policy priced by the run's cost model. `Dense` — the
    /// default — keeps runs bit-for-bit on the pre-policy path.
    pub attention: AttentionCostPolicy,
}

impl SystemUnderTest {
    /// The paper's single-node testbed for a given system.
    pub fn paper_single_node(kind: SystemKind) -> Self {
        SystemUnderTest {
            kind,
            cluster: ClusterSpec::single_node_a800(8),
            model: ModelConfig::lwm_1m_text(),
            seed: 0x5eed,
            pressure: PressureMode::Off,
            kv_capacity_override: None,
            max_sim_time: None,
            prefix_cache: None,
            attention: AttentionCostPolicy::Dense,
        }
    }

    /// Enables a memory-pressure mode (see [`PressureMode`]).
    pub fn with_pressure(mut self, pressure: PressureMode) -> Self {
        self.pressure = pressure;
        self
    }

    /// Enables the prefix-cache tier with the given configuration.
    pub fn with_prefix_cache(mut self, config: PrefixCacheConfig) -> Self {
        self.prefix_cache = Some(config);
        self
    }

    /// Selects the attention-cost policy for the run.
    pub fn with_attention(mut self, attention: AttentionCostPolicy) -> Self {
        self.attention = attention;
        self
    }

    /// Overrides the per-instance KV capacity (overload experiments).
    pub fn with_kv_capacity(mut self, capacity: u64) -> Self {
        self.kv_capacity_override = Some(capacity);
        self
    }

    /// Caps simulated time (a watchdog for overload experiments).
    pub fn with_max_sim_time(mut self, cap: SimDuration) -> Self {
        self.max_sim_time = Some(cap);
        self
    }

    /// The paper's two-node testbed (Figure 11) for a given system.
    pub fn paper_two_node(kind: SystemKind) -> Self {
        SystemUnderTest {
            cluster: ClusterSpec::two_node_a800(),
            ..Self::paper_single_node(kind)
        }
    }

    /// Builds the serving engine for this system.
    pub fn build_engine(&self, trace: Option<&Trace>) -> ServingEngine {
        let tp = self.kind.tp(self.cluster.gpus_per_node);
        // The host tier exists only under the swap mode; half the node's
        // DRAM is assumed available for swapped KV.
        let host_swap = match self.pressure {
            PressureMode::SwapToHost => Some(HostSwapConfig::from_cluster(
                &self.cluster,
                &self.model,
                0.5,
            )),
            _ => None,
        };
        let config = EngineConfig {
            cluster: self.cluster.clone(),
            tp,
            model: self.model.clone(),
            workspace_fraction: 0.10,
            sib_noise: 0.01,
            seed: self.seed,
            max_sim_time: self.max_sim_time,
            host_swap,
            kv_capacity_override: self.kv_capacity_override,
            prefix_cache: self.prefix_cache,
            attention: self.attention,
        };
        // The scheduler needs the instance list, which depends on tp.
        let registry = loong_esp::instance::InstanceRegistry::build(&self.cluster, tp);
        let scheduler = match self.pressure.config() {
            None => self.kind.build_scheduler(&registry.all_ids(), trace),
            Some(cfg) => self
                .kind
                .build_pressure_scheduler(&registry.all_ids(), trace, cfg),
        };
        ServingEngine::new(config, scheduler)
    }

    /// Runs this system over a trace and summarises the outcome.
    pub fn run(&self, trace: &Trace, request_rate: f64, slo: &SloSpec) -> (RunSummary, RunOutcome) {
        let mut engine = self.build_engine(Some(trace));
        let outcome = engine.run(trace);
        let summary = RunSummary::from_records(
            self.kind.label(),
            trace.label.clone(),
            request_rate,
            &outcome.records,
            slo,
        )
        .with_pressure(outcome.pressure)
        .with_cache(outcome.cache);
        (summary, outcome)
    }

    /// Runs this system with the engine observed by `recorder` and the
    /// recorder's per-phase time attribution attached to the summary.
    /// Identical decision-for-decision to [`SystemUnderTest::run`]: the
    /// recorder only receives copies of already-made decisions, so the
    /// returned [`RunOutcome`] is bit-for-bit the untraced one.
    pub fn run_traced(
        &self,
        trace: &Trace,
        request_rate: f64,
        slo: &SloSpec,
        recorder: &mut loong_trace::TraceRecorder,
    ) -> (RunSummary, RunOutcome) {
        let mut engine = self.build_engine(Some(trace));
        let outcome = engine.run_traced(trace, recorder);
        recorder.finalize(outcome.sim_time);
        let summary = RunSummary::from_records(
            self.kind.label(),
            trace.label.clone(),
            request_rate,
            &outcome.records,
            slo,
        )
        .with_pressure(outcome.pressure)
        .with_cache(outcome.cache)
        .with_attribution(recorder.attribution());
        (summary, outcome)
    }
}
