//! # loongserve
//!
//! LoongServe-RS: a full reproduction of *"LoongServe: Efficiently Serving
//! Long-Context Large Language Models with Elastic Sequence Parallelism"*
//! (SOSP 2024) on a deterministic simulated GPU cluster.
//!
//! The crate wires the workspace together:
//!
//! * [`engine`] — the discrete-event serving engine that runs any
//!   [`Scheduler`](loong_sched::types::Scheduler) over a workload trace,
//! * [`fleet`] — the fleet tier: N independent replicas behind a
//!   deterministic cluster router
//!   ([`RouterPolicy`](loong_sched::router::RouterPolicy)),
//! * [`reliability`] — failure injection over the fleet: seeded crash
//!   schedules, health-aware routing, retry/backoff, circuit breaking and
//!   the exactly-once casualty ledger,
//! * [`elastic`] — graceful degradation under overload: SLO-driven fleet
//!   autoscaling with provisioning delays, drain-before-retire scale-down
//!   (no request killed by a scale event), and hysteretic admission
//!   control that sheds best-effort traffic first,
//! * [`systems`] — the systems under comparison (LoongServe, vLLM,
//!   DeepSpeed-MII, LightLLM SplitFuse, DistServe, and the parallelism
//!   ablations) with their paper configurations,
//! * [`experiment`] — rate sweeps, goodput curves and multi-system
//!   comparisons,
//! * [`report`] — markdown/CSV rendering used by the figure-reproduction
//!   benches.
//!
//! See `DESIGN.md` at the repository root for the substitution rationale
//! (simulated substrate instead of real A800 GPUs) and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! # Examples
//!
//! Serve a small mixed workload with LoongServe and print the summary:
//!
//! ```
//! use loongserve::prelude::*;
//!
//! let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
//! let workload = WorkloadSpec::Dataset(DatasetKind::ShareGpt);
//! let trace = workload.generate(5.0, 20, 42);
//! let (summary, outcome) = system.run(&trace, 5.0, &SloSpec::default_for_lwm());
//! assert_eq!(summary.completed + outcome.unfinished + outcome.rejected.len(), 20);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod elastic;
pub mod engine;
pub mod experiment;
pub mod fleet;
pub mod reliability;
pub mod report;
pub mod systems;

pub use elastic::{
    class_slo, ElasticConfig, ElasticFleetOutcome, FleetScaleEvent, FleetScaleKind, ShedRequest,
};
pub use engine::{EngineConfig, HostSwapConfig, RunOutcome, ServingEngine};
pub use experiment::{compare_systems, sweep_system, SweepConfig, SweepResult, WorkloadSpec};
pub use fleet::{FleetConfig, FleetEngine, FleetFootprint, FleetOutcome, ReplicaOutcome};
pub use loong_trace::{
    perfetto_json, series_csv, InstantEvent, NoopSink, Span, SpanPhase, Terminal, TraceConfig,
    TraceLedger, TraceRecorder, TraceSink,
};
pub use reliability::{FailedRequest, ReliabilityConfig, ReliableFleetOutcome};
pub use systems::{PressureMode, SystemKind, SystemUnderTest};

/// Convenient glob-import of the most commonly used types across the whole
/// workspace.
pub mod prelude {
    pub use crate::elastic::{
        class_slo, ElasticConfig, ElasticFleetOutcome, FleetScaleEvent, FleetScaleKind, ShedRequest,
    };
    pub use crate::engine::{EngineConfig, HostSwapConfig, RunOutcome, ServingEngine};
    pub use crate::experiment::{
        compare_systems, sweep_system, SweepConfig, SweepResult, WorkloadSpec,
    };
    pub use crate::fleet::{
        FleetConfig, FleetEngine, FleetFootprint, FleetOutcome, ReplicaOutcome,
    };
    pub use crate::reliability::{FailedRequest, ReliabilityConfig, ReliableFleetOutcome};
    pub use crate::report;
    pub use crate::systems::{PressureMode, SystemKind, SystemUnderTest};
    pub use loong_cluster::prelude::*;
    pub use loong_esp::prelude::*;
    pub use loong_kvcache::prelude::*;
    pub use loong_metrics::prelude::*;
    pub use loong_model::prelude::*;
    pub use loong_sched::prelude::*;
    pub use loong_simcore::ids::{
        BatchId, GpuId, GroupId, InstanceId, NodeId, ReplicaId, RequestId,
    };
    pub use loong_simcore::{ProfileCounters, ProfileReport, SelfProfile};
    pub use loong_simcore::{SimDuration, SimRng, SimTime};
    pub use loong_trace::prelude::*;
    pub use loong_workload::prelude::*;
}
