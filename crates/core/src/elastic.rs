//! The elasticity tier: fleet runs under SLO-driven autoscaling, admission
//! control and load shedding.
//!
//! [`FleetEngine::run_elastic`] generalises the reliability tier's
//! boundary-ordered era execution: boundaries are now the union of the
//! failure schedule's crash instants and the autoscaler's control instants
//! (every `control_interval_s` on the sim clock, while arrivals remain).
//! Between boundaries the frontend routes arrivals and retries exactly as
//! [`FleetEngine::run_reliable`] does; at each boundary the fleet may
//! change shape:
//!
//! * **Crash** boundaries behave as in the reliability tier — the crashed
//!   replica runs its segment capped at the boundary, casualties retry or
//!   fail terminally under the [`RetryPolicy`].
//! * **Control** boundaries observe the closed window — per-replica
//!   unresolved backlog and the SLO attainment of the window's completions
//!   — and hand the signals to the [`Autoscaler`]. Scale-**up** activates
//!   the lowest-id cold (or previously retired) replicas, which become
//!   routable only after the provisioning delay, with an empty KV pool and
//!   a cold prefix cache. Scale-**down** *drains*: the victim leaves the
//!   routable set immediately (the router is told via
//!   `on_replica_removed`, so durable affinity pins are dropped), finishes
//!   every request already routed to it, and retires when the last one
//!   completes. **No request is ever killed by a scale event.**
//!
//! A crash that strikes a replica *mid-drain* interrupts the drain: the
//! victim retires at the crash instant and whatever it had not finished
//! becomes ordinary crash casualties, resolved by the retry policy.
//!
//! The [`AdmissionController`] (when armed) guards original arrivals at
//! the frontend: while the fleet saturates, best-effort traffic is shed
//! outright and any class whose estimated queueing delay exceeds its
//! deadline is rejected early, behind a hysteresis band so shedding cannot
//! flap. Retries bypass admission — a casualty is already inside the
//! system; shedding applies at the front door only.
//!
//! # Equivalence
//!
//! An autoscaler that never fires ([`AutoscalerConfig::fixed`]) plus an
//! admission controller that never sheds ([`AdmissionConfig::never_sheds`])
//! still run every control boundary — observation runs happen, decisions
//! are taken — but none of it can perturb routing or accounting, so the
//! run reproduces the static fleet **bit for bit** on the pinned golden
//! digests (`tests/elasticity_properties.rs` pins this against
//! `tests/fleet_equivalence.rs`).
//!
//! # Exactly-once accounting
//!
//! Every trace request ends in exactly one of five ledgers: fleet
//! `records` (completed), fleet `rejected` (engine admission rejection),
//! `shed` (frontend load shedding), `failed` (crash casualties whose retry
//! budget ran out), or the fleet's `unfinished` count. A drain moves
//! nothing between ledgers — drained work completes; only a crash can.

use crate::engine::RunOutcome;
use crate::fleet::{
    run_segment_traced, trace_seed, FleetEngine, FleetFootprint, FleetOutcome, ReplicaOutcome,
};
use crate::reliability::{merge_segments, FailedRequest};
use loong_metrics::cache::CacheStats;
use loong_metrics::elasticity::ElasticityStats;
use loong_metrics::fleet::FleetSummary;
use loong_metrics::pressure::PressureStats;
use loong_metrics::record::RequestRecord;
use loong_metrics::reliability::{availability_windows, ReliabilityStats, SlaWindow};
use loong_metrics::slo::SloSpec;
use loong_sched::elastic::{
    AdmissionConfig, AdmissionController, AdmissionDecision, Autoscaler, AutoscalerConfig,
    FleetSignals, ScaleDecision, ShedReason,
};
use loong_sched::reliability::{healthy_candidates, RetryPolicy};
use loong_sched::router::{FleetLoadTracker, RouteRequest};
use loong_simcore::ids::{ReplicaId, RequestId};
use loong_simcore::pool::run_indexed;
use loong_simcore::time::{SimDuration, SimTime};
use loong_trace::TraceRecorder;
use loong_workload::failure::FailureSchedule;
use loong_workload::request::{Request, TrafficClass};
use loong_workload::stream::TraceStream;
use loong_workload::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of an elastic fleet run.
///
/// The fleet engine must be provisioned with `autoscaler.max_replicas`
/// replicas — the autoscaler decides how many of them are *active* at any
/// instant; the rest are cold.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// The target-tracking fleet autoscaler. [`AutoscalerConfig::fixed`]
    /// arms the tier without letting it fire.
    pub autoscaler: AutoscalerConfig,
    /// Replicas active (and routable) at t = 0. Must lie within the
    /// autoscaler's bounds.
    pub initial_replicas: usize,
    /// The frontend load shedder; `None` admits everything.
    pub admission: Option<AdmissionConfig>,
    /// The SLO against which control windows measure attainment (the
    /// autoscaler's scale-up signal).
    pub signal_slo: SloSpec,
    /// Failure injection composed with scaling. [`FailureSchedule::none`]
    /// runs pure elasticity.
    pub schedule: FailureSchedule,
    /// What a crash casualty gets — exactly the reliability tier's policy.
    pub retry: RetryPolicy,
    /// Width of the availability windows in the outcome's SLA series, in
    /// sim-seconds.
    pub sla_window_s: f64,
}

impl ElasticConfig {
    /// An elastic run under `autoscaler`, starting at its minimum size: no
    /// shedding, no failures, no retries, 60 s availability windows.
    pub fn new(autoscaler: AutoscalerConfig) -> Self {
        ElasticConfig {
            initial_replicas: autoscaler.min_replicas,
            autoscaler,
            admission: None,
            signal_slo: SloSpec::default_for_lwm(),
            schedule: FailureSchedule::none(),
            retry: RetryPolicy::none(),
            sla_window_s: 60.0,
        }
    }

    /// The armed-but-idle configuration: an autoscaler pinned to exactly
    /// `n` replicas and an admission controller that can never shed.
    /// Control boundaries run on every window, with no possible effect —
    /// `run_elastic` must reproduce `run` bit for bit under it.
    pub fn armed_idle(n: usize) -> Self {
        ElasticConfig::new(AutoscalerConfig::fixed(n))
            .with_admission(AdmissionConfig::never_sheds())
    }

    /// Arms the frontend load shedder.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Sets the number of replicas active at t = 0.
    pub fn with_initial(mut self, initial_replicas: usize) -> Self {
        self.initial_replicas = initial_replicas;
        self
    }

    /// Composes failure injection with scaling.
    pub fn with_schedule(mut self, schedule: FailureSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the crash-casualty retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the SLO the control window measures attainment against.
    pub fn with_signal_slo(mut self, slo: SloSpec) -> Self {
        self.signal_slo = slo;
        self
    }

    /// Sets the availability-window width.
    pub fn with_sla_window(mut self, window_s: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        self.sla_window_s = window_s;
        self
    }
}

/// A request shed by the frontend admission controller: it never reached a
/// replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedRequest {
    /// The request.
    pub id: RequestId,
    /// Its arrival instant (the shed instant — shedding is immediate).
    pub at: SimTime,
    /// The service class it arrived under.
    pub class: TrafficClass,
    /// Why it was shed.
    pub reason: ShedReason,
}

/// What a fleet scale event did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetScaleKind {
    /// A cold (or previously retired) replica was activated; it becomes
    /// routable at `ready_at` (decision instant + provisioning delay) with
    /// an empty KV pool and a cold prefix cache.
    Activated {
        /// The replica.
        replica: ReplicaId,
        /// When it becomes routable.
        ready_at: SimTime,
    },
    /// An active replica was drained and retired. The drain started at the
    /// event instant and took `drain_s` sim-seconds — zero when the victim
    /// had nothing in flight.
    Retired {
        /// The replica.
        replica: ReplicaId,
        /// Drain duration (decision to retirement), in sim-seconds.
        drain_s: f64,
    },
}

/// One fleet scale event, in decision order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetScaleEvent {
    /// The control boundary at which the decision was taken.
    pub at: SimTime,
    /// What happened.
    pub kind: FleetScaleKind,
    /// Active replicas (routable or provisioning) after the event.
    pub active_after: usize,
}

/// The merged result of one elastic fleet run.
#[derive(Debug, Clone)]
pub struct ElasticFleetOutcome {
    /// The fleet outcome over the attempts that resolved inside a replica.
    pub fleet: FleetOutcome,
    /// Crash casualties that exhausted their retry budget, sorted by id.
    pub failed: Vec<FailedRequest>,
    /// Requests shed at the frontend, sorted by id.
    pub shed: Vec<ShedRequest>,
    /// Every scale event, in decision order.
    pub scale_events: Vec<FleetScaleEvent>,
    /// The effective start instant of each routing decision, parallel to
    /// `fleet.assignments` — what the drain proptests check "no new routes
    /// after retirement" against.
    pub route_instants: Vec<SimTime>,
    /// The whole-run elasticity ledger.
    pub elasticity: ElasticityStats,
    /// The whole-run reliability ledger (crashes composed with scaling).
    pub reliability: ReliabilityStats,
    /// Time-resolved availability series over `sla_window_s` windows.
    pub sla_windows: Vec<SlaWindow>,
}

impl ElasticFleetOutcome {
    /// Total requests accounted for: completed + rejected + unfinished +
    /// terminally failed + shed. Equals the trace length for every
    /// schedule and autoscaler (the exactly-once property).
    pub fn total_requests(&self) -> usize {
        self.fleet.total_requests() + self.failed.len() + self.shed.len()
    }

    /// Fleet-level metric summary with the reliability and elasticity
    /// ledgers attached.
    pub fn summary(
        &self,
        system: &str,
        workload: &str,
        request_rate: f64,
        slo: &SloSpec,
    ) -> FleetSummary {
        let mut summary = self.fleet.summary(system, workload, request_rate, slo);
        summary.attach_reliability(self.reliability, self.sla_windows.clone());
        summary.attach_elasticity(self.elasticity);
        summary
    }

    /// Per-class SLO attainment of the completed requests, judging each
    /// class against the base SLO scaled by its
    /// [`TrafficClass::slo_scale`], in shed order. The class is read off
    /// each record (the engine carries it through from the request), so no
    /// trace-wide index is needed — streamed runs have no materialised
    /// trace to look one up in.
    pub fn class_attainment(&self, base: &SloSpec) -> Vec<(TrafficClass, f64)> {
        TrafficClass::all()
            .into_iter()
            .map(|class| {
                let records: Vec<RequestRecord> = self
                    .fleet
                    .records
                    .iter()
                    .filter(|r| r.class == class)
                    .copied()
                    .collect();
                (class, class_slo(base, class).attainment(&records))
            })
            .collect()
    }
}

/// The SLO a given traffic class is judged by: the base spec with every
/// bound scaled by [`TrafficClass::slo_scale`].
pub fn class_slo(base: &SloSpec, class: TrafficClass) -> SloSpec {
    let s = class.slo_scale();
    SloSpec {
        per_token_s: base.per_token_s * s,
        input_s: base.input_s * s,
        output_s: base.output_s * s,
    }
}

/// Lifecycle of one fleet slot.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Life {
    /// Provisioned but never activated: no capacity cost, not routable.
    Cold,
    /// Active. Routable from `since` (activation instant, or the end of
    /// the provisioning delay for a scale-up).
    Active { since: SimTime },
    /// Drained and retired at `at`; re-activatable by a later scale-up.
    Retired { at: SimTime },
}

/// Mutable state of one elastic run, threaded through the era loop.
struct ElasticRun<'a> {
    cfg: &'a ElasticConfig,
    n: usize,
    life: Vec<Life>,
    tracker: FleetLoadTracker,
    admission: Option<AdmissionController>,
    buckets: Vec<Vec<Request>>,
    segments: Vec<Vec<RunOutcome>>,
    assignments: Vec<(RequestId, ReplicaId)>,
    route_instants: Vec<SimTime>,
    assigned: Vec<usize>,
    pending: BTreeMap<(SimTime, RequestId), (Request, u32)>,
    retries_used: BTreeMap<RequestId, u32>,
    casualty_ids: BTreeSet<RequestId>,
    failed: Vec<FailedRequest>,
    shed: Vec<ShedRequest>,
    stats: ReliabilityStats,
    elastic: ElasticityStats,
    scale_events: Vec<FleetScaleEvent>,
    /// Originals pulled from the source so far.
    streamed: usize,
    /// Requests currently resident in the frontend: bucket entries not yet
    /// handed to an engine, plus retries awaiting their backoff.
    resident: usize,
    /// High-water mark of `resident` — the streamed paths' memory claim.
    peak_resident: usize,
    /// Fleet-wide unresolved backlog measured at the last control
    /// boundary; the admission controller's saturation baseline.
    last_observed_backlog: u64,
    /// Worst-case tokens routed since that observation — the running
    /// correction that lets admission react *between* boundaries.
    routed_since_observation: u64,
    /// Accumulated active span per replica (activation to retirement), in
    /// sim-seconds; still-active spans are closed at the makespan.
    active_spans_s: Vec<f64>,
}

impl ElasticRun<'_> {
    fn grow_resident(&mut self) {
        self.resident += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
    }

    /// Replicas in the `Active` state (routable or provisioning).
    fn active_count(&self) -> usize {
        self.life
            .iter()
            .filter(|l| matches!(l, Life::Active { .. }))
            .count()
    }

    /// Replicas routable at `t`: active, past their provisioning delay.
    fn ready_count(&self, t: SimTime) -> usize {
        self.life
            .iter()
            .filter(|l| matches!(l, Life::Active { since } if *since <= t))
            .count()
    }

    /// The frontend's admission decision for one original arrival, `None`
    /// when the controller is unarmed.
    fn admission_decision(&mut self, req: &Request) -> Option<AdmissionDecision> {
        let ready = self.ready_count(req.arrival);
        let backlog = self
            .last_observed_backlog
            .saturating_add(self.routed_since_observation);
        self.admission
            .as_mut()
            .map(|adm| adm.admit(req.class, backlog, ready))
    }

    /// Records one shed request in the ledger and the class counters.
    fn record_shed(&mut self, req: &Request, reason: ShedReason) {
        match req.class {
            TrafficClass::Interactive => self.elastic.shed_interactive += 1,
            TrafficClass::Standard => self.elastic.shed_standard += 1,
            TrafficClass::BestEffort => self.elastic.shed_best_effort += 1,
        }
        if reason == ShedReason::DeadlineExceeded {
            self.elastic.deadline_rejections += 1;
        }
        self.shed.push(ShedRequest {
            id: req.id,
            at: req.arrival,
            class: req.class,
            reason,
        });
    }

    /// Resolves the unfinished requests of a crashed (or crash-interrupted
    /// draining) replica's segment: each becomes a retry or a terminal
    /// failure under the retry policy, exactly as the reliability tier.
    fn settle_casualties(
        &mut self,
        bucket: &[Request],
        resolved: &BTreeSet<RequestId>,
        replica: ReplicaId,
        at: SimTime,
        mut rec: Option<&mut TraceRecorder>,
    ) {
        let mut casualties: Vec<&Request> = bucket
            .iter()
            .filter(|req| !resolved.contains(&req.id))
            .collect();
        casualties.sort_by_key(|req| req.id);
        for req in casualties {
            self.stats.failed_attempts += 1;
            self.casualty_ids.insert(req.id);
            if let Some(r) = rec.as_deref_mut() {
                r.casualty(at, req.id);
            }
            let used = self.retries_used.get(&req.id).copied().unwrap_or(0);
            if self.cfg.retry.allows(used) {
                let attempt = used + 1;
                self.retries_used.insert(req.id, attempt);
                let mut retry = req.clone();
                retry.arrival = at + self.cfg.retry.backoff(attempt);
                self.stats.retries_scheduled += 1;
                self.stats.re_prefilled_tokens += retry.input_len;
                if let Some(r) = rec.as_deref_mut() {
                    r.retry_scheduled(at, req.id, attempt, retry.arrival);
                }
                self.pending
                    .insert((retry.arrival, retry.id), (retry, attempt));
                self.grow_resident();
            } else {
                self.stats.retries_exhausted += 1;
                let reason = format!(
                    "{replica} crashed at {at} with no retry budget left \
                     ({used} of {} used)",
                    self.cfg.retry.max_retries
                );
                if let Some(r) = rec.as_deref_mut() {
                    r.request_failed(at, req.id, &reason);
                }
                self.failed.push(FailedRequest {
                    id: req.id,
                    at,
                    replica,
                    reason,
                });
            }
        }
    }
}

impl FleetEngine {
    /// Runs the fleet over a trace under elastic autoscaling, admission
    /// control and (optionally) failure injection. See the module docs for
    /// the execution model.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is not provisioned at the autoscaler's maximum,
    /// the initial size lies outside the autoscaler's bounds, a controller
    /// configuration is invalid, or the failure schedule strikes a replica
    /// outside the fleet.
    pub fn run_elastic(&mut self, trace: &Trace, cfg: &ElasticConfig) -> ElasticFleetOutcome {
        self.run_elastic_source(&trace.label, trace.requests.iter().cloned(), cfg, None)
            .0
    }

    /// Runs the elastic fleet with the whole run observed by `recorder`:
    /// request lifecycle spans across scale events, crash casualties and
    /// retries; scale-up/scale-down/shed instants; and per-replica
    /// timeseries. Identical decision-for-decision to
    /// [`FleetEngine::run_elastic`] — observation probes stay untraced, so
    /// the recorder sees each decision-bearing segment exactly once.
    pub fn run_elastic_traced(
        &mut self,
        trace: &Trace,
        cfg: &ElasticConfig,
        recorder: &mut TraceRecorder,
    ) -> ElasticFleetOutcome {
        let (outcome, _) = self.run_elastic_source(
            &trace.label,
            trace.requests.iter().cloned(),
            cfg,
            Some(recorder),
        );
        recorder.finalize(outcome.fleet.sim_time);
        outcome
    }

    /// Runs the elastic fleet over a lazy request stream. Identical
    /// decision-for-decision to [`FleetEngine::run_elastic`] on the
    /// collected stream; the frontend holds only routed-not-yet-executed
    /// requests plus pending retries, measured by the returned
    /// [`FleetFootprint`].
    pub fn run_elastic_stream(
        &mut self,
        stream: TraceStream,
        cfg: &ElasticConfig,
    ) -> (ElasticFleetOutcome, FleetFootprint) {
        let label = stream.label().to_string();
        self.run_elastic_source(&label, stream, cfg, None)
    }

    /// Streamed elastic run observed by `recorder` — the streamed
    /// counterpart of [`FleetEngine::run_elastic_traced`].
    pub fn run_elastic_stream_traced(
        &mut self,
        stream: TraceStream,
        cfg: &ElasticConfig,
        recorder: &mut TraceRecorder,
    ) -> (ElasticFleetOutcome, FleetFootprint) {
        let label = stream.label().to_string();
        let (outcome, footprint) = self.run_elastic_source(&label, stream, cfg, Some(recorder));
        recorder.finalize(outcome.fleet.sim_time);
        (outcome, footprint)
    }

    /// The shared implementation of the materialised and streamed elastic
    /// runs.
    fn run_elastic_source<I: Iterator<Item = Request>>(
        &mut self,
        label: &str,
        source: I,
        cfg: &ElasticConfig,
        mut recorder: Option<&mut TraceRecorder>,
    ) -> (ElasticFleetOutcome, FleetFootprint) {
        let mut source = source.peekable();
        let n = self.config.replicas;
        assert_eq!(
            n, cfg.autoscaler.max_replicas,
            "the fleet must be provisioned at the autoscaler's max \
             ({} replicas), got {n}",
            cfg.autoscaler.max_replicas
        );
        let mut autoscaler = Autoscaler::new(cfg.autoscaler);
        assert!(
            (cfg.autoscaler.min_replicas..=n).contains(&cfg.initial_replicas),
            "initial size {} outside the autoscaler bounds {}..={n}",
            cfg.initial_replicas,
            cfg.autoscaler.min_replicas
        );
        if let Some(max) = cfg.schedule.max_replica() {
            assert!(
                max.index() < n,
                "failure schedule strikes {max}, but the fleet has {n} replicas"
            );
        }
        assert!(cfg.sla_window_s > 0.0, "window must be positive");

        // Fresh router and tracker per run, exactly as `route()` does.
        self.router = self.config.policy.build();
        let mut st = ElasticRun {
            cfg,
            n,
            life: (0..n)
                .map(|r| {
                    if r < cfg.initial_replicas {
                        Life::Active {
                            since: SimTime::ZERO,
                        }
                    } else {
                        Life::Cold
                    }
                })
                .collect(),
            tracker: FleetLoadTracker::new(n),
            admission: cfg.admission.map(AdmissionController::new),
            buckets: vec![Vec::new(); n],
            segments: vec![Vec::new(); n],
            assignments: Vec::new(),
            route_instants: Vec::new(),
            assigned: vec![0usize; n],
            pending: BTreeMap::new(),
            retries_used: BTreeMap::new(),
            casualty_ids: BTreeSet::new(),
            failed: Vec::new(),
            shed: Vec::new(),
            stats: ReliabilityStats {
                crashes: cfg.schedule.events().len() as u64,
                downtime_s: cfg.schedule.total_downtime().as_secs(),
                ..ReliabilityStats::default()
            },
            elastic: ElasticityStats {
                min_active_replicas: cfg.initial_replicas as u64,
                max_active_replicas: cfg.initial_replicas as u64,
                ..ElasticityStats::default()
            },
            scale_events: Vec::new(),
            streamed: 0,
            resident: 0,
            peak_resident: 0,
            last_observed_backlog: 0,
            routed_since_observation: 0,
            active_spans_s: vec![0.0; n],
        };

        // Boundary loop: crashes from the schedule, control instants every
        // `control_interval_s` while arrivals (or pending retries) remain.
        // Controllers that cannot possibly act skip control boundaries
        // entirely — a pure-reliability run pays nothing for this tier.
        let crash_times = cfg.schedule.crash_times();
        let control_on = cfg.autoscaler.is_elastic() || cfg.admission.is_some();
        let interval = cfg.autoscaler.control_interval_s;
        let mut ci = 0usize;
        let mut k = 1u64;
        loop {
            let more_work = source.peek().is_some() || !st.pending.is_empty();
            let next_control =
                (control_on && more_work).then(|| SimTime::from_secs(k as f64 * interval));
            let next_crash = crash_times.get(ci).copied();
            let b = match (next_crash, next_control) {
                (None, None) => break,
                (Some(c), None) => c,
                (None, Some(t)) => t,
                (Some(c), Some(t)) => c.min(t),
            };
            self.elastic_era(&mut source, Some(b), &mut st, recorder.as_deref_mut());
            // At a shared instant crashes resolve first: the control
            // observation then sees the post-crash fleet.
            if next_crash == Some(b) {
                self.crash_boundary(label, b, &mut st, recorder.as_deref_mut());
                ci += 1;
            }
            if next_control == Some(b) {
                self.control_boundary(label, b, &mut autoscaler, &mut st, recorder.as_deref_mut());
                k += 1;
            }
        }

        // Final era and final (uncapped) segment of every replica; retired
        // and cold replicas run empty buckets, keeping the merge shape
        // identical to the reliability tier.
        self.elastic_era(&mut source, None, &mut st, recorder.as_deref_mut());
        let system = self.config.replica_system();
        let finals: Vec<Trace> = (0..n)
            .map(|r| {
                let bucket = std::mem::take(&mut st.buckets[r]);
                st.resident -= bucket.len();
                Trace::from_requests(format!("{label} · replica {r}/{n}"), bucket)
            })
            .collect();
        let seed = trace_seed(&recorder);
        let run_final = |sub: &Trace| run_segment_traced(&system, sub, &seed);
        let final_results: Vec<(RunOutcome, Option<TraceRecorder>)> = if self.config.parallel {
            run_indexed(finals.len(), |r| run_final(&finals[r]))
        } else {
            finals.iter().map(run_final).collect()
        };
        for (r, (segment, (outcome, child))) in
            st.segments.iter_mut().zip(final_results).enumerate()
        {
            if let (Some(rec), Some(child)) = (recorder.as_deref_mut(), child) {
                rec.merge_child(ReplicaId::from(r), child);
            }
            segment.push(outcome);
        }

        // Merge, mirroring the reliability tier: records and rejections in
        // request-id order, counters summed in replica-id order.
        let mut records: Vec<RequestRecord> = Vec::new();
        let mut rejected: Vec<(RequestId, String)> = Vec::new();
        let mut unfinished = 0usize;
        let mut sim_time = SimTime::ZERO;
        let mut iterations = 0u64;
        let mut migration_bytes = 0.0f64;
        let mut scheduler_calls = 0u64;
        let mut pressure = PressureStats::default();
        let mut cache = CacheStats::default();
        let mut per_replica = Vec::with_capacity(n);
        let segments = std::mem::take(&mut st.segments);
        for (r, segs) in segments.into_iter().enumerate() {
            let outcome = merge_segments(segs);
            records.extend(outcome.records.iter().copied());
            rejected.extend(outcome.rejected.iter().cloned());
            unfinished += outcome.unfinished;
            sim_time = sim_time.max(outcome.sim_time);
            iterations += outcome.iterations;
            migration_bytes += outcome.migration_bytes;
            scheduler_calls += outcome.scheduler_calls;
            pressure.merge(&outcome.pressure);
            cache.merge(&outcome.cache);
            per_replica.push(ReplicaOutcome {
                replica: ReplicaId::from(r),
                assigned: st.assigned[r],
                outcome,
            });
        }
        records.sort_by_key(|r| r.id);
        rejected.sort_by_key(|r| r.0);
        st.failed.sort_by_key(|f| f.id);
        st.shed.sort_by_key(|s| s.id);

        st.stats.recovered_requests = st
            .casualty_ids
            .iter()
            .filter(|id| records.binary_search_by_key(*id, |r| r.id).is_ok())
            .count() as u64;
        let failure_instants: Vec<SimTime> = st.failed.iter().map(|f| f.at).collect();
        let sla_windows = availability_windows(cfg.sla_window_s, &records, &failure_instants);

        // Replica-seconds: every span from activation (routable) to
        // retirement; replicas still active close their span at the fleet
        // makespan. The denominator of SLO-goodput per replica-second.
        for r in 0..n {
            if let Life::Active { since } = st.life[r] {
                st.active_spans_s[r] += sim_time.saturating_since(since).as_secs();
            }
        }
        st.elastic.replica_seconds = st.active_spans_s.iter().sum();

        (
            ElasticFleetOutcome {
                fleet: FleetOutcome {
                    per_replica,
                    assignments: st.assignments,
                    records,
                    rejected,
                    unfinished,
                    sim_time,
                    iterations,
                    migration_bytes,
                    scheduler_calls,
                    pressure,
                    cache,
                },
                failed: st.failed,
                shed: st.shed,
                scale_events: st.scale_events,
                route_instants: st.route_instants,
                elasticity: st.elastic,
                reliability: st.stats,
                sla_windows,
            },
            FleetFootprint {
                streamed_requests: st.streamed,
                peak_resident_requests: st.peak_resident,
            },
        )
    }

    /// Routes every arrival — source requests (behind the admission
    /// controller) and pending retries (which bypass it) interleaved by
    /// (arrival, id) — strictly before `end` (all of them when `end` is
    /// `None`). The source is pulled lazily: nothing beyond the era
    /// boundary is ever materialised.
    fn elastic_era<I: Iterator<Item = Request>>(
        &mut self,
        source: &mut std::iter::Peekable<I>,
        end: Option<SimTime>,
        st: &mut ElasticRun<'_>,
        mut rec: Option<&mut TraceRecorder>,
    ) {
        let in_era = |t: SimTime| end.is_none_or(|e| t < e);
        loop {
            let original_key = source
                .peek()
                .map(|req| (req.arrival, req.id))
                .filter(|&(at, _)| in_era(at));
            let retry_key = st
                .pending
                .first_key_value()
                .map(|(&key, _)| key)
                .filter(|&(at, _)| in_era(at));
            match (original_key, retry_key) {
                (None, None) => break,
                (Some(okey), retry) => {
                    if let Some(key) = retry {
                        if key < okey {
                            let (retry_req, _) = st.pending.remove(&key).expect("key just seen");
                            st.resident -= 1;
                            self.elastic_route(retry_req, st);
                            continue;
                        }
                    }
                    let req = source.next().expect("peeked above");
                    st.streamed += 1;
                    if let Some(AdmissionDecision::Shed(reason)) = st.admission_decision(&req) {
                        if let Some(r) = rec.as_deref_mut() {
                            r.shed(req.arrival, req.id, req.class, &format!("{reason:?}"));
                        }
                        st.record_shed(&req, reason);
                        continue;
                    }
                    self.elastic_route(req, st);
                }
                (None, Some(key)) => {
                    let (retry_req, _) = st.pending.remove(&key).expect("key just seen");
                    st.resident -= 1;
                    self.elastic_route(retry_req, st);
                }
            }
        }
    }

    /// Routes one attempt at its arrival instant over the candidates that
    /// are active, past provisioning and up per the failure schedule,
    /// falling back to wait-for-earliest-routable when none qualifies.
    fn elastic_route(&mut self, req: Request, st: &mut ElasticRun<'_>) {
        let n = st.n;
        let t = req.arrival;
        let candidates = healthy_candidates(n, |r| {
            !matches!(st.life[r.index()], Life::Active { since } if since <= t)
                || st.cfg.schedule.is_down(r, t)
        });
        let route_req = RouteRequest {
            id: req.id,
            arrival: t,
            input_len: req.input_len,
            max_output_len: req.max_output_len,
            conversation: req.conversation,
        };
        let (replica, start) = if candidates.is_empty() {
            // Whole fleet unroutable at t: the frontend holds the request
            // for the active replica that becomes routable earliest —
            // provisioning delay and schedule recovery both count — ties
            // to the lowest id.
            let mut best: Option<(SimTime, usize)> = None;
            for r in 0..n {
                if let Life::Active { since } = st.life[r] {
                    let ready = st.cfg.schedule.next_up(ReplicaId::from(r), t.max(since));
                    if best.is_none_or(|(earliest, _)| ready < earliest) {
                        best = Some((ready, r));
                    }
                }
            }
            let (ready, r) = best.expect("the autoscaler keeps at least min_replicas active");
            (ReplicaId::from(r), ready.max(t))
        } else {
            (
                self.router
                    .route(&route_req, st.tracker.loads(), &candidates),
                t,
            )
        };
        assert!(
            replica.index() < n,
            "router returned out-of-range {replica}"
        );
        st.tracker.on_assign(replica, &route_req);
        st.routed_since_observation = st
            .routed_since_observation
            .saturating_add(req.input_len + req.max_output_len);
        let mut placed = req;
        placed.arrival = start;
        st.assignments.push((placed.id, replica));
        st.route_instants.push(start);
        st.assigned[replica.index()] += 1;
        st.buckets[replica.index()].push(placed);
        st.grow_resident();
    }

    /// Resolves every crash striking at `b`: the crashed replica runs its
    /// segment capped at `b` and its unresolved requests become casualties
    /// — identical to the reliability tier.
    fn crash_boundary(
        &mut self,
        label: &str,
        b: SimTime,
        st: &mut ElasticRun<'_>,
        mut rec: Option<&mut TraceRecorder>,
    ) {
        let n = st.n;
        if let Some(r) = rec.as_deref_mut() {
            for event in st.cfg.schedule.events().iter().filter(|e| e.crash == b) {
                r.crash(b, event.replica);
                r.recover(event.recover, event.replica);
            }
        }
        // The capped engine runs are pure, so they go to the worker pool;
        // casualty settlement replays serially in replica-id order (events
        // are sorted by (crash, replica)). The sub-trace holds the routed
        // bucket, so settlement scans it without a separate copy.
        let crashing: Vec<(ReplicaId, Trace)> = st
            .cfg
            .schedule
            .events()
            .iter()
            .filter(|e| e.crash == b)
            .filter_map(|event| {
                let replica = event.replica;
                let bucket = std::mem::take(&mut st.buckets[replica.index()]);
                st.resident -= bucket.len();
                // An empty bucket is a cold, retired, or simply idle
                // replica — nothing for the crash to take.
                (!bucket.is_empty()).then(|| {
                    let sub = Trace::from_requests(
                        format!("{label} · replica {replica}/{n} ∣ crash at {b}"),
                        bucket,
                    );
                    (replica, sub)
                })
            })
            .collect();
        let system = self
            .config
            .replica_system()
            .with_max_sim_time(SimDuration::from_secs(b.as_secs()));
        let seed = trace_seed(&rec);
        let run_segment = |sub: &Trace| run_segment_traced(&system, sub, &seed);
        let results: Vec<(RunOutcome, Option<TraceRecorder>)> = if self.config.parallel {
            run_indexed(crashing.len(), |i| run_segment(&crashing[i].1))
        } else {
            crashing.iter().map(|(_, sub)| run_segment(sub)).collect()
        };
        for ((replica, sub), (outcome, child)) in crashing.into_iter().zip(results) {
            if let (Some(r), Some(child)) = (rec.as_deref_mut(), child) {
                r.merge_child(replica, child);
            }
            let resolved: BTreeSet<RequestId> = outcome
                .records
                .iter()
                .map(|r| r.id)
                .chain(outcome.rejected.iter().map(|r| r.0))
                .collect();
            st.settle_casualties(&sub.requests, &resolved, replica, b, rec.as_deref_mut());
            st.segments[replica.index()].push(outcome);
        }
    }

    /// One control boundary: observe the closed window, let the autoscaler
    /// decide, apply the decision.
    fn control_boundary(
        &mut self,
        label: &str,
        b: SimTime,
        autoscaler: &mut Autoscaler,
        st: &mut ElasticRun<'_>,
        rec: Option<&mut TraceRecorder>,
    ) {
        // Observation probes are replayed and discarded — they never reach
        // the recorder, so a traced run sees each decision-bearing segment
        // exactly once.
        let (signals, backlogs) = self.observe(label, b, st);
        st.last_observed_backlog = signals.backlog_tokens;
        st.routed_since_observation = 0;
        match autoscaler.decide(b.as_secs(), &signals) {
            ScaleDecision::Hold => {}
            ScaleDecision::Up(count) => self.scale_up(b, count, st, rec),
            ScaleDecision::Down(count) => self.scale_down(label, b, count, &backlogs, st, rec),
        }
        let active = st.active_count() as u64;
        st.elastic.min_active_replicas = st.elastic.min_active_replicas.min(active);
        st.elastic.max_active_replicas = st.elastic.max_active_replicas.max(active);
    }

    /// Measures the window that closes at `b`: per-replica unresolved
    /// backlog (worst-case tokens) and the SLO attainment of completions
    /// inside the window. Observation runs replay each ready replica's
    /// bucket capped at `b` and are then discarded — they never touch the
    /// accounting, which is what keeps an armed-but-idle controller
    /// bit-for-bit. Each bucket is *moved* into its probe sub-trace and
    /// moved back afterwards: `from_requests`' stable arrival sort is
    /// idempotent under the later segment sorts, so the round-trip cannot
    /// perturb any subsequent segment — and the observation needs no copy
    /// of the bucket.
    fn observe(
        &self,
        label: &str,
        b: SimTime,
        st: &mut ElasticRun<'_>,
    ) -> (FleetSignals, Vec<u64>) {
        let n = st.n;
        let window_start = b.as_secs() - st.cfg.autoscaler.control_interval_s;
        let mut backlogs = vec![0u64; n];
        let mut window_records: Vec<RequestRecord> = Vec::new();
        let mut ready = 0usize;
        let mut probes: Vec<(usize, Trace)> = Vec::new();
        for r in 0..n {
            let Life::Active { since } = st.life[r] else {
                continue;
            };
            if since > b {
                continue;
            }
            ready += 1;
            if st.buckets[r].is_empty() {
                continue;
            }
            let bucket = std::mem::take(&mut st.buckets[r]);
            probes.push((
                r,
                Trace::from_requests(
                    format!("{label} · replica {r}/{n} ∣ observe at {b}"),
                    bucket,
                ),
            ));
        }
        let system = self
            .config
            .replica_system()
            .with_max_sim_time(SimDuration::from_secs(b.as_secs()));
        let run_probe = |sub: &Trace| system.build_engine(Some(sub)).run(sub);
        let outcomes: Vec<RunOutcome> = if self.config.parallel {
            run_indexed(probes.len(), |i| run_probe(&probes[i].1))
        } else {
            probes.iter().map(|(_, sub)| run_probe(sub)).collect()
        };
        for ((r, sub), outcome) in probes.into_iter().zip(outcomes) {
            let resolved: BTreeSet<RequestId> = outcome
                .records
                .iter()
                .map(|rec| rec.id)
                .chain(outcome.rejected.iter().map(|rej| rej.0))
                .collect();
            backlogs[r] = sub
                .requests
                .iter()
                .filter(|q| !resolved.contains(&q.id))
                .map(|q| q.input_len + q.max_output_len)
                .sum();
            window_records.extend(
                outcome
                    .records
                    .iter()
                    .filter(|rec| rec.finish <= b && rec.finish.as_secs() > window_start)
                    .copied(),
            );
            st.buckets[r] = sub.requests;
        }
        let signals = FleetSignals {
            attainment: st.cfg.signal_slo.attainment(&window_records),
            backlog_tokens: backlogs.iter().sum(),
            active_replicas: ready,
        };
        (signals, backlogs)
    }

    /// Activates up to `want` cold or retired replicas (lowest id first).
    /// Each becomes routable after the provisioning delay, with an empty
    /// KV pool and a cold prefix cache (its engine is built fresh for the
    /// next segment, so this falls out of the execution model).
    fn scale_up(
        &mut self,
        b: SimTime,
        want: usize,
        st: &mut ElasticRun<'_>,
        mut rec: Option<&mut TraceRecorder>,
    ) {
        let ready_at = b + SimDuration::from_secs(st.cfg.autoscaler.provisioning_delay_s);
        let mut activated = 0usize;
        for r in 0..st.n {
            if activated == want {
                break;
            }
            if matches!(st.life[r], Life::Cold | Life::Retired { .. }) {
                st.life[r] = Life::Active { since: ready_at };
                st.elastic.provisioning_s += st.cfg.autoscaler.provisioning_delay_s;
                activated += 1;
                if let Some(recorder) = rec.as_deref_mut() {
                    recorder.replica_activated(b, ReplicaId::from(r), ready_at);
                }
                let active_after = st.active_count();
                st.scale_events.push(FleetScaleEvent {
                    at: b,
                    kind: FleetScaleKind::Activated {
                        replica: ReplicaId::from(r),
                        ready_at,
                    },
                    active_after,
                });
            }
        }
        if activated > 0 {
            st.elastic.scale_up_events += 1;
        }
    }

    /// Drains and retires up to `want` ready replicas. Victims are the
    /// ready actives with the smallest observed backlog (ties to the
    /// highest id — retire the newest). Each victim leaves the routable
    /// set at `b`, finishes everything already routed to it, and retires
    /// when its last request completes — unless a scheduled crash strikes
    /// it mid-drain, in which case it retires at the crash and the
    /// remainder becomes crash casualties.
    #[allow(clippy::too_many_arguments)]
    fn scale_down(
        &mut self,
        label: &str,
        b: SimTime,
        want: usize,
        backlogs: &[u64],
        st: &mut ElasticRun<'_>,
        mut rec: Option<&mut TraceRecorder>,
    ) {
        let mut ready: Vec<(u64, usize)> = (0..st.n)
            .filter(|&r| matches!(st.life[r], Life::Active { since } if since <= b))
            .map(|r| (backlogs[r], r))
            .collect();
        ready.sort_by(|a, other| a.0.cmp(&other.0).then(other.1.cmp(&a.1)));
        let victims: Vec<usize> = ready.iter().take(want).map(|&(_, r)| r).collect();
        if victims.is_empty() {
            return;
        }
        st.elastic.scale_down_events += 1;
        for r in victims {
            let replica = ReplicaId::from(r);
            let Life::Active { since } = st.life[r] else {
                unreachable!("victims are selected among active replicas");
            };
            // Durably drop the router's state for the victim (affinity
            // pins must not resurrect on the retired replica).
            self.router.on_replica_removed(replica);
            let bucket = std::mem::take(&mut st.buckets[r]);
            st.resident -= bucket.len();
            let mut drain_end = b;
            if !bucket.is_empty() {
                // The sub-trace owns the bucket; a mid-drain crash settles
                // casualties off `sub.requests` directly.
                let sub = Trace::from_requests(
                    format!("{label} · replica {replica}/{} ∣ drain at {b}", st.n),
                    bucket,
                );
                let seed = trace_seed(&rec);
                let system = self.config.replica_system();
                let (outcome, tap) = run_segment_traced(&system, &sub, &seed);
                let finish = outcome.sim_time;
                let mid_crash = st
                    .cfg
                    .schedule
                    .events()
                    .iter()
                    .filter(|e| e.replica == replica && e.crash > b && e.crash < finish)
                    .map(|e| e.crash)
                    .min();
                if let Some(c) = mid_crash {
                    // The crash interrupts the drain: re-run capped at the
                    // crash; the rest are casualties. The uncapped run (and
                    // its recording tap) is discarded — only the capped
                    // segment really happened. The crash boundary itself
                    // finds an empty bucket later and skips.
                    drop(tap);
                    let capped_system = self
                        .config
                        .replica_system()
                        .with_max_sim_time(SimDuration::from_secs(c.as_secs()));
                    let (capped, capped_tap) = run_segment_traced(&capped_system, &sub, &seed);
                    if let (Some(recorder), Some(child)) = (rec.as_deref_mut(), capped_tap) {
                        recorder.merge_child(replica, child);
                    }
                    let resolved: BTreeSet<RequestId> = capped
                        .records
                        .iter()
                        .map(|record| record.id)
                        .chain(capped.rejected.iter().map(|rej| rej.0))
                        .collect();
                    st.settle_casualties(&sub.requests, &resolved, replica, c, rec.as_deref_mut());
                    st.segments[r].push(capped);
                    drain_end = c;
                } else {
                    if let (Some(recorder), Some(child)) = (rec.as_deref_mut(), tap) {
                        recorder.merge_child(replica, child);
                    }
                    st.segments[r].push(outcome);
                    drain_end = finish.max(b);
                }
            }
            let drain_s = drain_end.saturating_since(b).as_secs();
            if let Some(recorder) = rec.as_deref_mut() {
                recorder.replica_retired(drain_end, replica);
            }
            st.life[r] = Life::Retired { at: drain_end };
            st.active_spans_s[r] += drain_end.saturating_since(since).as_secs();
            st.elastic.drains_completed += 1;
            st.elastic.total_drain_s += drain_s;
            if drain_s > st.elastic.max_drain_s {
                st.elastic.max_drain_s = drain_s;
            }
            let active_after = st.active_count();
            st.scale_events.push(FleetScaleEvent {
                at: b,
                kind: FleetScaleKind::Retired { replica, drain_s },
                active_after,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use crate::systems::SystemKind;
    use loong_sched::router::RouterPolicy;
    use loong_workload::datasets::DatasetKind;
    use loong_workload::failure::FailureEvent;

    fn small_trace(count: usize, seed: u64) -> Trace {
        crate::experiment::WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(8.0, count, seed)
    }

    fn fleet(replicas: usize, policy: RouterPolicy) -> FleetEngine {
        FleetEngine::new(FleetConfig::paper_fleet(
            SystemKind::LoongServe,
            replicas,
            policy,
        ))
    }

    fn exactly_once(outcome: &ElasticFleetOutcome, trace: &Trace) {
        assert_eq!(outcome.total_requests(), trace.len());
        // The five ledgers are disjoint by id.
        let mut seen: BTreeSet<RequestId> = BTreeSet::new();
        for id in outcome
            .fleet
            .records
            .iter()
            .map(|r| r.id)
            .chain(outcome.fleet.rejected.iter().map(|r| r.0))
            .chain(outcome.failed.iter().map(|f| f.id))
            .chain(outcome.shed.iter().map(|s| s.id))
        {
            assert!(seen.insert(id), "{id:?} resolved twice");
        }
    }

    #[test]
    fn armed_idle_run_matches_plain_run() {
        let trace = small_trace(24, 3);
        let mut engine = fleet(2, RouterPolicy::RoundRobin);
        let plain = engine.run(&trace);
        let elastic = engine.run_elastic(&trace, &ElasticConfig::armed_idle(2));
        assert_eq!(plain.records, elastic.fleet.records);
        assert_eq!(plain.rejected, elastic.fleet.rejected);
        assert_eq!(plain.assignments, elastic.fleet.assignments);
        assert_eq!(plain.unfinished, elastic.fleet.unfinished);
        assert_eq!(plain.sim_time, elastic.fleet.sim_time);
        assert_eq!(plain.iterations, elastic.fleet.iterations);
        assert!(elastic.shed.is_empty());
        assert!(elastic.scale_events.is_empty());
        assert!(elastic.failed.is_empty());
        assert_eq!(elastic.elasticity.scale_up_events, 0);
        assert_eq!(elastic.elasticity.scale_down_events, 0);
        assert_eq!(elastic.elasticity.min_active_replicas, 2);
        assert_eq!(elastic.elasticity.max_active_replicas, 2);
        // Two replicas, active for the whole makespan.
        let expected = 2.0 * plain.sim_time.as_secs();
        assert!((elastic.elasticity.replica_seconds - expected).abs() < 1e-9);
    }

    #[test]
    fn scale_up_activates_cold_replicas_after_provisioning() {
        // One active replica, room for three more, a trace heavy enough to
        // blow through the backlog threshold at the first boundary.
        let trace = small_trace(120, 7);
        let mut scaler = AutoscalerConfig::overload_defaults(1, 4);
        scaler.control_interval_s = 5.0;
        scaler.cooldown_s = 0.0;
        scaler.scale_up_backlog_tokens = 2_000;
        scaler.scale_down_backlog_tokens = 500;
        let cfg = ElasticConfig::new(scaler);
        let mut engine = fleet(4, RouterPolicy::JoinShortestQueue);
        let outcome = engine.run_elastic(&trace, &cfg);
        exactly_once(&outcome, &trace);
        assert!(
            outcome.elasticity.scale_up_events >= 1,
            "burst must scale up"
        );
        let activation = outcome
            .scale_events
            .iter()
            .find_map(|e| match e.kind {
                FleetScaleKind::Activated { replica, ready_at } => Some((e.at, replica, ready_at)),
                _ => None,
            })
            .expect("at least one activation");
        let (at, replica, ready_at) = activation;
        assert_eq!(
            ready_at,
            at + SimDuration::from_secs(cfg.autoscaler.provisioning_delay_s),
            "cold replicas come up after the provisioning delay"
        );
        // Nothing routes to the cold replica before it is ready.
        for (i, &(_, rep)) in outcome.fleet.assignments.iter().enumerate() {
            if rep == replica {
                assert!(
                    outcome.route_instants[i] >= ready_at,
                    "routed to {replica} at {} before ready_at {ready_at}",
                    outcome.route_instants[i]
                );
            }
        }
        assert!(outcome.elasticity.provisioning_s > 0.0);
    }

    #[test]
    fn scale_down_drains_without_killing_requests() {
        // A front-loaded burst, then a long quiet tail (one straggler keeps
        // control boundaries alive): the fleet must shrink and every
        // request must still complete.
        let mut requests = small_trace(40, 11).requests;
        let straggler_id = RequestId(40);
        requests.push(Request::new(
            straggler_id,
            SimTime::from_secs(400.0),
            500,
            50,
        ));
        let trace = Trace::from_requests("burst then quiet", requests);
        let mut scaler = AutoscalerConfig::overload_defaults(1, 2);
        scaler.control_interval_s = 30.0;
        scaler.cooldown_s = 0.0;
        let cfg = ElasticConfig::new(scaler).with_initial(2);
        let mut engine = fleet(2, RouterPolicy::RoundRobin);
        let outcome = engine.run_elastic(&trace, &cfg);
        exactly_once(&outcome, &trace);
        assert!(
            outcome.elasticity.scale_down_events >= 1,
            "the quiet tail must scale down"
        );
        assert_eq!(
            outcome.elasticity.drains_completed,
            outcome
                .scale_events
                .iter()
                .filter(|e| matches!(e.kind, FleetScaleKind::Retired { .. }))
                .count() as u64
        );
        // No request was killed: nothing failed, nothing unfinished, and
        // every id completed (or was rejected by a replica's own engine).
        assert!(outcome.failed.is_empty());
        assert_eq!(outcome.fleet.unfinished, 0);
        assert_eq!(
            outcome.fleet.records.len() + outcome.fleet.rejected.len(),
            trace.len()
        );
        // Drained replicas accept no new routes after the drain decision.
        for event in &outcome.scale_events {
            if let FleetScaleKind::Retired { replica, .. } = event.kind {
                for (i, &(_, rep)) in outcome.fleet.assignments.iter().enumerate() {
                    if rep == replica {
                        assert!(
                            outcome.route_instants[i] < event.at,
                            "routed to retired {replica} at {} after drain at {}",
                            outcome.route_instants[i],
                            event.at
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn crash_during_drain_retires_at_the_crash_and_retries_the_rest() {
        // Two busy replicas; the autoscaler (aggressively tuned) drains one
        // at the first control boundary; a scheduled crash then strikes the
        // victim mid-drain. The drain must stop at the crash, the victim's
        // unfinished work must retry elsewhere, and nothing is lost.
        // Round-robin puts the long-decode pair on replica 0 and the
        // shorter pair on replica 1, so replica 1 (smaller backlog) is the
        // drain victim — still decoding well past the crash at 8 s.
        let requests = vec![
            Request::with_max_output(RequestId(0), SimTime::ZERO, 8_000, 2_000, 2_000),
            Request::with_max_output(RequestId(1), SimTime::from_secs(0.1), 4_000, 1_500, 1_500),
            Request::with_max_output(RequestId(2), SimTime::from_secs(0.2), 8_000, 2_000, 2_000),
            Request::with_max_output(RequestId(3), SimTime::from_secs(0.3), 4_000, 1_500, 1_500),
        ];
        let trace = Trace::from_requests("crash during drain", requests);
        let mut scaler = AutoscalerConfig::overload_defaults(1, 2);
        scaler.control_interval_s = 5.0;
        scaler.cooldown_s = 0.0;
        // Generous thresholds: at the first boundary both replicas are
        // under the down-threshold, so the drain decision fires while the
        // victim still has work in flight.
        scaler.scale_up_backlog_tokens = 100_000;
        scaler.scale_down_backlog_tokens = 50_000;
        let schedule = FailureSchedule::from_events(vec![FailureEvent::new(
            ReplicaId(1),
            SimTime::from_secs(8.0),
            SimTime::from_secs(9.0),
        )]);
        let cfg = ElasticConfig::new(scaler)
            .with_initial(2)
            .with_schedule(schedule)
            .with_retry(RetryPolicy::exponential(3, 1.0));
        let mut engine = fleet(2, RouterPolicy::RoundRobin);
        let outcome = engine.run_elastic(&trace, &cfg);
        exactly_once(&outcome, &trace);
        // The victim (replica 1: smaller backlog, then highest id on ties)
        // retired exactly at the crash instant.
        let retired = outcome
            .scale_events
            .iter()
            .find_map(|e| match e.kind {
                FleetScaleKind::Retired { replica, drain_s } => Some((e.at, replica, drain_s)),
                _ => None,
            })
            .expect("the drain decision must fire");
        let (at, victim, drain_s) = retired;
        assert_eq!(victim, ReplicaId(1));
        assert_eq!(at, SimTime::from_secs(5.0));
        assert!(
            (drain_s - 3.0).abs() < 1e-9,
            "drain runs from the decision at 5 s to the crash at 8 s, got {drain_s}"
        );
        // The interrupted work retried and completed: no terminal failures,
        // every request in the records.
        assert!(outcome.reliability.retries_scheduled >= 1);
        assert!(outcome.failed.is_empty());
        assert_eq!(outcome.fleet.records.len(), trace.len());
        assert!(outcome.reliability.recovered_requests >= 1);
    }

    #[test]
    fn saturated_fleet_sheds_best_effort_first() {
        // A single tiny-capacity replica under a heavy mixed burst: the
        // shedder must engage and best-effort traffic must bear it.
        let mut requests = Vec::new();
        for i in 0..30u64 {
            let class = if i % 3 == 0 {
                TrafficClass::BestEffort
            } else {
                TrafficClass::Interactive
            };
            requests.push(
                Request::with_max_output(
                    RequestId(i),
                    SimTime::from_secs(i as f64 * 0.05),
                    2_000,
                    200,
                    200,
                )
                .with_class(class),
            );
        }
        let trace = Trace::from_requests("saturating mixed burst", requests);
        let mut admission = AdmissionConfig::overload_defaults();
        admission.replica_capacity_tokens = 4_000;
        let cfg = ElasticConfig::new(AutoscalerConfig::fixed(1)).with_admission(admission);
        let mut engine = fleet(1, RouterPolicy::Passthrough);
        let outcome = engine.run_elastic(&trace, &cfg);
        exactly_once(&outcome, &trace);
        assert!(!outcome.shed.is_empty(), "saturation must shed");
        assert!(outcome.elasticity.shed_best_effort >= 1);
        // Class priority: interactive is only ever deadline-rejected, never
        // shed while best-effort survives.
        for s in &outcome.shed {
            if s.class == TrafficClass::Interactive {
                assert_eq!(s.reason, ShedReason::DeadlineExceeded);
            }
        }
        let attainment = outcome.class_attainment(&SloSpec::default_for_lwm());
        assert_eq!(attainment.len(), 3);
    }

    #[test]
    fn class_slo_scales_every_bound() {
        let base = SloSpec {
            per_token_s: 0.1,
            input_s: 0.2,
            output_s: 0.3,
        };
        let best_effort = class_slo(&base, TrafficClass::BestEffort);
        assert!((best_effort.per_token_s - 0.4).abs() < 1e-12);
        assert!((best_effort.input_s - 0.8).abs() < 1e-12);
        assert!((best_effort.output_s - 1.2).abs() < 1e-12);
        let interactive = class_slo(&base, TrafficClass::Interactive);
        assert_eq!(interactive, base);
    }

    #[test]
    #[should_panic(expected = "provisioned at the autoscaler's max")]
    fn fleet_size_must_match_autoscaler_max() {
        let trace = small_trace(4, 1);
        let mut engine = fleet(2, RouterPolicy::RoundRobin);
        let _ = engine.run_elastic(
            &trace,
            &ElasticConfig::new(AutoscalerConfig::overload_defaults(1, 4)),
        );
    }
}
