//! Experiment runners: rate sweeps, goodput curves and system comparisons.
//!
//! Each figure in the paper's evaluation is a sweep over offered request
//! rates for one or more systems. These helpers generate the trace once per
//! rate (so every system sees exactly the same arrivals and lengths), run
//! the systems — in parallel across worker threads when asked — and collect
//! the per-run summaries needed to reproduce the figure.

use crate::systems::{SystemKind, SystemUnderTest};
use loong_metrics::slo::{goodput, SloPoint, SloSpec};
use loong_metrics::summary::RunSummary;
use loong_simcore::rng::SimRng;
use loong_workload::arrival::ArrivalProcess;
use loong_workload::datasets::DatasetKind;
use loong_workload::trace::Trace;
use serde::{Deserialize, Serialize};

/// The workload side of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// One of the standard datasets.
    Dataset(DatasetKind),
    /// The Figure-12 Zipf-reshaped mixture with the given exponent.
    ZipfMixed {
        /// The Zipf exponent (1.0, 1.2 or 1.4 in the paper).
        exponent: f64,
    },
}

impl WorkloadSpec {
    /// Generates the trace for this workload at a given rate and size.
    pub fn generate(&self, rate: f64, count: usize, seed: u64) -> Trace {
        let mut rng = SimRng::seed(seed);
        match *self {
            WorkloadSpec::Dataset(kind) => {
                Trace::generate(kind, ArrivalProcess::Poisson { rate }, count, &mut rng)
            }
            WorkloadSpec::ZipfMixed { exponent } => Trace::generate_zipf_mixed(
                exponent,
                ArrivalProcess::Poisson { rate },
                count,
                &mut rng,
            ),
        }
    }

    /// A human-readable label.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Dataset(kind) => kind.name().to_string(),
            WorkloadSpec::ZipfMixed { exponent } => format!("Mixed Zipf={exponent:.1}"),
        }
    }
}

/// Configuration of a rate sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The workload to serve.
    pub workload: WorkloadSpec,
    /// Offered request rates to sweep (requests/second).
    pub rates: Vec<f64>,
    /// Number of requests per run.
    pub requests_per_run: usize,
    /// The SLO used for attainment and goodput.
    pub slo: SloSpec,
    /// Seed shared by all runs of the sweep (the trace at each rate is
    /// identical across systems).
    pub seed: u64,
    /// Run the rates of the sweep on multiple worker threads.
    pub parallel: bool,
}

impl SweepConfig {
    /// A small sweep suitable for tests and examples.
    pub fn quick(workload: WorkloadSpec, rates: Vec<f64>) -> Self {
        SweepConfig {
            workload,
            rates,
            requests_per_run: 60,
            slo: SloSpec::default_for_lwm(),
            seed: 7,
            parallel: false,
        }
    }
}

/// The result of sweeping one system over the configured rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// The system's report label.
    pub system: String,
    /// The workload label.
    pub workload: String,
    /// One summary per offered rate, in rate order.
    pub summaries: Vec<RunSummary>,
    /// The SLO-attainment curve derived from the summaries.
    pub slo_curve: Vec<SloPoint>,
    /// P90 goodput (requests/second).
    pub p90_goodput: f64,
    /// Highest offered rate whose run completed every request (a proxy for
    /// the maximum sustainable throughput under the latency SLO).
    pub max_completed_rate: f64,
}

/// Runs a rate sweep for one system.
pub fn sweep_system(system: &SystemUnderTest, config: &SweepConfig) -> SweepResult {
    let run_one = |&rate: &f64| -> RunSummary {
        let trace = config
            .workload
            .generate(rate, config.requests_per_run, config.seed);
        let (summary, _outcome) = system.run(&trace, rate, &config.slo);
        summary
    };

    let summaries: Vec<RunSummary> = if config.parallel {
        std::thread::scope(|scope| {
            let handles: Vec<_> = config
                .rates
                .iter()
                .map(|rate| scope.spawn(move || run_one(rate)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("sweep worker panicked"))
                .collect()
        })
    } else {
        config.rates.iter().map(run_one).collect()
    };

    let total = config.requests_per_run.max(1);
    let slo_curve: Vec<SloPoint> = summaries
        .iter()
        .map(|s| SloPoint {
            request_rate: s.request_rate,
            // Requests that never completed violate the SLO by definition.
            attainment: s.slo_attainment * s.completed as f64 / total as f64,
            throughput: s.throughput_rps,
        })
        .collect();
    let p90_goodput = goodput(&slo_curve, 0.9);
    let max_completed_rate = summaries
        .iter()
        .filter(|s| s.completed == total)
        .map(|s| s.request_rate)
        .fold(0.0, f64::max);

    SweepResult {
        system: system.kind.label().to_string(),
        workload: config.workload.label(),
        summaries,
        slo_curve,
        p90_goodput,
        max_completed_rate,
    }
}

/// Runs the same sweep for several systems (the shape of Figures 10–12).
pub fn compare_systems(
    kinds: &[SystemKind],
    config: &SweepConfig,
    build: impl Fn(SystemKind) -> SystemUnderTest,
) -> Vec<SweepResult> {
    kinds
        .iter()
        .map(|&kind| sweep_system(&build(kind), config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_spec_generates_matching_traces() {
        let spec = WorkloadSpec::Dataset(DatasetKind::ShareGpt);
        let a = spec.generate(5.0, 20, 3);
        let b = spec.generate(5.0, 20, 3);
        assert_eq!(a, b, "same seed must give the same trace");
        assert_eq!(a.len(), 20);
        assert_eq!(spec.label(), "ShareGPT");
        assert_eq!(
            WorkloadSpec::ZipfMixed { exponent: 1.2 }.label(),
            "Mixed Zipf=1.2"
        );
    }

    #[test]
    fn quick_sweep_config_is_small() {
        let c = SweepConfig::quick(WorkloadSpec::Dataset(DatasetKind::ShareGpt), vec![1.0]);
        assert!(c.requests_per_run <= 100);
        assert!(!c.parallel);
    }
}
