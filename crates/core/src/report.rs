//! Report formatting: markdown and CSV output for experiment results.
//!
//! The figure-reproduction binaries in `loong-bench` print these tables so
//! a run of `cargo bench` (or the standalone binaries) regenerates every
//! table/figure of the paper in a diff-able text form, recorded in
//! `EXPERIMENTS.md`.

use crate::experiment::SweepResult;
use loong_metrics::summary::RunSummary;
use std::fmt::Write as _;

/// Renders a set of sweep results as a markdown table with one row per
/// (system, rate) pair — the tabular form of a Figure 10 panel.
pub fn sweep_markdown(results: &[SweepResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", RunSummary::markdown_header());
    for result in results {
        for summary in &result.summaries {
            let _ = writeln!(out, "{}", summary.markdown_row());
        }
    }
    out
}

/// Renders the P90-goodput comparison of a set of sweeps (the form of
/// Figures 12 and 13a).
pub fn goodput_markdown(results: &[SweepResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| system | workload | P90 goodput (req/s) | max fully-served rate (req/s) |"
    );
    let _ = writeln!(out, "|---|---|---|---|");
    for r in results {
        let _ = writeln!(
            out,
            "| {} | {} | {:.3} | {:.3} |",
            r.system, r.workload, r.p90_goodput, r.max_completed_rate
        );
    }
    out
}

/// Renders sweep results as CSV (one row per system and rate) for plotting.
pub fn sweep_csv(results: &[SweepResult]) -> String {
    let mut out = String::from(
        "system,workload,request_rate,completed,throughput_rps,throughput_tokens_per_s,per_token_latency_mean,input_latency_mean,output_latency_mean,slo_attainment\n",
    );
    for result in results {
        for s in &result.summaries {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.6},{:.3},{:.6},{:.6},{:.6},{:.4}",
                escape_csv(&s.system),
                escape_csv(&s.workload),
                s.request_rate,
                s.completed,
                s.throughput_rps,
                s.throughput_tokens_per_s,
                s.per_token_latency.mean,
                s.input_latency.mean,
                s.output_latency.mean,
                s.slo_attainment
            );
        }
    }
    out
}

/// Renders a generic two-column series (e.g. iteration time vs. DoP) as CSV.
pub fn series_csv(header: (&str, &str), rows: &[(String, f64)]) -> String {
    let mut out = format!("{},{}\n", header.0, header.1);
    for (key, value) in rows {
        let _ = writeln!(out, "{},{:.9}", escape_csv(key), value);
    }
    out
}

/// Computes the throughput improvement of `system` over `baseline` at each
/// system's best sustained rate — the "up to N×" headline numbers of §7.2.
pub fn throughput_improvement(
    results: &[SweepResult],
    system: &str,
    baseline: &str,
) -> Option<f64> {
    let best = |name: &str| -> Option<f64> {
        results
            .iter()
            .filter(|r| r.system == name)
            .map(|r| {
                r.summaries
                    .iter()
                    .filter(|s| s.slo_attainment >= 0.9 && s.completed > 0)
                    .map(|s| s.throughput_tokens_per_s)
                    .fold(0.0, f64::max)
            })
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    };
    let sys = best(system)?;
    let base = best(baseline)?;
    if base <= 0.0 {
        return None;
    }
    Some(sys / base)
}

fn escape_csv(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_metrics::latency::LatencySummary;
    use loong_metrics::slo::SloPoint;

    fn summary(system: &str, rate: f64, tokens_per_s: f64, attainment: f64) -> RunSummary {
        RunSummary {
            system: system.to_string(),
            workload: "test".to_string(),
            request_rate: rate,
            completed: 10,
            makespan_s: 10.0,
            throughput_rps: 1.0,
            throughput_tokens_per_s: tokens_per_s,
            input_throughput_tokens_per_s: tokens_per_s * 0.9,
            per_token_latency: LatencySummary::from_values(&[0.01]),
            input_latency: LatencySummary::from_values(&[0.001]),
            output_latency: LatencySummary::from_values(&[0.02]),
            slo_attainment: attainment,
            preemptions: 0,
            pressure: loong_metrics::pressure::PressureStats::default(),
            cache: loong_metrics::cache::CacheStats::default(),
            attribution: loong_metrics::TimeAttribution::default(),
        }
    }

    fn sweep(system: &str, tokens: f64) -> SweepResult {
        SweepResult {
            system: system.to_string(),
            workload: "test".to_string(),
            summaries: vec![
                summary(system, 1.0, tokens, 1.0),
                summary(system, 2.0, tokens * 1.5, 0.95),
            ],
            slo_curve: vec![SloPoint {
                request_rate: 1.0,
                attainment: 1.0,
                throughput: 1.0,
            }],
            p90_goodput: 1.5,
            max_completed_rate: 2.0,
        }
    }

    #[test]
    fn markdown_tables_include_every_run() {
        let results = vec![sweep("LoongServe", 1000.0), sweep("vLLM (TP=8)", 400.0)];
        let md = sweep_markdown(&results);
        assert_eq!(md.lines().count(), 2 + 4, "header + separator + 4 rows");
        let gp = goodput_markdown(&results);
        assert!(gp.contains("LoongServe") && gp.contains("vLLM"));
    }

    #[test]
    fn csv_has_one_row_per_summary() {
        let results = vec![sweep("LoongServe", 1000.0)];
        let csv = sweep_csv(&results);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("system,"));
    }

    #[test]
    fn improvement_is_ratio_of_best_sustained_throughput() {
        let results = vec![sweep("LoongServe", 1000.0), sweep("vLLM (TP=8)", 400.0)];
        let imp =
            throughput_improvement(&results, "LoongServe", "vLLM (TP=8)").expect("both present");
        assert!((imp - 2.5).abs() < 1e-9);
        assert!(throughput_improvement(&results, "LoongServe", "missing").is_none());
    }

    #[test]
    fn csv_escaping_handles_commas() {
        let rows = vec![("a,b".to_string(), 1.0)];
        let csv = series_csv(("k", "v"), &rows);
        assert!(csv.contains("\"a,b\""));
    }
}
