//! The fleet tier: many serving replicas behind a cluster router.
//!
//! LoongServe's elastic-sequence-parallel groups regroup *inside* one
//! replica — one node with its own global manager, unified KV pool and
//! eight GPUs. The paper's deployment setting (and the roadmap's "heavy
//! traffic from millions of users") adds a tier above that: a fleet of
//! such replicas behind a dispatcher, the same tier DistServe assumes
//! above its prefill/decode pools. [`FleetEngine`] is that tier.
//!
//! A fleet run has three phases:
//!
//! 1. **Route.** Requests are walked in arrival order; the configured
//!    [`Router`] policy assigns each to a replica using the fleet's
//!    incrementally maintained [`FleetLoadTracker`] — O(1) bookkeeping per
//!    assignment, O(replicas) per decision, never a scan of any replica's
//!    request table. The engine-level O(active) invariant holds at fleet
//!    scope.
//! 2. **Serve.** The trace is split into per-replica sub-traces
//!    ([`Trace::split_by_assignment`]) and each replica — an independent
//!    [`ServingEngine`] built exactly as the single-engine path builds it —
//!    replays its sub-trace. Replicas share nothing, so they can run on
//!    worker threads without perturbing determinism.
//! 3. **Merge.** Per-replica [`RunOutcome`]s are merged into a
//!    [`FleetOutcome`]: records and rejections in request-id order,
//!    counters summed, simulated time maximised. A 1-replica fleet under
//!    the passthrough router reproduces the bare engine's outcome bit for
//!    bit (`tests/fleet_equivalence.rs` pins this).
//!
//! Every policy is deterministic with sorted tie-breaking, so
//! identically-seeded fleet runs are bit-for-bit reproducible.

use crate::engine::RunOutcome;
use crate::systems::{PressureMode, SystemKind, SystemUnderTest};
use loong_cluster::topology::ClusterSpec;
use loong_kvcache::prefix::PrefixCacheConfig;
use loong_metrics::cache::CacheStats;
use loong_metrics::fleet::FleetSummary;
use loong_metrics::pressure::PressureStats;
use loong_metrics::record::RequestRecord;
use loong_metrics::slo::SloSpec;
use loong_model::attention::AttentionCostPolicy;
use loong_model::config::ModelConfig;
use loong_sched::router::{all_replicas, FleetLoadTracker, RouteRequest, Router, RouterPolicy};
use loong_simcore::ids::{ReplicaId, RequestId};
use loong_simcore::pool::run_indexed;
use loong_simcore::time::SimTime;
use loong_trace::{TraceConfig, TraceRecorder};
use loong_workload::request::Request;
use loong_workload::stream::TraceStream;
use loong_workload::trace::Trace;
use std::collections::BTreeSet;

/// Snapshot of the tracing state a pooled segment closure needs: the
/// recorder's config plus the ever-retried id set. `None` when the run is
/// untraced, so the no-recorder path builds no child recorders at all.
pub(crate) type TraceSeed = Option<(TraceConfig, BTreeSet<u64>)>;

/// Captures the [`TraceSeed`] of an optional parent recorder.
pub(crate) fn trace_seed(recorder: &Option<&mut TraceRecorder>) -> TraceSeed {
    recorder
        .as_ref()
        .map(|r| (r.config(), r.retried_snapshot()))
}

/// Runs one replica segment on a fresh engine — traced through a child
/// recorder when `seed` is armed, plain otherwise. Pure in both modes (the
/// sink only observes already-made decisions), so segments can run on the
/// worker pool; the caller absorbs returned children serially in replica
/// order, which keeps recording deterministic.
pub(crate) fn run_segment_traced(
    system: &SystemUnderTest,
    sub: &Trace,
    seed: &TraceSeed,
) -> (RunOutcome, Option<TraceRecorder>) {
    let mut engine = system.build_engine(Some(sub));
    match seed {
        Some((cfg, retried)) => {
            let mut child = TraceRecorder::segment(*cfg, retried);
            let outcome = engine.run_traced(sub, &mut child);
            (outcome, Some(child))
        }
        None => (engine.run(sub), None),
    }
}

/// Static configuration of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of replicas. Each is a full serving system: its own cluster
    /// node(s), global manager and unified KV pool.
    pub replicas: usize,
    /// The serving system every replica runs (scheduler + parallelism
    /// shape). Fleets are homogeneous.
    pub system: SystemKind,
    /// The cluster owned by **each** replica (not shared): the paper's
    /// default is one 8-GPU A800 node per replica.
    pub cluster: ClusterSpec,
    /// The model served by every replica.
    pub model: ModelConfig,
    /// Seed of each replica's engine-internal randomness. Replicas use the
    /// same seed: they model identical hardware profiled identically, and
    /// replica 0's engine stays bit-for-bit the single-engine baseline.
    pub seed: u64,
    /// The routing policy assigning arriving requests to replicas.
    pub policy: RouterPolicy,
    /// Memory-pressure handling of every replica.
    pub pressure: PressureMode,
    /// The prefix-cache tier of every replica (`None` disables it). Pairs
    /// naturally with [`RouterPolicy::PrefixAffinity`], which keeps a
    /// conversation's turns on the replica retaining its prefix.
    pub prefix_cache: Option<PrefixCacheConfig>,
    /// Per-instance KV capacity override applied to every replica.
    pub kv_capacity_override: Option<u64>,
    /// Attention-cost policy of every replica's cost model (`Dense` keeps
    /// the fleet bit-for-bit on the pre-policy path).
    pub attention: AttentionCostPolicy,
    /// Run replicas on a bounded worker pool, capped at the host's
    /// available parallelism ([`loong_simcore::pool`]). Purely a
    /// wall-clock choice: replicas are independent and the pool merges in
    /// replica-id order, so the outcome is identical either way.
    pub parallel: bool,
}

impl FleetConfig {
    /// A fleet of `replicas` copies of the paper's single-node testbed
    /// (8× A800, LWM-1M-Text) under the given routing policy.
    pub fn paper_fleet(system: SystemKind, replicas: usize, policy: RouterPolicy) -> Self {
        let single = SystemUnderTest::paper_single_node(system);
        FleetConfig {
            replicas,
            system,
            cluster: single.cluster,
            model: single.model,
            seed: single.seed,
            policy,
            pressure: PressureMode::Off,
            prefix_cache: None,
            kv_capacity_override: None,
            attention: AttentionCostPolicy::Dense,
            parallel: false,
        }
    }

    /// The single-replica system equivalent to one replica of this fleet.
    pub(crate) fn replica_system(&self) -> SystemUnderTest {
        SystemUnderTest {
            kind: self.system,
            cluster: self.cluster.clone(),
            model: self.model.clone(),
            seed: self.seed,
            pressure: self.pressure,
            kv_capacity_override: self.kv_capacity_override,
            max_sim_time: None,
            prefix_cache: self.prefix_cache,
            attention: self.attention,
        }
    }
}

/// Deterministic frontend-memory ledger of a streamed fleet run.
///
/// Counts *requests*, not bytes: a simulation-exact proxy that is
/// bit-for-bit reproducible across hosts, which RSS never is. The
/// benches report both — this ledger gates, RSS informs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetFootprint {
    /// Requests pulled from the stream over the whole run.
    pub streamed_requests: usize,
    /// Peak requests resident in the frontend at any instant: routed
    /// bucket entries not yet handed to a replica engine, plus crash
    /// retries awaiting their backoff. Era boundaries flush buckets, so
    /// under a boundary-rich schedule this stays far below the stream
    /// length — the streamed paths' O(active + pending-retries) claim.
    pub peak_resident_requests: usize,
}

impl FleetFootprint {
    /// Folds the current resident count into the peak.
    pub(crate) fn on_resident(&mut self, resident: usize) {
        self.peak_resident_requests = self.peak_resident_requests.max(resident);
    }
}

/// The outcome of one replica within a fleet run.
#[derive(Debug, Clone)]
pub struct ReplicaOutcome {
    /// The replica.
    pub replica: ReplicaId,
    /// Requests the router assigned to this replica.
    pub assigned: usize,
    /// The replica's own engine outcome over its sub-trace.
    pub outcome: RunOutcome,
}

/// The merged result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Per-replica outcomes, in replica-id order.
    pub per_replica: Vec<ReplicaOutcome>,
    /// The replica each request was routed to, in trace order.
    pub assignments: Vec<(RequestId, ReplicaId)>,
    /// Completed requests across the fleet, sorted by request id.
    pub records: Vec<RequestRecord>,
    /// Rejected requests across the fleet, sorted by request id.
    pub rejected: Vec<(RequestId, String)>,
    /// Requests neither finished nor rejected when their replica's run
    /// ended, summed across replicas.
    pub unfinished: usize,
    /// Simulated makespan of the fleet: the slowest replica's run time
    /// (replicas run concurrently in simulated time).
    pub sim_time: SimTime,
    /// Iterations executed across all replicas.
    pub iterations: u64,
    /// Bytes moved by explicit KV migrations across all replicas.
    pub migration_bytes: f64,
    /// Scheduler invocations across all replicas.
    pub scheduler_calls: u64,
    /// Memory-pressure activity accumulated across replicas (counters sum;
    /// the outstanding-swapped high-water mark takes the per-replica max).
    pub pressure: PressureStats,
    /// Prefix-cache activity accumulated across replicas (counters sum;
    /// the retained high-water mark takes the per-replica max).
    pub cache: CacheStats,
}

impl FleetOutcome {
    /// Number of replicas that took part in the run.
    pub fn replicas(&self) -> usize {
        self.per_replica.len()
    }

    /// Total requests accounted for: completed + rejected + unfinished.
    pub fn total_requests(&self) -> usize {
        self.records.len() + self.rejected.len() + self.unfinished
    }

    /// Fleet-level metric summary: merged aggregate plus the per-replica
    /// breakdown.
    pub fn summary(
        &self,
        system: &str,
        workload: &str,
        request_rate: f64,
        slo: &SloSpec,
    ) -> FleetSummary {
        let replica_records: Vec<&[RequestRecord]> = self
            .per_replica
            .iter()
            .map(|r| r.outcome.records.as_slice())
            .collect();
        let mut summary = FleetSummary::from_replica_records(
            system,
            workload,
            request_rate,
            &replica_records,
            slo,
        );
        let per_replica_pressure: Vec<PressureStats> = self
            .per_replica
            .iter()
            .map(|r| r.outcome.pressure)
            .collect();
        summary.attach_pressure(&per_replica_pressure);
        let per_replica_cache: Vec<CacheStats> =
            self.per_replica.iter().map(|r| r.outcome.cache).collect();
        summary.attach_cache(&per_replica_cache);
        summary
    }
}

/// A fleet of serving replicas behind a cluster router.
pub struct FleetEngine {
    pub(crate) config: FleetConfig,
    pub(crate) router: Box<dyn Router>,
}

impl FleetEngine {
    /// Builds a fleet for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero replicas or an invalid cluster.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.replicas > 0, "a fleet needs at least one replica");
        config.cluster.validate().expect("valid replica cluster");
        let router = config.policy.build();
        FleetEngine { config, router }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The router's report label.
    pub fn router_name(&self) -> String {
        self.router.name()
    }

    /// Routes every request of `trace` in arrival order, returning the
    /// per-request replica assignment (indexing `trace.requests`).
    ///
    /// Routing is pure dispatch: the load tracker advances by running sums
    /// only, so the whole pass is O(requests × replicas) with O(replicas)
    /// state — independent of how many requests any replica has absorbed.
    ///
    /// Every call starts from a fresh router and load tracker, so routing
    /// (and therefore [`FleetEngine::run`]) is a pure function of the
    /// configuration and the trace: reusing one engine across traces
    /// cannot leak round-robin counters or probe-RNG state between runs.
    pub fn route(&mut self, trace: &Trace) -> Vec<usize> {
        self.router = self.config.policy.build();
        let mut tracker = FleetLoadTracker::new(self.config.replicas);
        let all = all_replicas(self.config.replicas);
        let mut assignment = Vec::with_capacity(trace.requests.len());
        for req in &trace.requests {
            let route_req = RouteRequest {
                id: req.id,
                arrival: req.arrival,
                input_len: req.input_len,
                max_output_len: req.max_output_len,
                conversation: req.conversation,
            };
            let replica = self.router.route(&route_req, tracker.loads(), &all);
            assert!(
                replica.index() < self.config.replicas,
                "router returned out-of-range {replica}"
            );
            tracker.on_assign(replica, &route_req);
            assignment.push(replica.index());
        }
        assignment
    }

    /// Runs the fleet over a trace: route, serve every replica, merge.
    pub fn run(&mut self, trace: &Trace) -> FleetOutcome {
        self.run_inner(trace, None)
    }

    /// Runs the fleet with every replica observed by `recorder`. Identical
    /// decision-for-decision to [`FleetEngine::run`] — the recorder only
    /// receives copies of already-made decisions — with per-replica spans,
    /// timeseries and instants absorbed in replica-id order.
    pub fn run_traced(&mut self, trace: &Trace, recorder: &mut TraceRecorder) -> FleetOutcome {
        let outcome = self.run_inner(trace, Some(recorder));
        recorder.finalize(outcome.sim_time);
        outcome
    }

    fn run_inner(
        &mut self,
        trace: &Trace,
        mut recorder: Option<&mut TraceRecorder>,
    ) -> FleetOutcome {
        let assignment = self.route(trace);
        let subs = trace.split_by_assignment(self.config.replicas, &assignment);
        let assignments: Vec<(RequestId, ReplicaId)> = trace
            .requests
            .iter()
            .zip(&assignment)
            .map(|(req, &replica)| (req.id, ReplicaId::from(replica)))
            .collect();

        let system = self.config.replica_system();
        let seed = trace_seed(&recorder);
        let run_replica = |sub: &Trace| run_segment_traced(&system, sub, &seed);
        let results: Vec<(RunOutcome, Option<TraceRecorder>)> = if self.config.parallel {
            // Bounded pool, not thread-per-replica: a 64-replica fleet on a
            // 8-core host runs 8 workers pulling replica indices, and the
            // pool merges by index so the outcome is bit-for-bit serial.
            run_indexed(subs.len(), |i| run_replica(&subs[i]))
        } else {
            subs.iter().map(run_replica).collect()
        };
        let mut outcomes = Vec::with_capacity(results.len());
        for (r, (outcome, child)) in results.into_iter().enumerate() {
            if let (Some(rec), Some(child)) = (recorder.as_deref_mut(), child) {
                rec.merge_child(ReplicaId::from(r), child);
            }
            outcomes.push(outcome);
        }

        Self::merge(subs, outcomes, assignments)
    }

    /// Runs the fleet over a lazy request stream: requests are routed one
    /// at a time as they are pulled, so the frontend never materialises
    /// the trace — only the per-replica buckets the engines need anyway.
    /// Collecting the same stream and calling [`FleetEngine::run`] yields
    /// a bit-for-bit identical [`FleetOutcome`]
    /// (`tests/streaming_properties.rs` pins this across every policy).
    pub fn run_stream(&mut self, stream: TraceStream) -> (FleetOutcome, FleetFootprint) {
        self.run_stream_inner(stream, None)
    }

    /// Streamed fleet run with every replica observed by `recorder` — the
    /// streamed counterpart of [`FleetEngine::run_traced`].
    pub fn run_stream_traced(
        &mut self,
        stream: TraceStream,
        recorder: &mut TraceRecorder,
    ) -> (FleetOutcome, FleetFootprint) {
        let (outcome, footprint) = self.run_stream_inner(stream, Some(recorder));
        recorder.finalize(outcome.sim_time);
        (outcome, footprint)
    }

    fn run_stream_inner(
        &mut self,
        stream: TraceStream,
        mut recorder: Option<&mut TraceRecorder>,
    ) -> (FleetOutcome, FleetFootprint) {
        let n = self.config.replicas;
        let label = stream.label().to_string();
        self.router = self.config.policy.build();
        let mut tracker = FleetLoadTracker::new(n);
        let all = all_replicas(n);
        let mut buckets: Vec<Vec<Request>> = vec![Vec::new(); n];
        let mut assignments: Vec<(RequestId, ReplicaId)> = Vec::new();
        let mut footprint = FleetFootprint::default();
        let mut resident = 0usize;
        for req in stream {
            let route_req = RouteRequest {
                id: req.id,
                arrival: req.arrival,
                input_len: req.input_len,
                max_output_len: req.max_output_len,
                conversation: req.conversation,
            };
            let replica = self.router.route(&route_req, tracker.loads(), &all);
            assert!(
                replica.index() < n,
                "router returned out-of-range {replica}"
            );
            tracker.on_assign(replica, &route_req);
            assignments.push((req.id, replica));
            buckets[replica.index()].push(req);
            footprint.streamed_requests += 1;
            resident += 1;
            footprint.on_resident(resident);
        }
        // The buckets are exactly `split_by_assignment`'s sub-traces:
        // arrival order is preserved by the in-order pushes.
        let subs: Vec<Trace> = buckets
            .into_iter()
            .enumerate()
            .map(|(r, requests)| Trace {
                label: format!("{label} · replica {r}/{n}"),
                requests,
            })
            .collect();
        let system = self.config.replica_system();
        let seed = trace_seed(&recorder);
        let run_replica = |sub: &Trace| run_segment_traced(&system, sub, &seed);
        let results: Vec<(RunOutcome, Option<TraceRecorder>)> = if self.config.parallel {
            run_indexed(subs.len(), |i| run_replica(&subs[i]))
        } else {
            subs.iter().map(run_replica).collect()
        };
        let mut outcomes = Vec::with_capacity(results.len());
        for (r, (outcome, child)) in results.into_iter().enumerate() {
            if let (Some(rec), Some(child)) = (recorder.as_deref_mut(), child) {
                rec.merge_child(ReplicaId::from(r), child);
            }
            outcomes.push(outcome);
        }
        (Self::merge(subs, outcomes, assignments), footprint)
    }

    /// Merges per-replica outcomes into the fleet outcome. Merge order is
    /// deterministic: records and rejections sort by request id, counters
    /// sum in replica-id order.
    fn merge(
        subs: Vec<Trace>,
        outcomes: Vec<RunOutcome>,
        assignments: Vec<(RequestId, ReplicaId)>,
    ) -> FleetOutcome {
        let mut records: Vec<RequestRecord> = Vec::new();
        let mut rejected: Vec<(RequestId, String)> = Vec::new();
        let mut unfinished = 0usize;
        let mut sim_time = SimTime::ZERO;
        let mut iterations = 0u64;
        let mut migration_bytes = 0.0f64;
        let mut scheduler_calls = 0u64;
        let mut pressure = PressureStats::default();
        let mut cache = CacheStats::default();
        let mut per_replica = Vec::with_capacity(outcomes.len());
        for (i, (sub, outcome)) in subs.into_iter().zip(outcomes).enumerate() {
            records.extend(outcome.records.iter().copied());
            rejected.extend(outcome.rejected.iter().cloned());
            unfinished += outcome.unfinished;
            sim_time = sim_time.max(outcome.sim_time);
            iterations += outcome.iterations;
            migration_bytes += outcome.migration_bytes;
            scheduler_calls += outcome.scheduler_calls;
            pressure.merge(&outcome.pressure);
            cache.merge(&outcome.cache);
            per_replica.push(ReplicaOutcome {
                replica: ReplicaId::from(i),
                assigned: sub.len(),
                outcome,
            });
        }
        records.sort_by_key(|r| r.id);
        rejected.sort_by_key(|r| r.0);
        FleetOutcome {
            per_replica,
            assignments,
            records,
            rejected,
            unfinished,
            sim_time,
            iterations,
            migration_bytes,
            scheduler_calls,
            pressure,
            cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WorkloadSpec;
    use loong_workload::datasets::DatasetKind;

    fn small_trace(count: usize, seed: u64) -> Trace {
        WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(8.0, count, seed)
    }

    #[test]
    fn fleet_accounts_for_every_request() {
        let config = FleetConfig::paper_fleet(SystemKind::LoongServe, 2, RouterPolicy::RoundRobin);
        let mut fleet = FleetEngine::new(config);
        let trace = small_trace(24, 3);
        let outcome = fleet.run(&trace);
        assert_eq!(outcome.replicas(), 2);
        assert_eq!(outcome.total_requests(), 24);
        assert_eq!(outcome.assignments.len(), 24);
        assert_eq!(
            outcome
                .per_replica
                .iter()
                .map(|r| r.assigned)
                .sum::<usize>(),
            24
        );
        // Round-robin over an even count splits exactly in half.
        assert_eq!(outcome.per_replica[0].assigned, 12);
        assert_eq!(outcome.per_replica[1].assigned, 12);
        assert!(outcome.records.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn parallel_and_serial_replica_execution_agree() {
        let trace = small_trace(20, 7);
        let run = |parallel: bool| {
            let mut config = FleetConfig::paper_fleet(
                SystemKind::LoongServe,
                3,
                RouterPolicy::JoinShortestQueue,
            );
            config.parallel = parallel;
            FleetEngine::new(config).run(&trace)
        };
        let serial = run(false);
        let parallel = run(true);
        assert_eq!(serial.records, parallel.records);
        assert_eq!(serial.rejected, parallel.rejected);
        assert_eq!(serial.iterations, parallel.iterations);
        assert_eq!(serial.sim_time, parallel.sim_time);
    }

    #[test]
    fn fleet_summary_merges_and_breaks_down() {
        let config = FleetConfig::paper_fleet(SystemKind::LoongServe, 2, RouterPolicy::RoundRobin);
        let mut fleet = FleetEngine::new(config);
        let trace = small_trace(16, 5);
        let outcome = fleet.run(&trace);
        let summary = outcome.summary(
            "LoongServe x2",
            "ShareGPT",
            8.0,
            &SloSpec::default_for_lwm(),
        );
        assert_eq!(summary.replicas(), 2);
        assert_eq!(
            summary.fleet.completed,
            summary
                .per_replica
                .iter()
                .map(|s| s.completed)
                .sum::<usize>()
        );
        assert_eq!(summary.fleet.completed, outcome.records.len());
    }

    #[test]
    fn reusing_one_engine_reproduces_the_run() {
        // 21 % 2 != 0: a round-robin counter surviving the first run would
        // shift the second run's assignments by one; a power-of-two probe
        // stream surviving would shift every probe pair.
        let trace = small_trace(21, 13);
        for policy in [
            RouterPolicy::RoundRobin,
            RouterPolicy::PowerOfTwoChoices { seed: 5 },
        ] {
            let mut fleet =
                FleetEngine::new(FleetConfig::paper_fleet(SystemKind::LoongServe, 2, policy));
            let a = fleet.run(&trace);
            let b = fleet.run(&trace);
            assert_eq!(a.assignments, b.assignments, "{policy:?}");
            assert_eq!(a.records, b.records, "{policy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replica_fleet_is_rejected() {
        let config = FleetConfig {
            replicas: 0,
            ..FleetConfig::paper_fleet(SystemKind::LoongServe, 1, RouterPolicy::Passthrough)
        };
        let _ = FleetEngine::new(config);
    }
}
