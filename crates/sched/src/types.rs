//! The scheduler interface shared by LoongServe and every baseline.
//!
//! The serving engine (in the `loongserve` crate) owns the simulation loop:
//! it tracks request state, executes iterations, and advances the clock. At
//! every scheduling point — a request arrival while resources are idle, or a
//! parallel group finishing an iteration — it hands the scheduler a
//! [`SchedulerView`] of the current state and receives a list of
//! [`Action`]s to execute. Re-forming batches and groups from scratch at
//! every scheduling point is exactly the iteration-granularity flexibility
//! ESP exploits; static baselines simply return the same shapes every time.

use loong_esp::instance::InstanceRegistry;
use loong_kvcache::unified::UnifiedKvPool;
use loong_model::roofline::CostModel;
use loong_model::sib::ScalingInfoBase;
use loong_simcore::ids::{InstanceId, RequestId};
use loong_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// A request waiting in the pending queue (prefill not yet started, or only
/// partially processed by a chunked-prefill baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingRequest {
    /// The request.
    pub id: RequestId,
    /// Arrival time (the queue is kept in FCFS order).
    pub arrival: SimTime,
    /// Prompt tokens the prefill still has to process. With the prefix
    /// cache enabled this is the *uncached suffix* (re-matched at every
    /// scheduling point), so admission reservations and the batching DP
    /// budget price only the work a prefill would actually do; without it,
    /// the full prompt as before.
    pub input_len: u64,
    /// Prompt tokens already processed by previous chunked-prefill
    /// iterations (zero for untouched requests).
    pub prefilled_len: u64,
    /// User-declared bound on the output length, used for admission control.
    pub max_output_len: u64,
}

impl PendingRequest {
    /// Prompt tokens still to be processed.
    pub fn remaining_prefill(&self) -> u64 {
        self.input_len - self.prefilled_len
    }
}

/// A request in the decode phase that is ready for its next iteration (not
/// currently executing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodingRequest {
    /// The request.
    pub id: RequestId,
    /// Current context length (prompt + generated) in tokens.
    pub context_len: u64,
    /// Output tokens generated so far.
    pub generated: u64,
    /// Time already spent in the decode phase, in seconds (used by the
    /// dispatching gain/cost estimate, Eq. 2).
    pub decode_time_s: f64,
    /// Instances currently holding this request's KV tokens.
    pub kv_instances: Vec<InstanceId>,
}

/// A request whose KV cache is parked on the host-DRAM swap tier, waiting
/// for memory pressure to clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwappedRequest {
    /// The request.
    pub id: RequestId,
    /// Context length (prompt + generated) at the time it was swapped out.
    pub context_len: u64,
    /// Output tokens generated before the swap-out.
    pub generated: u64,
    /// KV tokens parked on the host tier.
    pub tokens: u64,
}

/// Everything a scheduler may observe when making a decision.
pub struct SchedulerView<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Pending requests in FCFS order.
    pub pending: &'a [PendingRequest],
    /// Decode-phase requests ready for their next iteration.
    pub decoding: &'a [DecodingRequest],
    /// Requests parked on the host swap tier, in admission order. Always
    /// empty when the host tier is disabled.
    pub swapped: &'a [SwappedRequest],
    /// Instances with no iteration in flight.
    pub idle_instances: &'a [InstanceId],
    /// Instances currently executing, with the time their iteration ends.
    pub busy_instances: &'a [(InstanceId, SimTime)],
    /// The unified KV pool (read-only).
    pub pool: &'a UnifiedKvPool,
    /// The elastic-instance registry.
    pub registry: &'a InstanceRegistry,
    /// The roofline cost model.
    pub cost_model: &'a CostModel,
    /// The scaling information base (profiles, fitted models, thresholds).
    pub sib: &'a ScalingInfoBase,
    /// Mean normalised decode latency of finished requests so far (the
    /// `AvgLat_d` term of Eq. 2); zero until the first request finishes.
    pub avg_decode_latency_s: f64,
}

/// Reusable buffers for assembling a [`SchedulerView`] at every scheduling
/// point.
///
/// The engine builds the `pending`/`decoding`/`idle`/`busy` slices
/// thousands of times per simulated second; owning the vectors across
/// scheduling points keeps the steady-state loop free of per-point
/// allocations. [`ViewScratch::clear`] resets lengths but keeps capacity.
#[derive(Debug, Default)]
pub struct ViewScratch {
    /// Pending requests, in arrival order.
    pub pending: Vec<PendingRequest>,
    /// Decode-ready requests, in arrival order.
    pub decoding: Vec<DecodingRequest>,
    /// Swapped-out requests, in arrival order.
    pub swapped: Vec<SwappedRequest>,
    /// Idle instances, sorted by id.
    pub idle: Vec<InstanceId>,
    /// Busy instances with their completion times, sorted by id.
    pub busy: Vec<(InstanceId, SimTime)>,
}

impl ViewScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears every buffer, retaining capacity for reuse.
    pub fn clear(&mut self) {
        self.pending.clear();
        self.decoding.clear();
        self.swapped.clear();
        self.idle.clear();
        self.busy.clear();
    }

    /// Assembles a [`SchedulerView`] over the current buffer contents.
    #[allow(clippy::too_many_arguments)]
    pub fn view<'a>(
        &'a self,
        now: SimTime,
        pool: &'a UnifiedKvPool,
        registry: &'a InstanceRegistry,
        cost_model: &'a CostModel,
        sib: &'a ScalingInfoBase,
        avg_decode_latency_s: f64,
    ) -> SchedulerView<'a> {
        SchedulerView {
            now,
            pending: &self.pending,
            decoding: &self.decoding,
            swapped: &self.swapped,
            idle_instances: &self.idle,
            busy_instances: &self.busy,
            pool,
            registry,
            cost_model,
            sib,
            avg_decode_latency_s,
        }
    }
}

impl SchedulerView<'_> {
    /// Free KV slots across a set of instances.
    pub fn free_slots_on(&self, instances: &[InstanceId]) -> u64 {
        self.pool
            .free_slots_on(instances)
            .iter()
            .map(|(_, f)| f)
            .sum()
    }

    /// The decoding requests whose KV overlaps any of `instances`.
    pub fn decoding_resident_on(&self, instances: &[InstanceId]) -> Vec<&DecodingRequest> {
        self.decoding
            .iter()
            .filter(|d| d.kv_instances.iter().any(|i| instances.contains(i)))
            .collect()
    }

    /// Device KV pool utilisation of the **active working set** in
    /// `[0, 1]` — the primary pressure signal watermark policies compare
    /// against. Retained prefix-cache entries are excluded: they are
    /// reclaimable on demand (the engine evicts them before committing any
    /// placement that needs their slots), so counting them as used would
    /// pause admission on a full cache while pinning the very requests
    /// whose prefills would shrink it. Identical to the raw device
    /// utilisation when the prefix tier is disabled.
    pub fn kv_utilization(&self) -> f64 {
        self.pool.active_utilization()
    }

    /// Reclaimable (retained prefix-cache) slots on a set of instances.
    /// Admission may treat these as free; the engine evicts as needed at
    /// execution. Always zero when the prefix tier is disabled.
    pub fn reclaimable_slots_on(&self, instances: &[InstanceId]) -> u64 {
        instances
            .iter()
            .map(|&i| self.pool.prefix_retained_on(i))
            .sum()
    }

    /// Free slots on the host swap tier (zero when the tier is disabled).
    pub fn host_free_slots(&self) -> u64 {
        self.pool.host().map(|h| h.free()).unwrap_or(0)
    }

    /// Tokens currently parked on the host swap tier.
    pub fn swapped_tokens(&self) -> u64 {
        self.pool.total_swapped()
    }
}

/// One scheduling decision for the engine to execute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Run a full prefill iteration for `requests` on `instances`, retaining
    /// the resulting KV on `retain_on` (proactive scale-down when
    /// `retain_on` is a strict subset).
    Prefill {
        /// Instances forming the prefill parallel group.
        instances: Vec<InstanceId>,
        /// Requests to prefill (must currently be pending and untouched).
        requests: Vec<RequestId>,
        /// Instances on which the KV is retained for the decode phase.
        retain_on: Vec<InstanceId>,
    },
    /// Run one decode iteration for `requests` on `instances` with the given
    /// master set.
    Decode {
        /// Instances forming the decode parallel group. Must include every
        /// instance holding KV of the batch's requests.
        instances: Vec<InstanceId>,
        /// Master instances (subset of `instances`).
        masters: Vec<InstanceId>,
        /// Requests to advance by one token.
        requests: Vec<RequestId>,
    },
    /// Run a mixed chunked-prefill iteration (SplitFuse-style baselines): a
    /// chunk of `chunk_tokens` prompt tokens of `prefill_request` is fused
    /// with one decode step for `decode_requests`.
    ChunkedPrefill {
        /// Instances forming the group.
        instances: Vec<InstanceId>,
        /// The request whose prompt is being chunked.
        prefill_request: RequestId,
        /// Number of prompt tokens to process this iteration.
        chunk_tokens: u64,
        /// Decode-phase requests fused into the same iteration.
        decode_requests: Vec<RequestId>,
    },
    /// Migrate all KV of `request` onto `targets` (reactive migration;
    /// charged as busy time on the involved instances).
    Migrate {
        /// The request whose KV moves.
        request: RequestId,
        /// The destination instances.
        targets: Vec<InstanceId>,
    },
    /// Reject a request the system cannot serve (e.g. it exceeds the KV
    /// capacity available under the system's placement constraints).
    Reject {
        /// The rejected request.
        request: RequestId,
        /// Human-readable reason recorded in the run report.
        reason: String,
    },
    /// Evict a decode-phase request under memory pressure by discarding its
    /// KV cache entirely; the request re-enters the pending queue and is
    /// recomputed from the prompt (the vLLM-style recompute policy).
    Preempt {
        /// The evicted request (must be decode-ready).
        request: RequestId,
    },
    /// Evict a decode-phase request to the host-DRAM swap tier; its KV is
    /// preserved and restored — no recompute — once pressure clears. The
    /// engine charges the D2H transfer on the PCIe host link.
    SwapOut {
        /// The evicted request (must be decode-ready).
        request: RequestId,
    },
    /// Restore a swapped-out request's KV from the host tier onto `targets`
    /// (the engine plans the token-level placement). The engine charges the
    /// H2D transfer on the PCIe host link.
    SwapIn {
        /// The request to restore (must be swapped out).
        request: RequestId,
        /// Candidate instances for the restored KV placement.
        targets: Vec<InstanceId>,
    },
}

/// Kinds of elastic scaling events, counted for Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingEventKind {
    /// A decode group grew (memory- or compute-triggered).
    ScaleUp,
    /// A prefill group proactively shrank at the prefill/decode boundary.
    ProactiveScaleDown,
    /// A decode group shrank with explicit migration.
    ReactiveScaleDown,
}

/// A timestamped scaling event emitted by a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingEvent {
    /// When the decision was made.
    pub at: SimTime,
    /// What kind of scaling occurred.
    pub kind: ScalingEventKind,
    /// Change in the number of instances involved (positive for scale-up).
    pub delta_instances: i64,
}

/// The scheduling policy interface.
pub trait Scheduler {
    /// Human-readable name used in reports (e.g. "LoongServe", "vLLM").
    fn name(&self) -> String;

    /// Produces the actions to take given the current view. Called whenever
    /// resources free up or new work arrives; returning no actions means
    /// "wait for the next event".
    fn schedule(&mut self, view: &SchedulerView<'_>) -> Vec<Action>;

    /// Scaling events recorded so far (Figure 13b). Baselines that never
    /// scale return an empty slice.
    fn scaling_events(&self) -> &[ScalingEvent] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_remaining_prefill() {
        let p = PendingRequest {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 100,
            prefilled_len: 30,
            max_output_len: 64,
        };
        assert_eq!(p.remaining_prefill(), 70);
    }

    #[test]
    fn actions_serialise() {
        let a = Action::Prefill {
            instances: vec![InstanceId(0)],
            requests: vec![RequestId(1)],
            retain_on: vec![InstanceId(0)],
        };
        let json = serde_json::to_string(&a).expect("serialise");
        let back: Action = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(a, back);
    }

    #[test]
    fn scaling_event_kinds_compare() {
        let e = ScalingEvent {
            at: SimTime::ZERO,
            kind: ScalingEventKind::ScaleUp,
            delta_instances: 1,
        };
        assert_eq!(e.kind, ScalingEventKind::ScaleUp);
        assert_ne!(e.kind, ScalingEventKind::ReactiveScaleDown);
    }
}
