//! Elastic fleet control: autoscaling and admission under overload.
//!
//! A fixed fleet has exactly two failure modes under real traffic: at night
//! it burns replica-seconds doing nothing, and under a flash crowd it wedges
//! queues until every class misses its SLO. This module is the *policy*
//! half of the elasticity tier — two deterministic controllers the fleet
//! engine consults at era boundaries:
//!
//! * [`Autoscaler`] — target-tracking on SLO attainment and queue depth
//!   over the control window, with cooldowns and min/max bounds, deciding
//!   when the fleet grows (cold replicas after a provisioning delay) or
//!   shrinks (a replica drains, then retires);
//! * [`AdmissionController`] — load shedding when the fleet saturates:
//!   class-priority shedding (best-effort before interactive) and
//!   deadline-based early rejection, behind an on/off hysteresis band so
//!   shedding cannot flap around the threshold.
//!
//! Both controllers are pure functions of their observed signals: no clocks,
//! no randomness. Identically-seeded runs make identical decisions, which is
//! what lets the composition proptests pin exactly-once accounting across
//! scale events, and an armed-but-idle controller pair reproduce the static
//! fleet bit for bit.

use loong_workload::request::TrafficClass;
use serde::{Deserialize, Serialize};

/// Static configuration of the fleet [`Autoscaler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerConfig {
    /// The fleet never shrinks below this many active replicas.
    pub min_replicas: usize,
    /// The fleet never grows beyond this many active replicas.
    pub max_replicas: usize,
    /// Spacing of control decisions on the sim clock, in seconds; also the
    /// sliding window over which attainment and backlog are observed.
    pub control_interval_s: f64,
    /// Scale **up** when windowed SLO attainment drops below this target.
    pub target_attainment: f64,
    /// Scale **up** when per-replica backlog (queued prompt + declared
    /// output tokens per active replica) exceeds this, even if attainment
    /// still holds — queue depth leads attainment by one window.
    pub scale_up_backlog_tokens: u64,
    /// Scale **down** only when attainment holds *and* per-replica backlog
    /// is below this. Must be strictly below `scale_up_backlog_tokens` so
    /// the two thresholds form a dead band.
    pub scale_down_backlog_tokens: u64,
    /// Minimum seconds between any two scale decisions (either direction).
    pub cooldown_s: f64,
    /// Seconds between a scale-up decision and the cold replica becoming
    /// routable (container start + model load + empty KV pool warm-up).
    pub provisioning_delay_s: f64,
    /// Replicas added or drained per decision.
    pub step: usize,
}

impl AutoscalerConfig {
    /// An autoscaler pinned to exactly `n` replicas: decisions still run on
    /// every control boundary but can never fire. The configuration of the
    /// bit-for-bit equivalence proptests.
    pub fn fixed(n: usize) -> Self {
        AutoscalerConfig {
            min_replicas: n,
            max_replicas: n,
            ..AutoscalerConfig::overload_defaults(n, n)
        }
    }

    /// Defaults calibrated for the diurnal + flash-crowd studies: 60 s
    /// control windows, 95% attainment target, 30 s cooldown, 15 s
    /// provisioning delay, one replica per step.
    pub fn overload_defaults(min_replicas: usize, max_replicas: usize) -> Self {
        AutoscalerConfig {
            min_replicas,
            max_replicas,
            control_interval_s: 60.0,
            target_attainment: 0.95,
            scale_up_backlog_tokens: 60_000,
            scale_down_backlog_tokens: 15_000,
            cooldown_s: 30.0,
            provisioning_delay_s: 15.0,
            step: 1,
        }
    }

    /// True when the bounds leave any room to scale.
    pub fn is_elastic(&self) -> bool {
        self.min_replicas < self.max_replicas
    }

    /// Validates bounds, thresholds and timings.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_replicas == 0 || self.min_replicas > self.max_replicas {
            return Err(format!(
                "replica bounds must satisfy 1 <= min <= max, got {}..={}",
                self.min_replicas, self.max_replicas
            ));
        }
        if self.control_interval_s.is_nan() || self.control_interval_s <= 0.0 {
            return Err("control interval must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.target_attainment) {
            return Err(format!(
                "target attainment must be in [0, 1], got {}",
                self.target_attainment
            ));
        }
        if self.scale_down_backlog_tokens >= self.scale_up_backlog_tokens {
            return Err(format!(
                "backlog thresholds must form a dead band (down {} < up {})",
                self.scale_down_backlog_tokens, self.scale_up_backlog_tokens
            ));
        }
        if self.cooldown_s < 0.0 || self.provisioning_delay_s < 0.0 {
            return Err("cooldown and provisioning delay must be non-negative".to_string());
        }
        if self.step == 0 {
            return Err("scale step must be at least 1".to_string());
        }
        Ok(())
    }
}

/// What the autoscaler observes at one control boundary: the fleet's state
/// over the window that just closed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSignals {
    /// SLO attainment of requests finishing in the window (1.0 when the
    /// window saw no completions — an idle fleet is not a missed SLO).
    pub attainment: f64,
    /// Total unresolved backlog across active replicas, in worst-case
    /// tokens (`input_len + max_output_len` of every routed-but-unfinished
    /// request).
    pub backlog_tokens: u64,
    /// Replicas currently active and routable.
    pub active_replicas: usize,
}

/// One autoscaler decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDecision {
    /// Stay at the current size.
    Hold,
    /// Activate this many cold replicas (after the provisioning delay).
    Up(usize),
    /// Drain this many active replicas, then retire them.
    Down(usize),
}

/// The deterministic target-tracking fleet autoscaler.
///
/// At every control boundary the fleet engine hands the window's
/// [`FleetSignals`] to [`Autoscaler::decide`]. The controller scales up when
/// the window missed the attainment target or per-replica backlog crossed
/// the high-water mark, scales down when attainment held with backlog under
/// the low-water mark, and otherwise holds. A single cooldown covers both
/// directions, so decisions cannot oscillate faster than `cooldown_s`.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    last_change_s: Option<f64>,
    decisions: u64,
}

impl Autoscaler {
    /// Creates an autoscaler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AutoscalerConfig::validate`].
    pub fn new(config: AutoscalerConfig) -> Self {
        config.validate().expect("valid autoscaler config");
        Autoscaler {
            config,
            last_change_s: None,
            decisions: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Number of non-hold decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decides at sim-time `now_s` given the closed window's signals.
    pub fn decide(&mut self, now_s: f64, signals: &FleetSignals) -> ScaleDecision {
        let active = signals.active_replicas;
        if let Some(last) = self.last_change_s {
            if now_s - last < self.config.cooldown_s {
                return ScaleDecision::Hold;
            }
        }
        let backlog_per_replica = signals.backlog_tokens as f64 / active.max(1) as f64;
        let overloaded = signals.attainment < self.config.target_attainment
            || backlog_per_replica > self.config.scale_up_backlog_tokens as f64;
        if overloaded && active < self.config.max_replicas {
            let k = self.config.step.min(self.config.max_replicas - active);
            self.last_change_s = Some(now_s);
            self.decisions += 1;
            return ScaleDecision::Up(k);
        }
        let underloaded = signals.attainment >= self.config.target_attainment
            && backlog_per_replica < self.config.scale_down_backlog_tokens as f64;
        if underloaded && active > self.config.min_replicas {
            let k = self.config.step.min(active - self.config.min_replicas);
            self.last_change_s = Some(now_s);
            self.decisions += 1;
            return ScaleDecision::Down(k);
        }
        ScaleDecision::Hold
    }
}

/// Static configuration of the [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Shedding switches **on** when fleet backlog reaches this multiple of
    /// total capacity (`replica_capacity_tokens × ready replicas`).
    pub shed_on_ratio: f64,
    /// Shedding switches **off** only when the backlog ratio falls back to
    /// this; must be strictly below `shed_on_ratio` — the hysteresis band
    /// that stops shedding from flapping around one threshold.
    pub shed_off_ratio: f64,
    /// Nominal queued-token capacity of one replica: the backlog it can
    /// hold while still meeting SLOs.
    pub replica_capacity_tokens: u64,
    /// Nominal serving throughput of one replica in tokens/second, used to
    /// estimate queueing delay for deadline-based early rejection.
    pub service_tokens_per_s: f64,
    /// Queueing-delay budget of interactive requests, in seconds.
    pub deadline_interactive_s: f64,
    /// Queueing-delay budget of standard requests, in seconds.
    pub deadline_standard_s: f64,
    /// Queueing-delay budget of best-effort requests, in seconds.
    pub deadline_best_effort_s: f64,
}

impl AdmissionConfig {
    /// Defaults calibrated for the overload studies: shed above 150% of
    /// capacity, recover below 75%.
    pub fn overload_defaults() -> Self {
        AdmissionConfig {
            shed_on_ratio: 1.5,
            shed_off_ratio: 0.75,
            replica_capacity_tokens: 40_000,
            service_tokens_per_s: 4_000.0,
            deadline_interactive_s: 30.0,
            deadline_standard_s: 120.0,
            deadline_best_effort_s: 600.0,
        }
    }

    /// A controller that is armed but can never shed: the on-threshold is
    /// unreachable. The configuration of the bit-for-bit equivalence
    /// proptests — decisions still run on every arrival, with no effect.
    pub fn never_sheds() -> Self {
        AdmissionConfig {
            shed_on_ratio: f64::INFINITY,
            ..AdmissionConfig::overload_defaults()
        }
    }

    /// The queueing-delay budget of `class`, in seconds.
    pub fn deadline_s(&self, class: TrafficClass) -> f64 {
        match class {
            TrafficClass::Interactive => self.deadline_interactive_s,
            TrafficClass::Standard => self.deadline_standard_s,
            TrafficClass::BestEffort => self.deadline_best_effort_s,
        }
    }

    /// Validates the hysteresis band and rates.
    pub fn validate(&self) -> Result<(), String> {
        let band_ok = self.shed_off_ratio >= 0.0 && self.shed_off_ratio < self.shed_on_ratio;
        if !band_ok {
            return Err(format!(
                "hysteresis band requires 0 <= off < on, got off {} / on {}",
                self.shed_off_ratio, self.shed_on_ratio
            ));
        }
        if self.replica_capacity_tokens == 0
            || self.service_tokens_per_s.is_nan()
            || self.service_tokens_per_s <= 0.0
        {
            return Err("replica capacity and service rate must be positive".to_string());
        }
        if self.deadline_interactive_s <= 0.0
            || self.deadline_standard_s < self.deadline_interactive_s
            || self.deadline_best_effort_s < self.deadline_standard_s
        {
            return Err(
                "deadlines must be positive and loosen with the class (interactive <= \
                 standard <= best-effort)"
                    .to_string(),
            );
        }
        Ok(())
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The fleet is saturated and the request's class is shed under
    /// class-priority shedding.
    Saturated,
    /// The estimated queueing delay already exceeds the class's deadline —
    /// serving it would be wasted work, so it is rejected at admission.
    DeadlineExceeded,
}

/// One admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Route the request.
    Admit,
    /// Reject the request at the frontend.
    Shed(ShedReason),
}

/// The saturation-triggered load shedder.
///
/// The controller watches the fleet's backlog-to-capacity ratio. Crossing
/// `shed_on_ratio` arms shedding; only falling below `shed_off_ratio`
/// disarms it (hysteresis — a single threshold would flap admit/shed on
/// every request near the boundary). While shedding: best-effort traffic is
/// dropped outright (class-priority shedding), and any class whose
/// estimated queueing delay exceeds its deadline is rejected early. Off the
/// shedding state, every request is admitted — an armed-but-idle controller
/// is a no-op, which the equivalence proptests pin.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    shedding: bool,
    transitions: u64,
}

impl AdmissionController {
    /// Creates a controller (shedding off).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AdmissionConfig::validate`].
    pub fn new(config: AdmissionConfig) -> Self {
        config.validate().expect("valid admission config");
        AdmissionController {
            config,
            shedding: false,
            transitions: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// True while the controller is in the shedding state.
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }

    /// Number of shedding on/off transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Decides admission for one arriving request of `class`, given the
    /// fleet's current backlog (worst-case queued tokens) and ready replica
    /// count. Updates the hysteresis state first, so the decision reflects
    /// the ratio *including* this arrival's era.
    pub fn admit(
        &mut self,
        class: TrafficClass,
        backlog_tokens: u64,
        ready_replicas: usize,
    ) -> AdmissionDecision {
        let ready = ready_replicas.max(1);
        let capacity = self
            .config
            .replica_capacity_tokens
            .saturating_mul(ready as u64);
        let ratio = backlog_tokens as f64 / capacity as f64;
        if !self.shedding && ratio >= self.config.shed_on_ratio {
            self.shedding = true;
            self.transitions += 1;
        } else if self.shedding && ratio <= self.config.shed_off_ratio {
            self.shedding = false;
            self.transitions += 1;
        }
        if !self.shedding {
            return AdmissionDecision::Admit;
        }
        if class == TrafficClass::BestEffort {
            return AdmissionDecision::Shed(ShedReason::Saturated);
        }
        let est_wait_s = backlog_tokens as f64 / (self.config.service_tokens_per_s * ready as f64);
        if est_wait_s > self.config.deadline_s(class) {
            return AdmissionDecision::Shed(ShedReason::DeadlineExceeded);
        }
        AdmissionDecision::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(attainment: f64, backlog_tokens: u64, active_replicas: usize) -> FleetSignals {
        FleetSignals {
            attainment,
            backlog_tokens,
            active_replicas,
        }
    }

    #[test]
    fn scales_up_on_missed_attainment_and_down_when_idle() {
        let mut scaler = Autoscaler::new(AutoscalerConfig::overload_defaults(1, 4));
        // Missed target -> up.
        assert_eq!(
            scaler.decide(60.0, &signals(0.80, 0, 2)),
            ScaleDecision::Up(1)
        );
        // Cooldown gates the next decision...
        assert_eq!(
            scaler.decide(80.0, &signals(0.80, 0, 3)),
            ScaleDecision::Hold
        );
        // ...then queue depth alone can trigger an up even at full
        // attainment (backlog leads attainment by a window).
        assert_eq!(
            scaler.decide(120.0, &signals(1.0, 500_000, 3)),
            ScaleDecision::Up(1)
        );
        // Healthy and idle -> down.
        assert_eq!(
            scaler.decide(300.0, &signals(1.0, 1_000, 4)),
            ScaleDecision::Down(1)
        );
        assert_eq!(scaler.decisions(), 3);
    }

    #[test]
    fn bounds_and_dead_band_hold() {
        let mut scaler = Autoscaler::new(AutoscalerConfig::overload_defaults(2, 3));
        // At max: overload cannot scale further up.
        assert_eq!(
            scaler.decide(60.0, &signals(0.5, 900_000, 3)),
            ScaleDecision::Hold
        );
        // At min: idleness cannot scale further down.
        assert_eq!(
            scaler.decide(120.0, &signals(1.0, 0, 2)),
            ScaleDecision::Hold
        );
        // In the dead band (attainment holds, backlog between thresholds):
        // hold, in both directions.
        let cfg = scaler.config();
        let mid = (cfg.scale_up_backlog_tokens + cfg.scale_down_backlog_tokens) / 2;
        let mid_total = mid * 2;
        assert_eq!(
            scaler.decide(180.0, &signals(1.0, mid_total, 2)),
            ScaleDecision::Hold
        );
        assert_eq!(scaler.decisions(), 0);
    }

    #[test]
    fn fixed_autoscaler_never_fires() {
        let mut scaler = Autoscaler::new(AutoscalerConfig::fixed(3));
        assert!(!scaler.config().is_elastic());
        for (t, s) in [
            (60.0, signals(0.0, u64::MAX / 2, 3)),
            (120.0, signals(1.0, 0, 3)),
        ] {
            assert_eq!(scaler.decide(t, &s), ScaleDecision::Hold);
        }
        assert_eq!(scaler.decisions(), 0);
    }

    #[test]
    fn step_is_clamped_to_the_bounds() {
        let mut config = AutoscalerConfig::overload_defaults(1, 4);
        config.step = 3;
        config.cooldown_s = 0.0;
        let mut scaler = Autoscaler::new(config);
        assert_eq!(
            scaler.decide(60.0, &signals(0.5, 0, 2)),
            ScaleDecision::Up(2),
            "step 3 clamps to the 2 slots below max"
        );
        assert_eq!(
            scaler.decide(120.0, &signals(1.0, 0, 3)),
            ScaleDecision::Down(2),
            "step 3 clamps to the 2 replicas above min"
        );
    }

    #[test]
    #[should_panic(expected = "dead band")]
    fn inverted_backlog_thresholds_rejected() {
        let mut config = AutoscalerConfig::overload_defaults(1, 2);
        config.scale_down_backlog_tokens = config.scale_up_backlog_tokens;
        let _ = Autoscaler::new(config);
    }

    #[test]
    fn hysteresis_stops_shedding_from_flapping() {
        let mut ctl = AdmissionController::new(AdmissionConfig::overload_defaults());
        let capacity = ctl.config().replica_capacity_tokens; // 1 replica
        let on = (capacity as f64 * 1.5) as u64 + 1;
        let between = capacity; // ratio 1.0: between off (0.75) and on (1.5)
                                // Below on-threshold: admit everything, even best-effort.
        assert_eq!(
            ctl.admit(TrafficClass::BestEffort, between, 1),
            AdmissionDecision::Admit
        );
        assert!(!ctl.is_shedding());
        // Crossing on: shedding arms.
        assert_eq!(
            ctl.admit(TrafficClass::BestEffort, on, 1),
            AdmissionDecision::Shed(ShedReason::Saturated)
        );
        assert!(ctl.is_shedding());
        // Backlog falls back *between* the thresholds: still shedding —
        // this is exactly where a single threshold would flap.
        assert_eq!(
            ctl.admit(TrafficClass::BestEffort, between, 1),
            AdmissionDecision::Shed(ShedReason::Saturated)
        );
        // Only dropping below the off-threshold disarms.
        assert_eq!(
            ctl.admit(TrafficClass::BestEffort, capacity / 2, 1),
            AdmissionDecision::Admit
        );
        assert!(!ctl.is_shedding());
        assert_eq!(ctl.transitions(), 2);
    }

    #[test]
    fn sheds_best_effort_before_interactive() {
        let mut ctl = AdmissionController::new(AdmissionConfig::overload_defaults());
        let on = (ctl.config().replica_capacity_tokens as f64 * 1.6) as u64;
        assert_eq!(
            ctl.admit(TrafficClass::BestEffort, on, 1),
            AdmissionDecision::Shed(ShedReason::Saturated)
        );
        // Same saturation: interactive and standard are still admitted (the
        // estimated wait is within their deadlines).
        assert_eq!(
            ctl.admit(TrafficClass::Interactive, on, 1),
            AdmissionDecision::Admit
        );
        assert_eq!(
            ctl.admit(TrafficClass::Standard, on, 1),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn deadline_rejection_kicks_in_at_extreme_backlog() {
        let mut ctl = AdmissionController::new(AdmissionConfig::overload_defaults());
        let cfg = *ctl.config();
        // Backlog implying a wait beyond the interactive deadline but
        // within the standard one.
        let wait = (cfg.deadline_interactive_s + cfg.deadline_standard_s) / 2.0;
        let backlog = (wait * cfg.service_tokens_per_s) as u64;
        assert!(backlog as f64 / cfg.replica_capacity_tokens as f64 > cfg.shed_on_ratio);
        assert_eq!(
            ctl.admit(TrafficClass::Interactive, backlog, 1),
            AdmissionDecision::Shed(ShedReason::DeadlineExceeded)
        );
        assert_eq!(
            ctl.admit(TrafficClass::Standard, backlog, 1),
            AdmissionDecision::Admit
        );
        // Way beyond every deadline: standard goes too.
        let extreme = backlog * 100;
        assert_eq!(
            ctl.admit(TrafficClass::Standard, extreme, 1),
            AdmissionDecision::Shed(ShedReason::DeadlineExceeded)
        );
    }

    #[test]
    fn never_sheds_configuration_admits_everything() {
        let mut ctl = AdmissionController::new(AdmissionConfig::never_sheds());
        for class in TrafficClass::all() {
            assert_eq!(ctl.admit(class, u64::MAX / 4, 1), AdmissionDecision::Admit);
        }
        assert!(!ctl.is_shedding());
        assert_eq!(ctl.transitions(), 0);
    }

    #[test]
    #[should_panic(expected = "off < on")]
    fn inverted_hysteresis_band_rejected() {
        let mut config = AdmissionConfig::overload_defaults();
        config.shed_off_ratio = config.shed_on_ratio;
        let _ = AdmissionController::new(config);
    }

    #[test]
    fn capacity_scales_with_ready_replicas() {
        let mut ctl = AdmissionController::new(AdmissionConfig::overload_defaults());
        let backlog = (ctl.config().replica_capacity_tokens as f64 * 1.6) as u64;
        // The same backlog over 4 ready replicas is well under the
        // on-threshold: no shedding.
        assert_eq!(
            ctl.admit(TrafficClass::BestEffort, backlog, 4),
            AdmissionDecision::Admit
        );
        // Over 1 replica it saturates.
        assert_eq!(
            ctl.admit(TrafficClass::BestEffort, backlog, 1),
            AdmissionDecision::Shed(ShedReason::Saturated)
        );
    }

    #[test]
    fn configs_serialise() {
        let a = AutoscalerConfig::overload_defaults(1, 8);
        let json = serde_json::to_string(&a).expect("serialise");
        assert_eq!(a, serde_json::from_str(&json).expect("deserialise"));
        let c = AdmissionConfig::overload_defaults();
        let json = serde_json::to_string(&c).expect("serialise");
        assert_eq!(c, serde_json::from_str(&json).expect("deserialise"));
    }
}
