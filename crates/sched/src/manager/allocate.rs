//! Step 2 of the global manager: elastic instance allocation (paper §5.2).
//!
//! Given the admitted prefill requests `R_p` and an initial instance set
//! `E_p`, this step decides whether dedicating *more* elastic instances to
//! the compute-intensive prefill phase pays off. An idle instance that still
//! hosts decode-phase KV can be claimed by first migrating that KV to other
//! active instances; the manager repeatedly considers the instance with the
//! fewest used KV slots (`e_min`) and claims it while the latency gain for
//! the prefill batch (Eq. 3) exceeds the migration cost (Eq. 4).

use crate::types::SchedulerView;
use loong_model::roofline::ParallelConfig;
use loong_simcore::ids::{InstanceId, RequestId};

/// The allocation step's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationDecision {
    /// The final instance set for the prefill phase.
    pub instances: Vec<InstanceId>,
    /// KV drains to perform before the prefill starts: each entry moves all
    /// KV of `request` off the claimed instance onto `targets`.
    pub drains: Vec<DrainDirective>,
}

/// A directive to move one request's KV off a claimed instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainDirective {
    /// The request whose KV must move.
    pub request: RequestId,
    /// The instance being vacated.
    pub from: InstanceId,
    /// Candidate destination instances (those with the most unused slots).
    pub targets: Vec<InstanceId>,
}

/// Runs the allocation step.
///
/// `admitted_lens` are the input lengths of the admitted requests;
/// `initial_instances` is `E_p` from the dispatch step.
pub fn allocate(
    view: &SchedulerView<'_>,
    admitted_lens: &[u64],
    initial_instances: &[InstanceId],
) -> AllocationDecision {
    let mut instances: Vec<InstanceId> = initial_instances.to_vec();
    let mut drains: Vec<DrainDirective> = Vec::new();
    if admitted_lens.is_empty() {
        return AllocationDecision { instances, drains };
    }

    // Candidates: idle instances not already allocated, sorted by used KV
    // slots ascending (e_min first).
    loop {
        let mut candidates: Vec<(InstanceId, u64)> = view
            .idle_instances
            .iter()
            .copied()
            .filter(|i| !instances.contains(i))
            .map(|i| (i, view.pool.instance(i).used()))
            .collect();
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by_key(|&(i, used)| (used, i.raw()));
        let (e_min, used_tokens) = candidates[0];

        // Migration targets: instances with the most unused KV slots that are
        // not part of the prefill allocation (so the drained KV does not eat
        // into the prefill's budget). Busy instances are valid targets — the
        // transfer overlaps with their computation on a separate stream.
        let mut targets: Vec<(InstanceId, u64)> = view
            .registry
            .all_ids()
            .into_iter()
            .filter(|i| *i != e_min && !instances.contains(i))
            .map(|i| (i, view.pool.instance(i).free()))
            .collect();
        targets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let target_capacity: u64 = targets.iter().map(|(_, f)| f).sum();
        if used_tokens > 0 && target_capacity < used_tokens {
            // The resident KV cannot be absorbed elsewhere; stop growing.
            break;
        }

        // Gain (Eq. 3): reduction in summed normalised input latency.
        let before = predict(view, admitted_lens, instances.len());
        let after = predict(view, admitted_lens, instances.len() + 1);
        let gain: f64 = admitted_lens
            .iter()
            .map(|&len| (before - after).max(0.0) / len.max(1) as f64)
            .sum();

        // Cost (Eq. 4): migration volume over the average link bandwidth,
        // normalised the same way.
        let volume_bytes = used_tokens as f64 * view.cost_model.model.kv_bytes_per_token();
        let link = view.registry.link_between(&{
            let mut v = vec![e_min];
            v.extend(targets.iter().map(|(i, _)| *i));
            v
        });
        let migration_time = if used_tokens == 0 {
            0.0
        } else {
            volume_bytes / link.bandwidth
        };
        let cost: f64 = admitted_lens
            .iter()
            .map(|&len| migration_time / len.max(1) as f64)
            .sum();

        if gain <= cost {
            break;
        }

        // Claim e_min: emit drains for every resident request. Residents
        // come out of a hash map, so sort them to keep runs reproducible.
        let target_ids: Vec<InstanceId> = targets.iter().map(|(i, _)| *i).collect();
        let mut resident: Vec<(RequestId, u64)> = view.pool.instance(e_min).residents().collect();
        resident.sort_by_key(|&(req, _)| req);
        for (req, tokens) in resident {
            if tokens > 0 {
                drains.push(DrainDirective {
                    request: req,
                    from: e_min,
                    targets: target_ids.clone(),
                });
            }
        }
        instances.push(e_min);
    }

    AllocationDecision { instances, drains }
}

/// Predicted prefill time of the batch on `n` instances.
fn predict(view: &SchedulerView<'_>, lens: &[u64], n: usize) -> f64 {
    let parallel = ParallelConfig::new(view.registry.tp(), n.max(1));
    let ids: Vec<InstanceId> = view.registry.all_ids().into_iter().take(n.max(1)).collect();
    let link = view.registry.link_between(&ids);
    view.sib.predict_prefill(lens, parallel, || {
        view.cost_model.prefill_cost(lens, parallel, link).total()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PendingRequest;
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
        pending: Vec<PendingRequest>,
    }

    fn fixture() -> Fixture {
        Fixture {
            registry: InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2),
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool: UnifiedKvPool::new(4, 500_000),
            pending: vec![],
        }
    }

    fn view<'a>(f: &'a Fixture, idle: &'a [InstanceId]) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending: &f.pending,
            decoding: &[],
            swapped: &[],
            idle_instances: idle,
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    #[test]
    fn empty_batch_keeps_initial_allocation() {
        let f = fixture();
        let idle = f.registry.all_ids();
        let v = view(&f, &idle);
        let a = allocate(&v, &[], &[InstanceId(0)]);
        assert_eq!(a.instances, vec![InstanceId(0)]);
        assert!(a.drains.is_empty());
    }

    #[test]
    fn grows_onto_empty_idle_instances_for_long_prefill() {
        // A 200K-token prefill benefits hugely from more instances and the
        // candidate instances hold no KV, so claiming them is free.
        let f = fixture();
        let idle = f.registry.all_ids();
        let v = view(&f, &idle);
        let a = allocate(&v, &[200_000], &[InstanceId(0)]);
        assert_eq!(a.instances.len(), 4, "should claim all idle instances");
        assert!(a.drains.is_empty());
    }

    #[test]
    fn does_not_claim_instances_with_heavy_kv_for_short_prefill() {
        // The candidate instance hosts a lot of KV; a short prefill's gain
        // cannot outweigh the migration cost.
        let mut f = fixture();
        f.pool
            .append(RequestId(50), InstanceId(1), 400_000)
            .expect("room");
        f.pool
            .append(RequestId(51), InstanceId(2), 400_000)
            .expect("room");
        f.pool
            .append(RequestId(52), InstanceId(3), 400_000)
            .expect("room");
        let idle = f.registry.all_ids();
        let v = view(&f, &idle);
        let a = allocate(&v, &[2_000], &[InstanceId(0)]);
        assert_eq!(a.instances, vec![InstanceId(0)]);
        assert!(a.drains.is_empty());
    }

    #[test]
    fn claims_lightly_loaded_instance_with_drain_for_long_prefill() {
        // Instance 1 holds a small amount of decode KV; a very long prefill
        // gains more from the extra instance than the tiny migration costs.
        let mut f = fixture();
        f.pool
            .append(RequestId(50), InstanceId(1), 1_000)
            .expect("room");
        let idle = vec![InstanceId(0), InstanceId(1)];
        let v = view(&f, &idle);
        let a = allocate(&v, &[400_000], &[InstanceId(0)]);
        assert!(
            a.instances.contains(&InstanceId(1)),
            "should claim the lightly loaded instance"
        );
        assert_eq!(a.drains.len(), 1);
        assert_eq!(a.drains[0].request, RequestId(50));
        assert_eq!(a.drains[0].from, InstanceId(1));
        assert!(!a.drains[0].targets.is_empty());
    }
}
