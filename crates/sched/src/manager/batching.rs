//! Step 3 of the global manager: batching by dynamic programming (paper §5.3).
//!
//! Requests with similar lengths behave similarly and should be batched
//! together, and batches with more tokens deserve more instances. The
//! manager sorts the admitted requests by length (descending) and the
//! allocated instances by free KV slots (ascending), then solves
//!
//! ```text
//! f[i][k] = min over j<i, l<k, D(j..i) <= V(l..k) of  f[j][l] + T(R[j..i], E[l..k])
//! ```
//!
//! where `T` is the summed input latency of the batch `R[j..i]` running on
//! instances `E[l..k]`. Back-tracking the split points yields the batch /
//! parallel-group assignment. The paper notes the split points are monotone
//! (a quadrangle-inequality argument), allowing an `O((n+m)^2)` variant;
//! both the naive and the monotone-optimised DP are implemented and tested
//! against each other.

use crate::types::SchedulerView;
use loong_model::roofline::ParallelConfig;
use loong_simcore::ids::{InstanceId, RequestId};

/// One prefill batch produced by the DP: a set of requests bound to a
/// dedicated set of instances (its parallel group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefillBatchAssignment {
    /// Requests in the batch.
    pub requests: Vec<RequestId>,
    /// Instances forming the batch's parallel group.
    pub instances: Vec<InstanceId>,
}

/// Computes the batching plan for `admitted` requests over `instances`.
///
/// Requests that cannot be covered (because the instances' free KV slots are
/// insufficient even for a singleton batch) are left out; the dispatch step
/// normally prevents this, but the DP degrades gracefully.
pub fn batch_requests(
    view: &SchedulerView<'_>,
    admitted: &[(RequestId, u64)],
    instances: &[InstanceId],
) -> Vec<PrefillBatchAssignment> {
    plan(view, admitted, instances, true)
}

/// The same DP without the monotone split-point optimisation; exposed for
/// differential testing and micro-benchmarks.
pub fn batch_requests_naive(
    view: &SchedulerView<'_>,
    admitted: &[(RequestId, u64)],
    instances: &[InstanceId],
) -> Vec<PrefillBatchAssignment> {
    plan(view, admitted, instances, false)
}

fn plan(
    view: &SchedulerView<'_>,
    admitted: &[(RequestId, u64)],
    instances: &[InstanceId],
    optimized: bool,
) -> Vec<PrefillBatchAssignment> {
    if admitted.is_empty() || instances.is_empty() {
        return Vec::new();
    }
    // Sort requests by input length descending (longest first), instances by
    // free KV slots ascending so long batches land on slot-rich suffixes.
    let mut reqs: Vec<(RequestId, u64)> = admitted.to_vec();
    reqs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut insts: Vec<(InstanceId, u64)> = instances
        .iter()
        .map(|&i| (i, view.pool.instance(i).free()))
        .collect();
    insts.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));

    let n = reqs.len();
    let m = insts.len();

    // Prefix sums of request tokens and instance free slots.
    let mut req_prefix = vec![0u64; n + 1];
    for i in 0..n {
        req_prefix[i + 1] = req_prefix[i] + reqs[i].1;
    }
    let mut slot_prefix = vec![0u64; m + 1];
    for k in 0..m {
        slot_prefix[k + 1] = slot_prefix[k] + insts[k].1;
    }

    let inf = f64::INFINITY;
    // f[i][k]: minimal summed input latency covering the first i requests
    // with the first k instances.
    let mut f = vec![vec![inf; m + 1]; n + 1];
    let mut split_req = vec![vec![0usize; m + 1]; n + 1];
    let mut split_inst = vec![vec![0usize; m + 1]; n + 1];
    for cell in f[0].iter_mut() {
        *cell = 0.0;
    }

    for i in 1..=n {
        for k in 1..=m {
            // Candidate ranges for the previous split point. With the
            // monotone optimisation, bound them by the neighbouring split
            // points already computed (Eq. 6 of the paper).
            let (j_lo, j_hi) = if optimized && k > 1 && f[i][k - 1].is_finite() {
                (split_req[i][k - 1], i)
            } else {
                (0, i)
            };
            let (l_lo, l_hi) = if optimized && i > 1 && f[i - 1][k].is_finite() {
                (split_inst[i - 1][k], k)
            } else {
                (0, k)
            };
            for j in j_lo..j_hi.min(i) {
                for l in l_lo..l_hi.min(k) {
                    if !f[j][l].is_finite() {
                        continue;
                    }
                    let tokens = req_prefix[i] - req_prefix[j];
                    let slots = slot_prefix[k] - slot_prefix[l];
                    if tokens > slots {
                        continue;
                    }
                    let lens: Vec<u64> = reqs[j..i].iter().map(|r| r.1).collect();
                    let t = batch_latency(view, &lens, k - l);
                    let candidate = f[j][l] + t;
                    if candidate < f[i][k] {
                        f[i][k] = candidate;
                        split_req[i][k] = j;
                        split_inst[i][k] = l;
                    }
                }
            }
        }
    }

    // Choose the best number of instances actually used.
    let mut best_k = 0;
    let mut best = inf;
    for (k, &cost) in f[n].iter().enumerate().skip(1) {
        if cost < best {
            best = cost;
            best_k = k;
        }
    }
    if !best.is_finite() {
        // Not even the full instance set can hold all requests; fall back to
        // one batch with as many requests as fit.
        return fallback_single_batch(&reqs, &insts);
    }

    // Back-track the split points.
    let mut batches = Vec::new();
    let mut i = n;
    let mut k = best_k;
    while i > 0 {
        let j = split_req[i][k];
        let l = split_inst[i][k];
        batches.push(PrefillBatchAssignment {
            requests: reqs[j..i].iter().map(|r| r.0).collect(),
            instances: insts[l..k].iter().map(|x| x.0).collect(),
        });
        i = j;
        k = l;
    }
    batches.reverse();
    batches
}

/// Summed input latency of one batch: every request in the batch finishes at
/// the same time, so the sum is `|batch| * T_iter`.
fn batch_latency(view: &SchedulerView<'_>, lens: &[u64], num_instances: usize) -> f64 {
    let parallel = ParallelConfig::new(view.registry.tp(), num_instances.max(1));
    let ids: Vec<InstanceId> = view
        .registry
        .all_ids()
        .into_iter()
        .take(num_instances.max(1))
        .collect();
    let link = view.registry.link_between(&ids);
    let t = view.sib.predict_prefill(lens, parallel, || {
        view.cost_model.prefill_cost(lens, parallel, link).total()
    });
    t * lens.len() as f64
}

/// Fallback when the DP finds no feasible cover: greedily pack requests into
/// one batch over all instances until the slots run out.
fn fallback_single_batch(
    reqs: &[(RequestId, u64)],
    insts: &[(InstanceId, u64)],
) -> Vec<PrefillBatchAssignment> {
    let total_slots: u64 = insts.iter().map(|(_, s)| s).sum();
    let mut used = 0u64;
    let mut requests = Vec::new();
    for &(id, len) in reqs {
        if used + len <= total_slots {
            used += len;
            requests.push(id);
        }
    }
    if requests.is_empty() {
        return Vec::new();
    }
    vec![PrefillBatchAssignment {
        requests,
        instances: insts.iter().map(|(i, _)| *i).collect(),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PendingRequest;
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
        pending: Vec<PendingRequest>,
    }

    fn fixture() -> Fixture {
        Fixture {
            registry: InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2),
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool: UnifiedKvPool::new(4, 500_000),
            pending: vec![],
        }
    }

    fn view<'a>(f: &'a Fixture) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending: &f.pending,
            decoding: &[],
            swapped: &[],
            idle_instances: &[],
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    fn ids(batches: &[PrefillBatchAssignment]) -> Vec<RequestId> {
        let mut v: Vec<RequestId> = batches.iter().flat_map(|b| b.requests.clone()).collect();
        v.sort();
        v
    }

    #[test]
    fn covers_every_request_exactly_once() {
        let f = fixture();
        let v = view(&f);
        let admitted: Vec<(RequestId, u64)> = vec![
            (RequestId(0), 150_000),
            (RequestId(1), 3_000),
            (RequestId(2), 2_000),
            (RequestId(3), 80_000),
        ];
        let instances = f.registry.all_ids();
        let batches = batch_requests(&v, &admitted, &instances);
        assert!(!batches.is_empty());
        assert_eq!(
            ids(&batches),
            vec![RequestId(0), RequestId(1), RequestId(2), RequestId(3)]
        );
        // Instance sets are disjoint.
        let mut all_insts: Vec<InstanceId> =
            batches.iter().flat_map(|b| b.instances.clone()).collect();
        let before = all_insts.len();
        all_insts.sort();
        all_insts.dedup();
        assert_eq!(before, all_insts.len(), "instance sets must be disjoint");
    }

    #[test]
    fn long_and_short_requests_split_into_different_groups() {
        // One 300K request plus a pile of 1K requests: the DP should not put
        // them in the same batch with the same DoP.
        let f = fixture();
        let v = view(&f);
        let mut admitted: Vec<(RequestId, u64)> = vec![(RequestId(0), 300_000)];
        admitted.extend((1..9).map(|i| (RequestId(i), 1_000)));
        let instances = f.registry.all_ids();
        let batches = batch_requests(&v, &admitted, &instances);
        assert!(
            batches.len() >= 2,
            "expected a split, got {} batch(es)",
            batches.len()
        );
        // The batch containing the long request should have more instances
        // than the batch of short requests.
        let long_batch = batches
            .iter()
            .find(|b| b.requests.contains(&RequestId(0)))
            .expect("present");
        let short_batch = batches
            .iter()
            .find(|b| !b.requests.contains(&RequestId(0)))
            .expect("present");
        assert!(long_batch.instances.len() >= short_batch.instances.len());
    }

    #[test]
    fn optimized_and_naive_dp_agree_on_cost() {
        let f = fixture();
        let v = view(&f);
        let admitted: Vec<(RequestId, u64)> = vec![
            (RequestId(0), 200_000),
            (RequestId(1), 120_000),
            (RequestId(2), 40_000),
            (RequestId(3), 9_000),
            (RequestId(4), 1_000),
            (RequestId(5), 500),
        ];
        let instances = f.registry.all_ids();
        let a = batch_requests(&v, &admitted, &instances);
        let b = batch_requests_naive(&v, &admitted, &instances);
        // Both must cover all requests; the exact split may differ only if
        // costs tie, so compare the number of requests covered and total
        // instances used.
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn respects_kv_capacity_constraint() {
        let mut f = fixture();
        f.pool = UnifiedKvPool::with_capacities(&[10_000, 10_000, 10_000, 500_000]);
        let v = view(&f);
        // A 400K request only fits on the slot-rich instance(s).
        let admitted = vec![(RequestId(0), 400_000)];
        let instances = f.registry.all_ids();
        let batches = batch_requests(&v, &admitted, &instances);
        assert_eq!(batches.len(), 1);
        assert!(batches[0].instances.contains(&InstanceId(3)));
    }

    #[test]
    fn empty_inputs_produce_empty_plan() {
        let f = fixture();
        let v = view(&f);
        assert!(batch_requests(&v, &[], &f.registry.all_ids()).is_empty());
        assert!(batch_requests(&v, &[(RequestId(0), 10)], &[]).is_empty());
    }

    #[test]
    fn infeasible_cover_falls_back_to_partial_batch() {
        let mut f = fixture();
        f.pool = UnifiedKvPool::with_capacities(&[1_000, 1_000, 1_000, 1_000]);
        let v = view(&f);
        let admitted = vec![(RequestId(0), 3_000), (RequestId(1), 50_000)];
        let instances = f.registry.all_ids();
        let batches = batch_requests(&v, &admitted, &instances);
        // The 50K request cannot fit anywhere; the 3K one still gets served.
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].requests, vec![RequestId(0)]);
    }
}
