//! Step 4 of the global manager: elastic scaling plan generation (paper §5.4).
//!
//! Two kinds of plans are produced here:
//!
//! * **Proactive scale-down of prefill batches** — the decode phase scales
//!   poorly, so after its prefill every batch shrinks to the minimum number
//!   of instances whose free KV slots can hold the batch's tokens (plus the
//!   expected output growth). The shrink itself is free because it is folded
//!   into the prefill ring (§4.1).
//! * **Decode group formation and scale-up** — ready decode requests are
//!   grouped by the instances holding their KV; a group scales up (gaining
//!   fresh masters, no migration) when its KV pool is nearly full or its
//!   batch size crosses the compute-bound threshold.

use crate::types::{DecodingRequest, SchedulerView};
use loong_simcore::ids::{InstanceId, RequestId};

/// A planned decode iteration group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeGroupPlan {
    /// Instances forming the group (always a superset of the instances
    /// holding the member requests' KV).
    pub instances: Vec<InstanceId>,
    /// Master instances.
    pub masters: Vec<InstanceId>,
    /// Member requests.
    pub requests: Vec<RequestId>,
    /// Number of instances added by scale-up when forming this group.
    pub scaled_up_by: usize,
}

/// Chooses the retained (post-prefill) instances for a prefill batch: the
/// smallest subset of `batch_instances`, preferring instances with the most
/// free KV slots, whose combined free slots hold the batch tokens plus the
/// expected output growth.
pub fn plan_scale_down(
    view: &SchedulerView<'_>,
    batch_instances: &[InstanceId],
    batch_tokens: u64,
    expected_output_tokens: u64,
) -> Vec<InstanceId> {
    let needed = batch_tokens + expected_output_tokens;
    let mut ranked: Vec<(InstanceId, u64)> = batch_instances
        .iter()
        .map(|&i| (i, view.pool.instance(i).free()))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut retained = Vec::new();
    let mut covered = 0u64;
    for (inst, free) in ranked {
        retained.push(inst);
        covered += free;
        if covered >= needed {
            break;
        }
    }
    // Even if the whole batch set cannot cover the estimate, retain it all —
    // the prefill plan's own capacity check is the hard constraint.
    retained.sort();
    retained
}

/// Forms decode groups from the ready decode requests whose KV lives
/// entirely on `available` (idle, unclaimed) instances, and decides
/// per-group scale-up.
///
/// Returns the group plans plus the list of requests that could not be
/// grouped this round (their KV overlaps unavailable instances).
pub fn plan_decode_groups(
    view: &SchedulerView<'_>,
    available: &[InstanceId],
    enable_scale_up: bool,
) -> (Vec<DecodeGroupPlan>, Vec<RequestId>) {
    // Requests whose KV is fully on available instances can run; others must
    // wait for their instances to free up.
    let (ready, blocked): (Vec<&DecodingRequest>, Vec<&DecodingRequest>) = view
        .decoding
        .iter()
        .partition(|d| d.kv_instances.iter().all(|i| available.contains(i)));
    let blocked_ids = blocked.iter().map(|d| d.id).collect();
    if ready.is_empty() {
        return (Vec::new(), blocked_ids);
    }

    // Union requests into connected components over shared KV instances.
    let mut components: Vec<(Vec<InstanceId>, Vec<&DecodingRequest>)> = Vec::new();
    for req in ready {
        let mut merged_instances: Vec<InstanceId> = req.kv_instances.clone();
        let mut merged_requests = vec![req];
        // Pull in every existing component that shares an instance.
        let mut i = 0;
        while i < components.len() {
            let overlaps = components[i]
                .0
                .iter()
                .any(|inst| merged_instances.contains(inst));
            if overlaps {
                let (insts, reqs) = components.swap_remove(i);
                for inst in insts {
                    if !merged_instances.contains(&inst) {
                        merged_instances.push(inst);
                    }
                }
                merged_requests.extend(reqs);
            } else {
                i += 1;
            }
        }
        components.push((merged_instances, merged_requests));
    }

    // Track which available instances are already claimed by a component so
    // scale-up never double-books an instance.
    let mut claimed: Vec<InstanceId> = components
        .iter()
        .flat_map(|(insts, _)| insts.clone())
        .collect();

    let threshold = view
        .sib
        .decode_threshold(view.registry.tp())
        .unwrap_or_else(|| {
            // Context 0 = the pure-GEMM threshold: the classic §5.4 trigger.
            // The policy-aware form exists for experiments that want the
            // KV-stream term included; dense long contexts make it `None`
            // (never compute-bound), so the trigger conservatively keeps the
            // context-free bound here.
            view.cost_model
                .decode_compute_bound_batch_size_at_context(view.registry.tp(), 0)
                .expect("context-free decode threshold is always finite")
        });

    let mut plans = Vec::new();
    for (mut instances, requests) in components {
        instances.sort();
        let batch_size = requests.len();
        let mut scaled_up_by = 0usize;

        if enable_scale_up {
            // Memory trigger: the group needs at least one free slot per
            // request per iteration; keep a comfortable runway of 64
            // iterations so scale-up happens before the pool is exhausted.
            let runway_tokens = batch_size as u64 * 64;
            // Compute trigger: FFN work becomes the bottleneck once the
            // per-master batch exceeds the profiled threshold.
            let spare: Vec<InstanceId> = available
                .iter()
                .copied()
                .filter(|i| !claimed.contains(i))
                .collect();
            let mut spare_iter = spare.into_iter();
            loop {
                let free: u64 = view.free_slots_on(&instances);
                let memory_pressure = free < runway_tokens;
                let compute_pressure = batch_size > threshold * instances.len();
                if !memory_pressure && !compute_pressure {
                    break;
                }
                let Some(extra) = spare_iter.next() else {
                    break;
                };
                instances.push(extra);
                claimed.push(extra);
                scaled_up_by += 1;
            }
            instances.sort();
        }

        // Multi-master: every instance with at least one free slot can
        // absorb new KV; fall back to all instances if none has room (the
        // engine will surface the capacity error).
        let mut masters: Vec<InstanceId> = instances
            .iter()
            .copied()
            .filter(|&i| view.pool.instance(i).free() > 0)
            .collect();
        if masters.is_empty() {
            masters = instances.clone();
        }

        plans.push(DecodeGroupPlan {
            instances,
            masters,
            requests: requests.iter().map(|r| r.id).collect(),
            scaled_up_by,
        });
    }
    (plans, blocked_ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PendingRequest;
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::ids::RequestId;
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
        pending: Vec<PendingRequest>,
        decoding: Vec<DecodingRequest>,
    }

    fn fixture() -> Fixture {
        Fixture {
            registry: InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2),
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool: UnifiedKvPool::new(4, 500_000),
            pending: vec![],
            decoding: vec![],
        }
    }

    fn view<'a>(f: &'a Fixture, idle: &'a [InstanceId]) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending: &f.pending,
            decoding: &f.decoding,
            swapped: &[],
            idle_instances: idle,
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    fn decoding(id: u64, context: u64, kv: &[u64]) -> DecodingRequest {
        DecodingRequest {
            id: RequestId(id),
            context_len: context,
            generated: 1,
            decode_time_s: 0.0,
            kv_instances: kv.iter().map(|&i| InstanceId(i)).collect(),
        }
    }

    #[test]
    fn scale_down_picks_minimal_cover() {
        let f = fixture();
        let idle = f.registry.all_ids();
        let v = view(&f, &idle);
        // 300K tokens (plus small growth) fit on a single 500K-slot instance.
        let retained = plan_scale_down(&v, &idle, 300_000, 2_000);
        assert_eq!(retained.len(), 1);
        // 900K tokens need two instances.
        let retained = plan_scale_down(&v, &idle, 900_000, 0);
        assert_eq!(retained.len(), 2);
    }

    #[test]
    fn scale_down_never_exceeds_batch_instances() {
        let f = fixture();
        let idle = f.registry.all_ids();
        let v = view(&f, &idle);
        let retained = plan_scale_down(&v, &idle, 10_000_000, 0);
        assert_eq!(
            retained.len(),
            4,
            "cannot retain more instances than the batch used"
        );
    }

    #[test]
    fn decode_groups_merge_overlapping_requests() {
        let mut f = fixture();
        f.decoding = vec![
            decoding(0, 1_000, &[0]),
            decoding(1, 1_000, &[0, 1]),
            decoding(2, 1_000, &[2]),
        ];
        let idle = f.registry.all_ids();
        let v = view(&f, &idle);
        let (plans, blocked) = plan_decode_groups(&v, &idle, true);
        assert!(blocked.is_empty());
        assert_eq!(plans.len(), 2);
        let merged = plans
            .iter()
            .find(|p| p.requests.contains(&RequestId(0)))
            .expect("exists");
        assert!(merged.requests.contains(&RequestId(1)));
        assert!(
            merged.instances.contains(&InstanceId(0)) && merged.instances.contains(&InstanceId(1))
        );
    }

    #[test]
    fn blocked_requests_are_reported() {
        let mut f = fixture();
        f.decoding = vec![decoding(0, 1_000, &[0]), decoding(1, 1_000, &[3])];
        let idle = vec![InstanceId(0), InstanceId(1)];
        let v = view(&f, &idle);
        let (plans, blocked) = plan_decode_groups(&v, &idle, true);
        assert_eq!(plans.len(), 1);
        assert_eq!(blocked, vec![RequestId(1)]);
    }

    #[test]
    fn memory_pressure_triggers_scale_up() {
        let mut f = fixture();
        // Instance 0 is nearly full; the decode group should pull in another
        // available instance.
        f.pool = UnifiedKvPool::with_capacities(&[1_010, 500_000, 500_000, 500_000]);
        f.pool
            .append(RequestId(0), InstanceId(0), 1_000)
            .expect("room");
        f.decoding = vec![decoding(0, 1_000, &[0])];
        let idle = f.registry.all_ids();
        let v = view(&f, &idle);
        let (plans, _) = plan_decode_groups(&v, &idle, true);
        assert_eq!(plans.len(), 1);
        assert!(plans[0].scaled_up_by >= 1, "expected a scale-up");
        assert!(plans[0].instances.len() >= 2);

        // With scale-up disabled (the Figure 13a ablation) the group stays
        // at one instance.
        let (plans, _) = plan_decode_groups(&v, &idle, false);
        assert_eq!(plans[0].instances.len(), 1);
        assert_eq!(plans[0].scaled_up_by, 0);
    }

    #[test]
    fn compute_pressure_triggers_scale_up() {
        let mut f = fixture();
        // A very large decode batch resident on one instance crosses the
        // compute-bound threshold.
        let threshold = f.cost_model.decode_compute_bound_batch_size(2);
        for i in 0..(threshold as u64 * 2) {
            f.pool
                .append(RequestId(i), InstanceId(0), 10)
                .expect("room");
            f.decoding.push(decoding(i, 10, &[0]));
        }
        let idle = f.registry.all_ids();
        let v = view(&f, &idle);
        let (plans, _) = plan_decode_groups(&v, &idle, true);
        assert_eq!(plans.len(), 1);
        assert!(plans[0].scaled_up_by >= 1);
    }

    #[test]
    fn full_masters_are_excluded() {
        let mut f = fixture();
        f.pool = UnifiedKvPool::with_capacities(&[1_000, 500_000]);
        f.pool
            .append(RequestId(0), InstanceId(0), 1_000)
            .expect("room");
        f.pool
            .append(RequestId(1), InstanceId(1), 1_000)
            .expect("room");
        f.decoding = vec![decoding(0, 1_000, &[0]), decoding(1, 1_000, &[1])];
        let idle = vec![InstanceId(0), InstanceId(1)];
        let v = view(&f, &idle);
        let (plans, _) = plan_decode_groups(&v, &idle, false);
        for plan in plans {
            if plan.instances.contains(&InstanceId(0)) && plan.instances.len() == 1 {
                // Instance 0 is full, but it is the only instance, so it must
                // remain a master (the engine will surface the error).
                assert_eq!(plan.masters, vec![InstanceId(0)]);
            }
            if plan.instances.contains(&InstanceId(1)) {
                assert!(plan.masters.contains(&InstanceId(1)));
            }
        }
    }
}
