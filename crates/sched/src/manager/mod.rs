//! The LoongServe global manager (paper §5).
//!
//! The manager decomposes each scheduling decision into four polynomial-time
//! steps — [`dispatch`]ing, elastic instance [`allocate`]ion, DP
//! [`batching`], and elastic [`scaling`] plan generation — and combines
//! their outputs into the action list the serving engine executes.

pub mod allocate;
pub mod batching;
pub mod dispatch;
pub mod scaling;

use crate::pressure::{pressure_actions, PressureConfig};
use crate::types::{
    Action, PendingRequest, ScalingEvent, ScalingEventKind, Scheduler, SchedulerView,
};
use loong_simcore::ids::{InstanceId, RequestId};
use serde::{Deserialize, Serialize};

/// Tunables of the LoongServe global manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoongServeConfig {
    /// Whether decode groups may scale up (disabled for the Figure 13a
    /// ablation).
    pub enable_scale_up: bool,
    /// Whether prefill batches proactively scale down after the prefill
    /// phase. Disabling keeps every batch at its prefill DoP.
    pub enable_proactive_scale_down: bool,
}

impl Default for LoongServeConfig {
    fn default() -> Self {
        LoongServeConfig {
            enable_scale_up: true,
            enable_proactive_scale_down: true,
        }
    }
}

/// The LoongServe scheduling policy.
#[derive(Debug, Clone)]
pub struct LoongServeScheduler {
    config: LoongServeConfig,
    events: Vec<ScalingEvent>,
    /// Memory-pressure handling. `None` (the default) keeps the
    /// conservative full-output reservation in dispatching and never emits
    /// pressure actions — the golden-pinned behaviour.
    pressure: Option<PressureConfig>,
}

impl LoongServeScheduler {
    /// Creates a manager with the default configuration.
    pub fn new() -> Self {
        Self::with_config(LoongServeConfig::default())
    }

    /// Creates a manager with an explicit configuration.
    pub fn with_config(config: LoongServeConfig) -> Self {
        LoongServeScheduler {
            config,
            events: Vec::new(),
            pressure: None,
        }
    }

    /// Enables memory-pressure handling: the dispatcher reserves only the
    /// configured fraction of each declared output bound (optimistic
    /// admission), victims are evicted per the config's policy above the
    /// high watermark, and swapped requests re-admit below the low one.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation.
    pub fn with_pressure(mut self, pressure: PressureConfig) -> Self {
        pressure.validate().expect("valid pressure config");
        self.pressure = Some(pressure);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> LoongServeConfig {
        self.config
    }

    fn find_pending<'a>(view: &'a SchedulerView<'_>, id: RequestId) -> Option<&'a PendingRequest> {
        view.pending.iter().find(|p| p.id == id)
    }
}

impl Default for LoongServeScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for LoongServeScheduler {
    fn name(&self) -> String {
        "LoongServe".to_string()
    }

    fn schedule(&mut self, view: &SchedulerView<'_>) -> Vec<Action> {
        let mut actions: Vec<Action> = Vec::new();

        // Reject requests that can never be served even by the whole pool.
        for p in view.pending {
            if p.input_len + p.max_output_len > view.pool.total_capacity() {
                actions.push(Action::Reject {
                    request: p.id,
                    reason: format!(
                        "request needs {} KV slots but the cluster only has {}",
                        p.input_len + p.max_output_len,
                        view.pool.total_capacity()
                    ),
                });
            }
        }

        // Memory-pressure handling (when enabled): evict victims above the
        // high watermark, re-admit swapped requests below the low one, and
        // pause dispatching while pressured. With the tier disabled this
        // block is skipped and scheduling is bit-for-bit the golden-pinned
        // manager.
        let mut reserve_factor = 1.0;
        let mut admission_budget = u64::MAX;
        let mut admit = true;
        if let Some(cfg) = self.pressure {
            actions.extend(pressure_actions(view, &cfg));
            reserve_factor = cfg.output_reserve_factor;
            admission_budget = cfg.admission_budget(view);
            admit = !cfg.admission_paused(view);
            // An empty pool admits at least the FCFS head on physical
            // capacity alone: the watermark budget would otherwise starve
            // any request larger than the low-watermark band forever.
            // "Empty" means no *active* KV — reclaimable retained prefixes
            // do not block the bypass.
            if view.pool.active_used() == 0 {
                if let Some(head) = view.pending.first() {
                    admission_budget = admission_budget
                        .max(cfg.admission_reserve(head.input_len, head.max_output_len));
                }
            }
        }

        // Step 1: dispatching.
        let dispatch_decision = if admit {
            dispatch::dispatch_with_reserve(view, reserve_factor, admission_budget)
        } else {
            dispatch::DispatchDecision {
                admitted: Vec::new(),
                candidate_instances: Vec::new(),
                delayed_decodes: Vec::new(),
            }
        };
        let admitted_info: Vec<(RequestId, u64, u64)> = dispatch_decision
            .admitted
            .iter()
            .filter_map(|&id| {
                Self::find_pending(view, id).map(|p| (id, p.input_len, p.max_output_len))
            })
            .collect();
        let admitted_lens: Vec<u64> = admitted_info.iter().map(|&(_, len, _)| len).collect();

        // Step 2: elastic instance allocation.
        let allocation =
            allocate::allocate(view, &admitted_lens, &dispatch_decision.candidate_instances);
        let mut prefill_claimed: Vec<InstanceId> = Vec::new();
        let mut migration_touched: Vec<InstanceId> = Vec::new();
        for drain in &allocation.drains {
            // The drained request keeps whatever KV it already has elsewhere
            // and the evicted span lands on the drain targets.
            let mut final_targets: Vec<InstanceId> = view
                .pool
                .locations_of(drain.request)
                .into_iter()
                .map(|(i, _)| i)
                .filter(|&i| i != drain.from)
                .collect();
            for &t in &drain.targets {
                if !final_targets.contains(&t) {
                    final_targets.push(t);
                }
            }
            migration_touched.push(drain.from);
            migration_touched.extend(final_targets.iter().copied());
            actions.push(Action::Migrate {
                request: drain.request,
                targets: final_targets,
            });
        }

        // Step 3: batching.
        let admitted_pairs: Vec<(RequestId, u64)> = admitted_info
            .iter()
            .map(|&(id, len, _)| (id, len))
            .collect();
        let batches = batching::batch_requests(view, &admitted_pairs, &allocation.instances);

        // Step 4a: proactive scale-down plans for each prefill batch.
        for batch in &batches {
            let tokens: u64 = batch
                .requests
                .iter()
                .filter_map(|&id| {
                    admitted_pairs
                        .iter()
                        .find(|(r, _)| *r == id)
                        .map(|&(_, l)| l)
                })
                .sum();
            let expected_output: u64 = batch
                .requests
                .iter()
                .filter_map(|&id| {
                    admitted_info
                        .iter()
                        .find(|(r, _, _)| *r == id)
                        .map(|&(_, _, m)| m)
                })
                .sum();
            let retain_on = if self.config.enable_proactive_scale_down {
                scaling::plan_scale_down(view, &batch.instances, tokens, expected_output)
            } else {
                batch.instances.clone()
            };
            if retain_on.len() < batch.instances.len() {
                self.events.push(ScalingEvent {
                    at: view.now,
                    kind: ScalingEventKind::ProactiveScaleDown,
                    delta_instances: retain_on.len() as i64 - batch.instances.len() as i64,
                });
            }
            prefill_claimed.extend(batch.instances.iter().copied());
            actions.push(Action::Prefill {
                instances: batch.instances.clone(),
                requests: batch.requests.clone(),
                retain_on,
            });
        }

        // Step 4b: decode group formation on whatever is left.
        let available: Vec<InstanceId> = view
            .idle_instances
            .iter()
            .copied()
            .filter(|i| !prefill_claimed.contains(i) && !migration_touched.contains(i))
            .collect();
        let (decode_plans, _blocked) =
            scaling::plan_decode_groups(view, &available, self.config.enable_scale_up);
        for plan in decode_plans {
            if plan.scaled_up_by > 0 {
                self.events.push(ScalingEvent {
                    at: view.now,
                    kind: ScalingEventKind::ScaleUp,
                    delta_instances: plan.scaled_up_by as i64,
                });
            }
            actions.push(Action::Decode {
                instances: plan.instances,
                masters: plan.masters,
                requests: plan.requests,
            });
        }

        actions
    }

    fn scaling_events(&self) -> &[ScalingEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DecodingRequest;
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
        pending: Vec<PendingRequest>,
        decoding: Vec<DecodingRequest>,
        idle: Vec<InstanceId>,
    }

    fn fixture() -> Fixture {
        let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
        let idle = registry.all_ids();
        Fixture {
            registry,
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool: UnifiedKvPool::new(4, 500_000),
            pending: vec![],
            decoding: vec![],
            idle,
        }
    }

    fn view<'a>(f: &'a Fixture) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending: &f.pending,
            decoding: &f.decoding,
            swapped: &[],
            idle_instances: &f.idle,
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    fn pending(id: u64, len: u64) -> PendingRequest {
        PendingRequest {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            input_len: len,
            prefilled_len: 0,
            max_output_len: 256,
        }
    }

    #[test]
    fn long_prefill_uses_many_instances_and_scales_down() {
        let mut f = fixture();
        f.pending = vec![pending(0, 300_000)];
        let mut sched = LoongServeScheduler::new();
        let actions = sched.schedule(&view(&f));
        let prefill = actions
            .iter()
            .find_map(|a| match a {
                Action::Prefill {
                    instances,
                    requests,
                    retain_on,
                } => Some((instances, requests, retain_on)),
                _ => None,
            })
            .expect("a prefill action");
        assert_eq!(prefill.1, &vec![RequestId(0)]);
        assert!(
            prefill.0.len() >= 2,
            "long prefill should use several instances"
        );
        assert!(
            prefill.2.len() < prefill.0.len(),
            "should proactively scale down"
        );
        assert!(sched
            .scaling_events()
            .iter()
            .any(|e| e.kind == ScalingEventKind::ProactiveScaleDown));
    }

    #[test]
    fn decode_batches_formed_for_ready_requests() {
        let mut f = fixture();
        for i in 0..4u64 {
            f.pool
                .append(RequestId(i), InstanceId(i % 2), 1_000)
                .expect("room");
            f.decoding.push(DecodingRequest {
                id: RequestId(i),
                context_len: 1_000,
                generated: 1,
                decode_time_s: 0.0,
                kv_instances: vec![InstanceId(i % 2)],
            });
        }
        let mut sched = LoongServeScheduler::new();
        let actions = sched.schedule(&view(&f));
        let decode_requests: Vec<RequestId> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Decode { requests, .. } => Some(requests.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(decode_requests.len(), 4, "all ready decodes scheduled");
    }

    #[test]
    fn prefill_and_decode_do_not_share_instances() {
        let mut f = fixture();
        f.pending = vec![pending(10, 150_000)];
        for i in 0..2u64 {
            f.pool
                .append(RequestId(i), InstanceId(i), 2_000)
                .expect("room");
            f.decoding.push(DecodingRequest {
                id: RequestId(i),
                context_len: 2_000,
                generated: 4,
                decode_time_s: 0.1,
                kv_instances: vec![InstanceId(i)],
            });
        }
        let mut sched = LoongServeScheduler::new();
        let actions = sched.schedule(&view(&f));
        let mut prefill_instances: Vec<InstanceId> = Vec::new();
        let mut decode_instances: Vec<InstanceId> = Vec::new();
        for a in &actions {
            match a {
                Action::Prefill { instances, .. } => {
                    prefill_instances.extend(instances.iter().copied())
                }
                Action::Decode { instances, .. } => {
                    decode_instances.extend(instances.iter().copied())
                }
                _ => {}
            }
        }
        for i in &prefill_instances {
            assert!(!decode_instances.contains(i), "instance {i} double-booked");
        }
    }

    #[test]
    fn oversized_request_is_rejected() {
        let mut f = fixture();
        f.pending = vec![pending(0, 3_000_000)];
        let mut sched = LoongServeScheduler::new();
        let actions = sched.schedule(&view(&f));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Reject { request, .. } if *request == RequestId(0))));
    }

    #[test]
    fn disabled_scale_up_never_records_scale_up_events() {
        let mut f = fixture();
        // Nearly full instance hosting a decode request would normally
        // trigger a scale-up.
        f.pool = UnifiedKvPool::with_capacities(&[1_010, 500_000, 500_000, 500_000]);
        f.pool
            .append(RequestId(0), InstanceId(0), 1_000)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(0),
            context_len: 1_000,
            generated: 1,
            decode_time_s: 0.0,
            kv_instances: vec![InstanceId(0)],
        }];
        let mut without = LoongServeScheduler::with_config(LoongServeConfig {
            enable_scale_up: false,
            enable_proactive_scale_down: true,
        });
        let _ = without.schedule(&view(&f));
        assert!(without
            .scaling_events()
            .iter()
            .all(|e| e.kind != ScalingEventKind::ScaleUp));

        let mut with = LoongServeScheduler::new();
        let _ = with.schedule(&view(&f));
        assert!(with
            .scaling_events()
            .iter()
            .any(|e| e.kind == ScalingEventKind::ScaleUp));
    }

    #[test]
    fn idle_system_produces_no_actions() {
        let f = fixture();
        let mut sched = LoongServeScheduler::new();
        assert!(sched.schedule(&view(&f)).is_empty());
        assert_eq!(sched.name(), "LoongServe");
    }
}
