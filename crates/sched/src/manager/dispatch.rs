//! Step 1 of the global manager: dispatching (paper §5.1).
//!
//! The dispatcher chooses which pending requests start their prefill phase
//! this iteration. It scans the pending queue in FCFS order under two
//! constraints:
//!
//! * **GPU memory** — a request is only admitted if the candidate instances
//!   have enough unused KV slots for its prompt *and* its declared maximum
//!   output, so the request will not have to be evicted and recomputed
//!   later.
//! * **GPU computing** — admission stops at the "tipping point" where the
//!   prefill batch becomes compute-bound; beyond it, adding requests only
//!   lengthens the iteration without improving efficiency.
//!
//! When admitting more requests would require borrowing KV slots from
//! instances that currently host ready decode batches (thereby delaying
//! them), the dispatcher weighs the gain for the new requests (Eq. 2)
//! against the cost inflicted on the delayed decode requests (Eq. 1) and
//! only borrows when the gain wins.

use crate::types::{PendingRequest, SchedulerView};
use loong_model::roofline::ParallelConfig;
use loong_simcore::ids::{InstanceId, RequestId};

/// The dispatcher's output: which requests enter the prefill phase and which
/// instances they may use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchDecision {
    /// Requests admitted to the prefill phase, in FCFS order.
    pub admitted: Vec<RequestId>,
    /// Instances the prefill phase may use (`E_p`): purely idle instances
    /// plus any decode-hosting instances whose borrowing passed the
    /// gain/cost test.
    pub candidate_instances: Vec<InstanceId>,
    /// Decode requests that will be delayed because their host instances
    /// were borrowed.
    pub delayed_decodes: Vec<RequestId>,
}

/// Safety margin multiplied into the declared output bound when reserving KV
/// slots for future growth. 1.0 reserves the full declared bound.
const OUTPUT_RESERVE_FACTOR: f64 = 1.0;

/// Runs the dispatching step with the conservative full-output reservation
/// (no admitted request can ever be evicted).
pub fn dispatch(view: &SchedulerView<'_>) -> DispatchDecision {
    dispatch_with_reserve(view, OUTPUT_RESERVE_FACTOR, u64::MAX)
}

/// Runs the dispatching step reserving only `output_reserve_factor` of each
/// request's declared output bound (plus at least one slot). Factors below
/// 1.0 admit optimistically — decode growth can then exhaust the pool, which
/// is exactly the regime the memory-pressure policies handle.
/// `admission_budget` caps the total slots this round may commit (pressure
/// watermark headroom); `u64::MAX` means uncapped.
pub fn dispatch_with_reserve(
    view: &SchedulerView<'_>,
    output_reserve_factor: f64,
    admission_budget: u64,
) -> DispatchDecision {
    // Partition the idle instances into "freely usable" and
    // "decode-hosting". An instance whose resident decode work is light —
    // short contexts that a prefill iteration delays by at most a few tens
    // of milliseconds — counts as freely usable; only instances carrying a
    // substantial decode working set are protected behind the Eq. 1/2
    // gain-versus-cost test, because preempting them (in memory or in time)
    // is what actually hurts.
    let mut purely_idle: Vec<InstanceId> = Vec::new();
    let mut decode_hosting: Vec<InstanceId> = Vec::new();
    for &inst in view.idle_instances {
        let residents: Vec<&crate::types::DecodingRequest> = view
            .decoding
            .iter()
            .filter(|d| d.kv_instances.contains(&inst))
            .collect();
        let resident_tokens: u64 = residents.iter().map(|d| d.context_len).sum();
        let heavy =
            resident_tokens > view.pool.instance(inst).capacity() / 10 || residents.len() > 64;
        if heavy {
            decode_hosting.push(inst);
        } else {
            purely_idle.push(inst);
        }
    }

    let mut candidate_instances = purely_idle;
    let mut admitted: Vec<RequestId> = Vec::new();
    let mut admitted_lens: Vec<u64> = Vec::new();
    let mut delayed_decodes: Vec<RequestId> = Vec::new();

    if view.pending.is_empty() {
        return DispatchDecision {
            admitted,
            candidate_instances,
            delayed_decodes,
        };
    }

    // Reclaimable retained prefixes count as free for admission: the
    // engine evicts them before committing the prefill placement (and the
    // pending view's suffix lengths already price any prefix the request
    // itself will adopt). Zero extra slots when the prefix tier is off.
    let mut free_slots = (view.free_slots_on(&candidate_instances)
        + view.reclaimable_slots_on(&candidate_instances))
    .min(admission_budget);
    let mut budget_left = admission_budget;
    let saturation = saturation_tokens(view, candidate_instances.len().max(1));
    let mut remaining: Vec<&PendingRequest> = view.pending.iter().collect();

    // First pass: admit onto purely idle instances.
    remaining.retain(|req| {
        if admitted_lens.iter().sum::<u64>() >= saturation {
            return true;
        }
        let reserve = reserved_slots(req, output_reserve_factor);
        if reserve <= free_slots && !candidate_instances.is_empty() {
            free_slots -= reserve;
            budget_left -= reserve;
            admitted.push(req.id);
            admitted_lens.push(req.input_len);
            false
        } else {
            true
        }
    });

    // Second pass: consider borrowing decode-hosting instances for the
    // requests that did not fit, one hosting set at a time (Eq. 1 vs Eq. 2).
    if !remaining.is_empty() && !decode_hosting.is_empty() {
        // Group the hosting instances by the decode requests resident on
        // them so a borrow delays a well-defined set of decodes.
        let mut groups = group_hosting_instances(view, &decode_hosting);
        // Borrow the least-loaded hosting sets first.
        groups.sort_by_key(|g| g.resident_tokens);
        for group in groups {
            if remaining.is_empty() || admitted_lens.iter().sum::<u64>() >= saturation {
                break;
            }
            let extra_free: u64 =
                view.free_slots_on(&group.instances) + view.reclaimable_slots_on(&group.instances);
            // Which of the remaining requests could be admitted using this
            // group's spare slots (on top of any slots still free), within
            // what is left of the admission budget?
            let mut extra_budget = (free_slots + extra_free).min(budget_left);
            let mut extra_requests: Vec<&PendingRequest> = Vec::new();
            let mut extra_tokens = 0u64;
            for req in &remaining {
                if admitted_lens.iter().sum::<u64>() + extra_tokens >= saturation {
                    break;
                }
                let reserve = reserved_slots(req, output_reserve_factor);
                if reserve <= extra_budget {
                    extra_budget -= reserve;
                    extra_tokens += req.input_len;
                    extra_requests.push(req);
                }
            }
            if extra_requests.is_empty() {
                continue;
            }

            // Cost (Eq. 1): the prefill iteration time of the enlarged batch
            // divided by each delayed request's generated output length.
            let mut all_lens: Vec<u64> = admitted_lens.clone();
            all_lens.extend(extra_requests.iter().map(|r| r.input_len));
            let enlarged_instances = candidate_instances.len() + group.instances.len();
            let iter_time = predict_prefill(view, &all_lens, enlarged_instances.max(1));
            let cost: f64 = group
                .residents
                .iter()
                .map(|&rid| {
                    let generated = view
                        .decoding
                        .iter()
                        .find(|d| d.id == rid)
                        .map(|d| d.generated.max(1))
                        .unwrap_or(1);
                    iter_time / generated as f64
                })
                .sum();

            // Gain (Eq. 2): how much waiting the extra requests avoid,
            // normalised by their input lengths. Before any request has
            // finished, `AvgLat_d` is unknown; fall back to an optimistic
            // estimate (twice the elapsed decode time of the running batch
            // plus a floor) so the cold-start phase does not starve prefills.
            let min_exec: f64 = group
                .residents
                .iter()
                .filter_map(|&rid| view.decoding.iter().find(|d| d.id == rid))
                .map(|d| d.decode_time_s)
                .fold(f64::INFINITY, f64::min);
            let min_exec = if min_exec.is_finite() { min_exec } else { 0.0 };
            let avg_decode_latency = if view.avg_decode_latency_s > 0.0 {
                view.avg_decode_latency_s
            } else {
                let mean_elapsed = if view.decoding.is_empty() {
                    0.0
                } else {
                    view.decoding.iter().map(|d| d.decode_time_s).sum::<f64>()
                        / view.decoding.len() as f64
                };
                2.0 * mean_elapsed + 0.5
            };
            let gain: f64 = extra_requests
                .iter()
                .map(|r| (avg_decode_latency - min_exec).max(0.0) / r.input_len.max(1) as f64)
                .sum();

            if gain > cost {
                // Borrow this hosting set.
                free_slots += extra_free;
                for req in &extra_requests {
                    let reserve = reserved_slots(req, output_reserve_factor);
                    free_slots = free_slots.saturating_sub(reserve);
                    budget_left = budget_left.saturating_sub(reserve);
                    admitted.push(req.id);
                    admitted_lens.push(req.input_len);
                }
                let admitted_ids: Vec<RequestId> = extra_requests.iter().map(|r| r.id).collect();
                remaining.retain(|r| !admitted_ids.contains(&r.id));
                candidate_instances.extend(group.instances.iter().copied());
                delayed_decodes.extend(group.residents.iter().copied());
            }
        }
    }

    DispatchDecision {
        admitted,
        candidate_instances,
        delayed_decodes,
    }
}

/// KV slots to reserve for a request: its prompt plus `factor` of its
/// declared output bound (with at least one slot for the first generated
/// token). At factor 1.0 the dispatcher avoids admissions that could force
/// future evictions, §5.1; below 1.0 eviction becomes the pressure
/// policies' problem.
fn reserved_slots(req: &PendingRequest, factor: f64) -> u64 {
    req.input_len + ((req.max_output_len as f64 * factor).ceil() as u64).max(1)
}

/// The prefill tipping point in tokens for a group of `instances` instances.
fn saturation_tokens(view: &SchedulerView<'_>, instances: usize) -> u64 {
    let parallel = ParallelConfig::new(view.registry.tp(), instances.max(1));
    view.sib
        .saturation_tokens(parallel)
        // Fresh prompts attend over no prior prefix, so the dispatcher asks
        // the policy-aware roofline at processed context 0 (any policy's
        // attention term vanishes there; sparsity shows up through the SIB
        // profile and the per-batch cost predictions instead).
        .unwrap_or_else(|| {
            view.cost_model
                .prefill_saturation_tokens_at_context(parallel, 0)
        })
        // The tipping point is a lower bound on useful batch size; always
        // allow at least one request through.
        .max(1)
}

/// Predicted prefill iteration time via the SIB's fitted analytical model,
/// falling back to the roofline model.
fn predict_prefill(view: &SchedulerView<'_>, lens: &[u64], instances: usize) -> f64 {
    let parallel = ParallelConfig::new(view.registry.tp(), instances.max(1));
    let link = view.registry.link_between(
        &view
            .registry
            .all_ids()
            .into_iter()
            .take(instances.max(1))
            .collect::<Vec<_>>(),
    );
    view.sib.predict_prefill(lens, parallel, || {
        view.cost_model.prefill_cost(lens, parallel, link).total()
    })
}

/// A set of idle instances hosting the KV of a common set of ready decode
/// requests.
struct HostingGroup {
    instances: Vec<InstanceId>,
    residents: Vec<RequestId>,
    resident_tokens: u64,
}

/// Groups decode-hosting idle instances into connected components: two
/// instances belong to the same group if some ready decode request has KV on
/// both.
fn group_hosting_instances(view: &SchedulerView<'_>, hosting: &[InstanceId]) -> Vec<HostingGroup> {
    let mut groups: Vec<HostingGroup> = Vec::new();
    let mut assigned: Vec<InstanceId> = Vec::new();
    for &start in hosting {
        if assigned.contains(&start) {
            continue;
        }
        // Flood fill over the "shares a request" relation.
        let mut instances = vec![start];
        let mut residents: Vec<RequestId> = Vec::new();
        let mut changed = true;
        while changed {
            changed = false;
            for d in view.decoding {
                let touches = d.kv_instances.iter().any(|i| instances.contains(i));
                if touches {
                    if !residents.contains(&d.id) {
                        residents.push(d.id);
                        changed = true;
                    }
                    for &i in &d.kv_instances {
                        if hosting.contains(&i) && !instances.contains(&i) {
                            instances.push(i);
                            changed = true;
                        }
                    }
                }
            }
        }
        let resident_tokens = residents
            .iter()
            .filter_map(|&rid| view.decoding.iter().find(|d| d.id == rid))
            .map(|d| d.context_len)
            .sum();
        assigned.extend(instances.iter().copied());
        groups.push(HostingGroup {
            instances,
            residents,
            resident_tokens,
        });
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DecodingRequest;
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
    }

    fn fixture() -> Fixture {
        Fixture {
            registry: InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2),
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool: UnifiedKvPool::new(4, 500_000),
        }
    }

    fn pending(id: u64, len: u64) -> PendingRequest {
        PendingRequest {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            input_len: len,
            prefilled_len: 0,
            max_output_len: 256,
        }
    }

    fn view<'a>(
        f: &'a Fixture,
        pending: &'a [PendingRequest],
        decoding: &'a [DecodingRequest],
        idle: &'a [InstanceId],
    ) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending,
            decoding,
            swapped: &[],
            idle_instances: idle,
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    #[test]
    fn admits_fcfs_until_memory_or_saturation() {
        let f = fixture();
        let idle: Vec<InstanceId> = f.registry.all_ids();
        let reqs: Vec<PendingRequest> = (0..4).map(|i| pending(i, 100_000)).collect();
        let v = view(&f, &reqs, &[], &idle);
        let d = dispatch(&v);
        assert!(!d.admitted.is_empty());
        // FCFS: the first pending request is always admitted first.
        assert_eq!(d.admitted[0], RequestId(0));
        assert_eq!(d.candidate_instances.len(), 4);
        assert!(d.delayed_decodes.is_empty());
    }

    #[test]
    fn respects_memory_limit() {
        let mut f = fixture();
        f.pool = UnifiedKvPool::new(4, 50_000);
        let idle: Vec<InstanceId> = f.registry.all_ids();
        // 300K tokens cannot fit in 200K total slots.
        let reqs = vec![pending(0, 300_000)];
        let v = view(&f, &reqs, &[], &idle);
        let d = dispatch(&v);
        assert!(d.admitted.is_empty());
    }

    #[test]
    fn stops_at_saturation_point() {
        let f = fixture();
        let idle: Vec<InstanceId> = f.registry.all_ids();
        // Many small requests: total far exceeds the tipping point, so only
        // a prefix is admitted even though memory would allow all of them.
        let reqs: Vec<PendingRequest> = (0..512).map(|i| pending(i, 1_000)).collect();
        let v = view(&f, &reqs, &[], &idle);
        let d = dispatch(&v);
        assert!(!d.admitted.is_empty());
        assert!(
            d.admitted.len() < 512,
            "admitted {} of 512",
            d.admitted.len()
        );
    }

    #[test]
    fn no_pending_means_no_admission() {
        let f = fixture();
        let idle: Vec<InstanceId> = f.registry.all_ids();
        let v = view(&f, &[], &[], &idle);
        let d = dispatch(&v);
        assert!(d.admitted.is_empty());
    }

    #[test]
    fn borrowing_requires_gain_to_exceed_cost() {
        let mut f = fixture();
        // All instances host a substantial decode working set; a long
        // prefill wants to borrow them.
        for i in 0..4 {
            f.pool
                .append(RequestId(100 + i), InstanceId(i), 100_000)
                .expect("room");
        }
        let idle: Vec<InstanceId> = f.registry.all_ids();
        let decoding: Vec<DecodingRequest> = (0..4)
            .map(|i| DecodingRequest {
                id: RequestId(100 + i),
                context_len: 100_000,
                generated: 50,
                decode_time_s: 1.0,
                kv_instances: vec![InstanceId(i)],
            })
            .collect();
        let reqs = vec![pending(0, 200_000)];

        // With a low average decode latency (gain ~ 0) the borrow is refused.
        let mut v = view(&f, &reqs, &decoding, &idle);
        v.avg_decode_latency_s = 0.0;
        let d = dispatch(&v);
        assert!(d.admitted.is_empty());
        assert!(d.delayed_decodes.is_empty());

        // With a huge average decode latency (requests are waiting a very
        // long time), the gain dominates and the borrow is accepted.
        let mut v = view(&f, &reqs, &decoding, &idle);
        v.avg_decode_latency_s = 1e7;
        let d = dispatch(&v);
        assert_eq!(d.admitted, vec![RequestId(0)]);
        assert!(!d.delayed_decodes.is_empty());
    }
}
