//! Prefill–decode disaggregation baseline (DistServe-style).
//!
//! DistServe dedicates one group of GPUs to the prefill phase and another to
//! the decode phase, migrating each request's KV cache between them at the
//! phase boundary. This removes prefill/decode interference but, as the
//! paper's evaluation shows (§7.2), each phase can only use half the GPUs,
//! every request pays a KV migration, and the longest admissible request is
//! bounded by the memory of a single half — which is why DistServe runs out
//! of memory on LV-Eval and Mixed.

use crate::types::{Action, Scheduler, SchedulerView};
use loong_model::roofline::ParallelConfig;
use loong_simcore::ids::{InstanceId, RequestId};

/// The disaggregated scheduler. With the paper's configuration (TP=4 per
/// instance on an 8-GPU node) there is exactly one prefill instance and one
/// decode instance per node.
#[derive(Debug, Clone)]
pub struct DistServeScheduler {
    prefill_instances: Vec<InstanceId>,
    decode_instances: Vec<InstanceId>,
}

impl DistServeScheduler {
    /// Splits the registry's instances evenly: the first half serves
    /// prefills, the second half serves decodes.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than two instances.
    pub fn from_instances(all: &[InstanceId]) -> Self {
        assert!(
            all.len() >= 2,
            "disaggregation needs at least two instances"
        );
        let mid = all.len() / 2;
        DistServeScheduler {
            prefill_instances: all[..mid].to_vec(),
            decode_instances: all[mid..].to_vec(),
        }
    }

    /// The instances dedicated to the prefill phase.
    pub fn prefill_instances(&self) -> &[InstanceId] {
        &self.prefill_instances
    }

    /// The instances dedicated to the decode phase.
    pub fn decode_instances(&self) -> &[InstanceId] {
        &self.decode_instances
    }
}

impl Scheduler for DistServeScheduler {
    fn name(&self) -> String {
        "DistServe (Prefill-Decoding Disaggregation)".to_string()
    }

    fn schedule(&mut self, view: &SchedulerView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let tp = view.registry.tp();
        let saturation = view
            .cost_model
            .prefill_saturation_tokens(ParallelConfig::new(tp, 1));

        // A request must fit in one prefill instance *and* one decode
        // instance; otherwise it can never be served (the OOM the paper
        // reports on LV-Eval/Mixed).
        let prefill_cap = self
            .prefill_instances
            .iter()
            .map(|&i| view.pool.instance(i).capacity())
            .max()
            .unwrap_or(0);
        let decode_cap = self
            .decode_instances
            .iter()
            .map(|&i| view.pool.instance(i).capacity())
            .max()
            .unwrap_or(0);
        let admissible_cap = prefill_cap.min(decode_cap);
        for p in view.pending {
            if p.input_len + p.max_output_len > admissible_cap {
                actions.push(Action::Reject {
                    request: p.id,
                    reason: format!(
                        "request needs {} KV slots but each disaggregated half only has {admissible_cap}",
                        p.input_len + p.max_output_len
                    ),
                });
            }
        }

        // Prefill side: each idle prefill instance takes the oldest pending
        // requests that fit.
        for &inst in &self.prefill_instances {
            if !view.idle_instances.contains(&inst) {
                continue;
            }
            let mut free = view.pool.instance(inst).free();
            let mut tokens = 0u64;
            let mut batch: Vec<RequestId> = Vec::new();
            for p in view.pending {
                let needed = p.input_len + p.max_output_len;
                if needed > admissible_cap {
                    continue;
                }
                if tokens >= saturation || needed > free {
                    continue;
                }
                free -= needed;
                tokens += p.input_len;
                batch.push(p.id);
            }
            if !batch.is_empty() {
                actions.push(Action::Prefill {
                    instances: vec![inst],
                    requests: batch,
                    retain_on: vec![inst],
                });
            }
        }

        // Phase transition: any decode-phase request whose KV still sits on
        // a prefill instance must be migrated to the decode side before it
        // can continue (reactive migration, charged on the interconnect).
        let mut migrating: Vec<RequestId> = Vec::new();
        for d in view.decoding {
            let on_prefill_side = d
                .kv_instances
                .iter()
                .any(|i| self.prefill_instances.contains(i));
            if !on_prefill_side {
                continue;
            }
            // Pick the decode instance with the most free slots that can hold
            // the whole request (locality constraint within the decode side).
            let target = self
                .decode_instances
                .iter()
                .copied()
                .filter(|&i| view.pool.instance(i).free() >= d.context_len)
                .max_by_key(|&i| view.pool.instance(i).free());
            if let Some(target) = target {
                migrating.push(d.id);
                actions.push(Action::Migrate {
                    request: d.id,
                    targets: vec![target],
                });
            }
            // If no decode instance currently has room the request simply
            // waits on the prefill side, occupying its memory — the
            // head-of-line blocking disaggregation suffers under load.
        }

        // Decode side: run every ready decode whose KV is fully on an idle
        // decode instance.
        for &inst in &self.decode_instances {
            if !view.idle_instances.contains(&inst) {
                continue;
            }
            let requests: Vec<RequestId> = view
                .decoding
                .iter()
                .filter(|d| !migrating.contains(&d.id))
                .filter(|d| d.kv_instances.iter().all(|&i| i == inst) && !d.kv_instances.is_empty())
                .map(|d| d.id)
                .collect();
            if !requests.is_empty() {
                actions.push(Action::Decode {
                    instances: vec![inst],
                    masters: vec![inst],
                    requests,
                });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DecodingRequest, PendingRequest};
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
        pending: Vec<PendingRequest>,
        decoding: Vec<DecodingRequest>,
        idle: Vec<InstanceId>,
    }

    fn fixture() -> Fixture {
        // TP=4 on an 8-GPU node: instance 0 = prefill, instance 1 = decode.
        let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 4);
        let idle = registry.all_ids();
        Fixture {
            registry,
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool: UnifiedKvPool::new(2, 500_000),
            pending: vec![],
            decoding: vec![],
            idle,
        }
    }

    fn view<'a>(f: &'a Fixture) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending: &f.pending,
            decoding: &f.decoding,
            swapped: &[],
            idle_instances: &f.idle,
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    fn scheduler(f: &Fixture) -> DistServeScheduler {
        DistServeScheduler::from_instances(&f.registry.all_ids())
    }

    #[test]
    fn prefill_lands_on_prefill_side_only() {
        let mut f = fixture();
        f.pending = vec![PendingRequest {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 50_000,
            prefilled_len: 0,
            max_output_len: 128,
        }];
        let mut s = scheduler(&f);
        let actions = s.schedule(&view(&f));
        let prefill_inst = actions
            .iter()
            .find_map(|a| match a {
                Action::Prefill { instances, .. } => Some(instances[0]),
                _ => None,
            })
            .expect("prefill scheduled");
        assert!(s.prefill_instances().contains(&prefill_inst));
    }

    #[test]
    fn phase_transition_triggers_migration() {
        let mut f = fixture();
        // Request 0 finished its prefill on the prefill instance.
        f.pool
            .append(RequestId(0), InstanceId(0), 40_000)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(0),
            context_len: 40_000,
            generated: 1,
            decode_time_s: 0.0,
            kv_instances: vec![InstanceId(0)],
        }];
        let mut s = scheduler(&f);
        let actions = s.schedule(&view(&f));
        let migrate = actions
            .iter()
            .find(|a| matches!(a, Action::Migrate { .. }))
            .expect("migration");
        if let Action::Migrate { request, targets } = migrate {
            assert_eq!(*request, RequestId(0));
            assert_eq!(targets, &vec![InstanceId(1)]);
        }
        // The request is not decoded in the same round it migrates.
        assert!(!actions.iter().any(|a| matches!(a, Action::Decode { .. })));
    }

    #[test]
    fn decode_runs_on_decode_side_after_migration() {
        let mut f = fixture();
        f.pool
            .append(RequestId(0), InstanceId(1), 40_000)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(0),
            context_len: 40_000,
            generated: 2,
            decode_time_s: 0.1,
            kv_instances: vec![InstanceId(1)],
        }];
        let mut s = scheduler(&f);
        let actions = s.schedule(&view(&f));
        let decode = actions
            .iter()
            .find(|a| matches!(a, Action::Decode { .. }))
            .expect("decode");
        if let Action::Decode { instances, .. } = decode {
            assert_eq!(instances, &vec![InstanceId(1)]);
        }
    }

    #[test]
    fn request_larger_than_half_is_rejected() {
        let mut f = fixture();
        f.pending = vec![PendingRequest {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 600_000,
            prefilled_len: 0,
            max_output_len: 128,
        }];
        let mut s = scheduler(&f);
        let actions = s.schedule(&view(&f));
        assert!(actions.iter().any(|a| matches!(a, Action::Reject { .. })));
    }

    #[test]
    fn split_assigns_both_sides() {
        let f = fixture();
        let s = scheduler(&f);
        assert_eq!(s.prefill_instances(), &[InstanceId(0)]);
        assert_eq!(s.decode_instances(), &[InstanceId(1)]);
    }
}
