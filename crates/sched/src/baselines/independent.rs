//! Independent-instance baselines (vLLM-style and replicated serving).
//!
//! These baselines model the "one static engine per instance" designs the
//! paper compares against:
//!
//! * **vLLM (TP=8)** — the whole node is one tensor-parallel engine with
//!   continuous batching and prefill-prioritised scheduling; with several
//!   nodes, each node is an independent engine.
//! * **Replicated (TP=2) × 4** — four small engines, each holding a full
//!   model replica, with requests routed to the least-loaded replica
//!   (the "parallelism with replication" ablation of Figure 12).
//!
//! Both share the same policy: every instance serves its own requests with a
//! strict locality constraint (a request's whole KV lives on one instance),
//! prefill takes priority over decode, and requests that cannot fit on any
//! single instance are rejected — the fragmentation weakness §2.4
//! highlights.

use crate::pressure::{pressure_actions_with_rescue, PressureConfig};
use crate::types::{Action, PendingRequest, Scheduler, SchedulerView};
use loong_model::roofline::ParallelConfig;
use loong_simcore::ids::{InstanceId, RequestId};
use std::collections::{BTreeMap, HashMap};

/// A scheduler treating every elastic instance as an independent serving
/// engine with static parallelism.
#[derive(Debug, Clone)]
pub struct IndependentInstancesScheduler {
    name: String,
    /// Pending requests already routed to an instance (sticky routing, so a
    /// request is not bounced between replicas while it waits).
    routing: HashMap<RequestId, InstanceId>,
    /// Memory-pressure handling. `None` (the default) keeps the
    /// conservative full-output reservation and never emits pressure
    /// actions — the golden-pinned behaviour.
    pressure: Option<PressureConfig>,
}

impl IndependentInstancesScheduler {
    /// Creates the policy with a report label such as `"vLLM (TP=8)"`.
    pub fn new(name: impl Into<String>) -> Self {
        IndependentInstancesScheduler {
            name: name.into(),
            routing: HashMap::new(),
            pressure: None,
        }
    }

    /// The vLLM-style baseline label used in the paper's figures.
    pub fn vllm() -> Self {
        Self::new("vLLM (TP=8)")
    }

    /// The replicated-instances ablation label used in Figure 12.
    pub fn replicated() -> Self {
        Self::new("LoongServe w/o ESP (TP=2) x 4")
    }

    /// Enables memory-pressure handling: optimistic admission per the
    /// config's reserve factor, watermark-driven victim eviction, and (for
    /// the swap policy) re-admission from the host tier.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation.
    pub fn with_pressure(mut self, config: PressureConfig) -> Self {
        config.validate().expect("valid pressure config");
        self.pressure = Some(config);
        self
    }

    /// KV slots reserved for a pending request at admission: the full
    /// declared output without pressure handling, the configured optimistic
    /// reservation with it.
    fn reserved(&self, req: &PendingRequest) -> u64 {
        match &self.pressure {
            None => req.input_len + req.max_output_len,
            Some(cfg) => cfg.admission_reserve(req.input_len, req.max_output_len),
        }
    }

    /// Routes a pending request to an instance: stick with a previous
    /// routing decision, otherwise pick the instance with the most free KV
    /// slots.
    ///
    /// Under pressure handling, routing is recomputed every round instead:
    /// a sticky assignment made while a replica was emptiest can pin a
    /// request to a replica that pressure later filled, starving it while
    /// other replicas drain completely. (With pressure off the sticky path
    /// is unchanged — the golden-pinned behaviour.)
    fn route(&mut self, view: &SchedulerView<'_>, req: &PendingRequest) -> Option<InstanceId> {
        if self.pressure.is_none() {
            if let Some(&inst) = self.routing.get(&req.id) {
                return Some(inst);
            }
        }
        let needed = self.reserved(req);
        let mut best: Option<(InstanceId, u64)> = None;
        for &(inst, free) in &view.pool.free_slots() {
            // Reclaimable retained prefixes count as free (the engine
            // evicts them at prefill commit); zero extra when the tier is
            // off.
            let free = free + view.pool.prefix_retained_on(inst);
            if free >= needed && best.map(|(_, b)| free > b).unwrap_or(true) {
                best = Some((inst, free));
            }
        }
        let inst = best.map(|(i, _)| i)?;
        if self.pressure.is_none() {
            self.routing.insert(req.id, inst);
        }
        Some(inst)
    }
}

impl Scheduler for IndependentInstancesScheduler {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn schedule(&mut self, view: &SchedulerView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let tp = view.registry.tp();
        let saturation = view
            .cost_model
            .prefill_saturation_tokens(ParallelConfig::new(tp, 1));

        // Reject requests that no single instance could ever hold.
        let max_single = view
            .registry
            .all_ids()
            .iter()
            .map(|&i| view.pool.instance(i).capacity())
            .max()
            .unwrap_or(0);
        for p in view.pending {
            if p.input_len + p.max_output_len > max_single {
                actions.push(Action::Reject {
                    request: p.id,
                    reason: format!(
                        "request needs {} KV slots but a single instance only has {max_single} (locality constraint)",
                        p.input_len + p.max_output_len
                    ),
                });
            }
        }

        // Memory-pressure handling (when enabled): evict victims above the
        // high watermark, re-admit swapped requests below the low one, and
        // pause new admissions while pressured. With the tier disabled this
        // whole block is skipped and scheduling is bit-for-bit the
        // golden-pinned baseline.
        let mut admit = true;
        let mut budget_left = u64::MAX;
        if let Some(cfg) = self.pressure {
            let mut pa = pressure_actions_with_rescue(view, &cfg);
            // Strict locality: a restored KV cache must land whole on one
            // instance (these baselines decode each request on the single
            // instance holding its KV), so rewrite the generic multi-target
            // swap-ins to the emptiest instance with room — or defer the
            // re-admission if no single instance fits yet. The oversize
            // reject above bounds a request's demand by one instance's
            // capacity, so a deferred swap-in always fits eventually.
            pa.retain_mut(|a| {
                let Action::SwapIn { request, targets } = a else {
                    return true;
                };
                let tokens = view.pool.swapped_tokens_of(*request);
                let mut best: Option<(InstanceId, u64)> = None;
                for &(inst, free) in &view.pool.free_slots() {
                    // Keep high-watermark headroom on the chosen replica
                    // (an empty replica always qualifies) so the restored
                    // request does not immediately re-create the pressure
                    // that evicted it. Reclaimable retained prefixes count
                    // as free / not-used throughout.
                    let pool_i = view.pool.instance(inst);
                    let reclaimable = view.pool.prefix_retained_on(inst);
                    let free = free + reclaimable;
                    let used = pool_i.used() - reclaimable;
                    let head = (cfg.high_watermark * pool_i.capacity() as f64).floor() as u64;
                    let fits = free >= tokens && (used + tokens <= head || used == 0);
                    if fits && best.map(|(_, b)| free > b).unwrap_or(true) {
                        best = Some((inst, free));
                    }
                }
                match best {
                    Some((inst, _)) => {
                        *targets = vec![inst];
                        true
                    }
                    None => false,
                }
            });
            actions.extend(pa);
            admit = !cfg.admission_paused(view);
            budget_left = cfg.admission_budget(view);
        }

        // Route pending requests and gather per-instance prefill batches.
        let mut prefill_per_instance: BTreeMap<InstanceId, Vec<RequestId>> = BTreeMap::new();
        let mut budget_per_instance: HashMap<InstanceId, u64> = HashMap::new();
        let mut tokens_per_instance: HashMap<InstanceId, u64> = HashMap::new();
        for req in view.pending {
            if !admit {
                break;
            }
            let needed = self.reserved(req);
            let Some(inst) = self.route(view, req) else {
                continue;
            };
            if !view.idle_instances.contains(&inst) {
                continue;
            }
            // Under pressure, per-instance admission stops at the low
            // watermark: the [low, high] band is decode-growth headroom
            // here exactly as it is pool-globally, so a re-admitted
            // eviction victim cannot refill its replica to 100% and
            // recreate the stall it was evicted to clear.
            let budget = budget_per_instance.entry(inst).or_insert_with(|| {
                let pool_i = view.pool.instance(inst);
                let reclaimable = view.pool.prefix_retained_on(inst);
                match &self.pressure {
                    None => pool_i.free() + reclaimable,
                    Some(cfg) => {
                        let target = (cfg.low_watermark * pool_i.capacity() as f64).floor() as u64;
                        target.saturating_sub(pool_i.used() - reclaimable)
                    }
                }
            });
            let tokens = tokens_per_instance.entry(inst).or_insert(0);
            // A completely empty instance admits its first request of the
            // round on physical capacity alone: the watermark budget would
            // otherwise starve any request larger than the low-watermark
            // band forever, even with the whole replica drained. A sole
            // resident always fits to completion (the oversize reject
            // bounds input + max_output by one instance's capacity).
            let reclaimable = view.pool.prefix_retained_on(inst);
            let empty_bypass = *tokens == 0 && view.pool.instance(inst).used() - reclaimable == 0;
            let affordable = (needed <= *budget && needed <= budget_left)
                || (empty_bypass && needed <= view.pool.instance(inst).free() + reclaimable);
            if *tokens >= saturation || !affordable {
                continue;
            }
            *budget = budget.saturating_sub(needed);
            budget_left = budget_left.saturating_sub(needed);
            *tokens += req.input_len;
            prefill_per_instance.entry(inst).or_default().push(req.id);
        }

        let mut used: Vec<InstanceId> = Vec::new();
        for (inst, requests) in prefill_per_instance {
            used.push(inst);
            actions.push(Action::Prefill {
                instances: vec![inst],
                requests,
                retain_on: vec![inst],
            });
        }

        // Decode on the remaining idle instances (prefill has priority).
        let mut decode_per_instance: BTreeMap<InstanceId, Vec<RequestId>> = BTreeMap::new();
        for d in view.decoding {
            let Some(&inst) = d.kv_instances.first() else {
                continue;
            };
            if used.contains(&inst) || !view.idle_instances.contains(&inst) {
                continue;
            }
            decode_per_instance.entry(inst).or_default().push(d.id);
        }
        for (inst, mut requests) in decode_per_instance {
            // Under optimistic admission an instance can hold fewer free
            // slots than ready residents; decode the FCFS-oldest subset
            // that fits, rather than emitting a batch whose plan fails
            // wholesale and advances nobody. (Pressure off keeps the full
            // batch: conservative reservation guarantees the slots.)
            if self.pressure.is_some() {
                let free =
                    (view.pool.instance(inst).free() + view.pool.prefix_retained_on(inst)) as usize;
                if free == 0 {
                    continue;
                }
                requests.truncate(free);
            }
            actions.push(Action::Decode {
                instances: vec![inst],
                masters: vec![inst],
                requests,
            });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DecodingRequest;
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
        pending: Vec<PendingRequest>,
        decoding: Vec<DecodingRequest>,
        idle: Vec<InstanceId>,
    }

    fn fixture(tp: usize) -> Fixture {
        let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), tp);
        let idle = registry.all_ids();
        let n = registry.num_instances();
        Fixture {
            registry,
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool: UnifiedKvPool::new(n, 400_000),
            pending: vec![],
            decoding: vec![],
            idle,
        }
    }

    fn view<'a>(f: &'a Fixture) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending: &f.pending,
            decoding: &f.decoding,
            swapped: &[],
            idle_instances: &f.idle,
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    fn pending(id: u64, len: u64) -> PendingRequest {
        PendingRequest {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            input_len: len,
            prefilled_len: 0,
            max_output_len: 128,
        }
    }

    #[test]
    fn vllm_uses_single_instance_prefill() {
        let mut f = fixture(8);
        f.pending = vec![pending(0, 1_000), pending(1, 500)];
        let mut s = IndependentInstancesScheduler::vllm();
        let actions = s.schedule(&view(&f));
        let prefills: Vec<&Action> = actions
            .iter()
            .filter(|a| matches!(a, Action::Prefill { .. }))
            .collect();
        assert_eq!(prefills.len(), 1);
        if let Action::Prefill {
            instances,
            requests,
            retain_on,
        } = prefills[0]
        {
            assert_eq!(instances.len(), 1);
            assert_eq!(retain_on, instances);
            assert_eq!(requests.len(), 2);
        }
    }

    #[test]
    fn replicated_routes_to_least_loaded() {
        let mut f = fixture(2);
        // Load instance 0 heavily so new requests prefer other replicas.
        f.pool
            .append(RequestId(99), InstanceId(0), 350_000)
            .expect("room");
        f.pending = vec![pending(0, 10_000)];
        let mut s = IndependentInstancesScheduler::replicated();
        let actions = s.schedule(&view(&f));
        let prefill_instance = actions
            .iter()
            .find_map(|a| match a {
                Action::Prefill { instances, .. } => Some(instances[0]),
                _ => None,
            })
            .expect("prefill scheduled");
        assert_ne!(prefill_instance, InstanceId(0));
    }

    #[test]
    fn oversized_request_rejected_under_locality() {
        let mut f = fixture(2);
        // 600K tokens exceeds a single 400K-slot instance even though the
        // cluster total (1.6M) would suffice — the Figure 4 pathology.
        f.pending = vec![pending(0, 600_000)];
        let mut s = IndependentInstancesScheduler::replicated();
        let actions = s.schedule(&view(&f));
        assert!(actions.iter().any(|a| matches!(a, Action::Reject { .. })));
        assert!(!actions.iter().any(|a| matches!(a, Action::Prefill { .. })));
    }

    #[test]
    fn decode_runs_when_no_prefill_pending() {
        let mut f = fixture(8);
        f.pool
            .append(RequestId(0), InstanceId(0), 500)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(0),
            context_len: 500,
            generated: 3,
            decode_time_s: 0.0,
            kv_instances: vec![InstanceId(0)],
        }];
        let mut s = IndependentInstancesScheduler::vllm();
        let actions = s.schedule(&view(&f));
        assert!(actions.iter().any(|a| matches!(a, Action::Decode { .. })));
    }

    #[test]
    fn swap_in_is_rewritten_to_a_single_replica_or_deferred() {
        use crate::pressure::PressureConfig;
        use crate::types::SwappedRequest;
        // Two replicas with 600 and 500 free slots; a 900-token swapped
        // request must NOT be split across them (strict locality): the
        // swap-in is deferred until one replica can hold it whole.
        let mut f = fixture(2);
        // Registry has four TP=2 instances; give the last two zero slots so
        // only two replicas matter for placement.
        f.pool = UnifiedKvPool::with_capacities(&[1_000, 1_000, 0, 0]);
        f.pool.enable_host_tier(10_000);
        f.pool
            .append(RequestId(0), InstanceId(0), 900)
            .expect("room");
        f.pool.swap_out(RequestId(0)).expect("host room");
        f.pool
            .append(RequestId(1), InstanceId(0), 400)
            .expect("room");
        f.pool
            .append(RequestId(2), InstanceId(1), 500)
            .expect("room");
        f.idle = vec![InstanceId(0), InstanceId(1)];
        let swapped = [SwappedRequest {
            id: RequestId(0),
            context_len: 900,
            generated: 1,
            tokens: 900,
        }];
        let mut v = view(&f);
        v.swapped = &swapped;
        let mut s = IndependentInstancesScheduler::replicated()
            .with_pressure(PressureConfig::swap_to_host());
        let actions = s.schedule(&v);
        assert!(
            !actions.iter().any(|a| matches!(a, Action::SwapIn { .. })),
            "no single replica fits 900 tokens: the swap-in must be deferred"
        );

        // Free instance 1 entirely: the swap-in now targets exactly it.
        f.pool.release(RequestId(2));
        let mut v = view(&f);
        v.swapped = &swapped;
        let actions = s.schedule(&v);
        let targets = actions
            .iter()
            .find_map(|a| match a {
                Action::SwapIn { request, targets } if *request == RequestId(0) => Some(targets),
                _ => None,
            })
            .expect("swap-in emitted");
        assert_eq!(
            targets,
            &vec![InstanceId(1)],
            "whole request on one replica"
        );
    }

    #[test]
    fn prefill_preempts_decode_on_same_instance() {
        let mut f = fixture(8);
        f.pool
            .append(RequestId(0), InstanceId(0), 500)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(0),
            context_len: 500,
            generated: 3,
            decode_time_s: 0.0,
            kv_instances: vec![InstanceId(0)],
        }];
        f.pending = vec![pending(1, 50_000)];
        let mut s = IndependentInstancesScheduler::vllm();
        let actions = s.schedule(&view(&f));
        assert!(actions.iter().any(|a| matches!(a, Action::Prefill { .. })));
        assert!(
            !actions.iter().any(|a| matches!(a, Action::Decode { .. })),
            "decode should be delayed behind the prefill (the interference the paper measures)"
        );
    }
}
