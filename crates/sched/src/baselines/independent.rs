//! Independent-instance baselines (vLLM-style and replicated serving).
//!
//! These baselines model the "one static engine per instance" designs the
//! paper compares against:
//!
//! * **vLLM (TP=8)** — the whole node is one tensor-parallel engine with
//!   continuous batching and prefill-prioritised scheduling; with several
//!   nodes, each node is an independent engine.
//! * **Replicated (TP=2) × 4** — four small engines, each holding a full
//!   model replica, with requests routed to the least-loaded replica
//!   (the "parallelism with replication" ablation of Figure 12).
//!
//! Both share the same policy: every instance serves its own requests with a
//! strict locality constraint (a request's whole KV lives on one instance),
//! prefill takes priority over decode, and requests that cannot fit on any
//! single instance are rejected — the fragmentation weakness §2.4
//! highlights.

use crate::types::{Action, PendingRequest, Scheduler, SchedulerView};
use loong_model::roofline::ParallelConfig;
use loong_simcore::ids::{InstanceId, RequestId};
use std::collections::{BTreeMap, HashMap};

/// A scheduler treating every elastic instance as an independent serving
/// engine with static parallelism.
#[derive(Debug, Clone)]
pub struct IndependentInstancesScheduler {
    name: String,
    /// Pending requests already routed to an instance (sticky routing, so a
    /// request is not bounced between replicas while it waits).
    routing: HashMap<RequestId, InstanceId>,
}

impl IndependentInstancesScheduler {
    /// Creates the policy with a report label such as `"vLLM (TP=8)"`.
    pub fn new(name: impl Into<String>) -> Self {
        IndependentInstancesScheduler {
            name: name.into(),
            routing: HashMap::new(),
        }
    }

    /// The vLLM-style baseline label used in the paper's figures.
    pub fn vllm() -> Self {
        Self::new("vLLM (TP=8)")
    }

    /// The replicated-instances ablation label used in Figure 12.
    pub fn replicated() -> Self {
        Self::new("LoongServe w/o ESP (TP=2) x 4")
    }

    /// Routes a pending request to an instance: stick with a previous
    /// routing decision, otherwise pick the instance with the most free KV
    /// slots.
    fn route(&mut self, view: &SchedulerView<'_>, req: &PendingRequest) -> Option<InstanceId> {
        if let Some(&inst) = self.routing.get(&req.id) {
            return Some(inst);
        }
        let needed = req.input_len + req.max_output_len;
        let mut best: Option<(InstanceId, u64)> = None;
        for &(inst, free) in &view.pool.free_slots() {
            if free >= needed && best.map(|(_, b)| free > b).unwrap_or(true) {
                best = Some((inst, free));
            }
        }
        let inst = best.map(|(i, _)| i)?;
        self.routing.insert(req.id, inst);
        Some(inst)
    }
}

impl Scheduler for IndependentInstancesScheduler {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn schedule(&mut self, view: &SchedulerView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let tp = view.registry.tp();
        let saturation = view
            .cost_model
            .prefill_saturation_tokens(ParallelConfig::new(tp, 1));

        // Reject requests that no single instance could ever hold.
        let max_single = view
            .registry
            .all_ids()
            .iter()
            .map(|&i| view.pool.instance(i).capacity())
            .max()
            .unwrap_or(0);
        for p in view.pending {
            if p.input_len + p.max_output_len > max_single {
                actions.push(Action::Reject {
                    request: p.id,
                    reason: format!(
                        "request needs {} KV slots but a single instance only has {max_single} (locality constraint)",
                        p.input_len + p.max_output_len
                    ),
                });
            }
        }

        // Route pending requests and gather per-instance prefill batches.
        let mut prefill_per_instance: BTreeMap<InstanceId, Vec<RequestId>> = BTreeMap::new();
        let mut budget_per_instance: HashMap<InstanceId, u64> = HashMap::new();
        let mut tokens_per_instance: HashMap<InstanceId, u64> = HashMap::new();
        for req in view.pending {
            let Some(inst) = self.route(view, req) else {
                continue;
            };
            if !view.idle_instances.contains(&inst) {
                continue;
            }
            let budget = budget_per_instance
                .entry(inst)
                .or_insert_with(|| view.pool.instance(inst).free());
            let tokens = tokens_per_instance.entry(inst).or_insert(0);
            let needed = req.input_len + req.max_output_len;
            if *tokens >= saturation || needed > *budget {
                continue;
            }
            *budget -= needed;
            *tokens += req.input_len;
            prefill_per_instance.entry(inst).or_default().push(req.id);
        }

        let mut used: Vec<InstanceId> = Vec::new();
        for (inst, requests) in prefill_per_instance {
            used.push(inst);
            actions.push(Action::Prefill {
                instances: vec![inst],
                requests,
                retain_on: vec![inst],
            });
        }

        // Decode on the remaining idle instances (prefill has priority).
        let mut decode_per_instance: BTreeMap<InstanceId, Vec<RequestId>> = BTreeMap::new();
        for d in view.decoding {
            let Some(&inst) = d.kv_instances.first() else {
                continue;
            };
            if used.contains(&inst) || !view.idle_instances.contains(&inst) {
                continue;
            }
            decode_per_instance.entry(inst).or_default().push(d.id);
        }
        for (inst, requests) in decode_per_instance {
            actions.push(Action::Decode {
                instances: vec![inst],
                masters: vec![inst],
                requests,
            });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DecodingRequest;
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
        pending: Vec<PendingRequest>,
        decoding: Vec<DecodingRequest>,
        idle: Vec<InstanceId>,
    }

    fn fixture(tp: usize) -> Fixture {
        let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), tp);
        let idle = registry.all_ids();
        let n = registry.num_instances();
        Fixture {
            registry,
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool: UnifiedKvPool::new(n, 400_000),
            pending: vec![],
            decoding: vec![],
            idle,
        }
    }

    fn view<'a>(f: &'a Fixture) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending: &f.pending,
            decoding: &f.decoding,
            idle_instances: &f.idle,
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    fn pending(id: u64, len: u64) -> PendingRequest {
        PendingRequest {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            input_len: len,
            prefilled_len: 0,
            max_output_len: 128,
        }
    }

    #[test]
    fn vllm_uses_single_instance_prefill() {
        let mut f = fixture(8);
        f.pending = vec![pending(0, 1_000), pending(1, 500)];
        let mut s = IndependentInstancesScheduler::vllm();
        let actions = s.schedule(&view(&f));
        let prefills: Vec<&Action> = actions
            .iter()
            .filter(|a| matches!(a, Action::Prefill { .. }))
            .collect();
        assert_eq!(prefills.len(), 1);
        if let Action::Prefill {
            instances,
            requests,
            retain_on,
        } = prefills[0]
        {
            assert_eq!(instances.len(), 1);
            assert_eq!(retain_on, instances);
            assert_eq!(requests.len(), 2);
        }
    }

    #[test]
    fn replicated_routes_to_least_loaded() {
        let mut f = fixture(2);
        // Load instance 0 heavily so new requests prefer other replicas.
        f.pool
            .append(RequestId(99), InstanceId(0), 350_000)
            .expect("room");
        f.pending = vec![pending(0, 10_000)];
        let mut s = IndependentInstancesScheduler::replicated();
        let actions = s.schedule(&view(&f));
        let prefill_instance = actions
            .iter()
            .find_map(|a| match a {
                Action::Prefill { instances, .. } => Some(instances[0]),
                _ => None,
            })
            .expect("prefill scheduled");
        assert_ne!(prefill_instance, InstanceId(0));
    }

    #[test]
    fn oversized_request_rejected_under_locality() {
        let mut f = fixture(2);
        // 600K tokens exceeds a single 400K-slot instance even though the
        // cluster total (1.6M) would suffice — the Figure 4 pathology.
        f.pending = vec![pending(0, 600_000)];
        let mut s = IndependentInstancesScheduler::replicated();
        let actions = s.schedule(&view(&f));
        assert!(actions.iter().any(|a| matches!(a, Action::Reject { .. })));
        assert!(!actions.iter().any(|a| matches!(a, Action::Prefill { .. })));
    }

    #[test]
    fn decode_runs_when_no_prefill_pending() {
        let mut f = fixture(8);
        f.pool
            .append(RequestId(0), InstanceId(0), 500)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(0),
            context_len: 500,
            generated: 3,
            decode_time_s: 0.0,
            kv_instances: vec![InstanceId(0)],
        }];
        let mut s = IndependentInstancesScheduler::vllm();
        let actions = s.schedule(&view(&f));
        assert!(actions.iter().any(|a| matches!(a, Action::Decode { .. })));
    }

    #[test]
    fn prefill_preempts_decode_on_same_instance() {
        let mut f = fixture(8);
        f.pool
            .append(RequestId(0), InstanceId(0), 500)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(0),
            context_len: 500,
            generated: 3,
            decode_time_s: 0.0,
            kv_instances: vec![InstanceId(0)],
        }];
        f.pending = vec![pending(1, 50_000)];
        let mut s = IndependentInstancesScheduler::vllm();
        let actions = s.schedule(&view(&f));
        assert!(actions.iter().any(|a| matches!(a, Action::Prefill { .. })));
        assert!(
            !actions.iter().any(|a| matches!(a, Action::Decode { .. })),
            "decode should be delayed behind the prefill (the interference the paper measures)"
        );
    }
}
