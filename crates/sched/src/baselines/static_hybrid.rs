//! Static hybrid parallelism baseline (TP×SP fixed, no elasticity).
//!
//! The "LoongServe w/o ESP (TP=2, SP=4)" ablation of Figure 12: sequence
//! parallelism is available, but the degree of parallelism is fixed at
//! launch — every batch, prefill or decode, runs on *all* instances as one
//! parallel group. This isolates the contribution of elasticity from the
//! contribution of sequence parallelism itself.

use crate::types::{Action, Scheduler, SchedulerView};
use loong_model::roofline::ParallelConfig;
use loong_simcore::ids::RequestId;

/// Scheduler that always uses the full instance set as a single static
/// sequence-parallel group.
#[derive(Debug, Clone, Default)]
pub struct StaticHybridScheduler;

impl StaticHybridScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        StaticHybridScheduler
    }
}

impl Scheduler for StaticHybridScheduler {
    fn name(&self) -> String {
        "LoongServe w/o ESP (static TP x SP)".to_string()
    }

    fn schedule(&mut self, view: &SchedulerView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let all = view.registry.all_ids();

        // The whole cluster is one group, so nothing can be scheduled unless
        // every instance is idle.
        if view.idle_instances.len() != all.len() {
            return actions;
        }

        // Rejection only when even the unified pool cannot hold the request.
        for p in view.pending {
            if p.input_len + p.max_output_len > view.pool.total_capacity() {
                actions.push(Action::Reject {
                    request: p.id,
                    reason: format!(
                        "request needs {} KV slots but the cluster only has {}",
                        p.input_len + p.max_output_len,
                        view.pool.total_capacity()
                    ),
                });
            }
        }

        let saturation = view
            .cost_model
            .prefill_saturation_tokens(ParallelConfig::new(view.registry.tp(), all.len()));

        // Prefill takes priority; the group keeps its full DoP afterwards
        // (no proactive scale-down in this ablation).
        let mut free: u64 = view.free_slots_on(&all);
        let mut tokens = 0u64;
        let mut batch: Vec<RequestId> = Vec::new();
        for p in view.pending {
            let needed = p.input_len + p.max_output_len;
            if needed > view.pool.total_capacity() {
                continue;
            }
            if tokens >= saturation || needed > free {
                continue;
            }
            free -= needed;
            tokens += p.input_len;
            batch.push(p.id);
        }
        if !batch.is_empty() {
            actions.push(Action::Prefill {
                instances: all.clone(),
                requests: batch,
                retain_on: all,
            });
            return actions;
        }

        // Otherwise decode every ready request as one full-width group.
        let requests: Vec<RequestId> = view.decoding.iter().map(|d| d.id).collect();
        if !requests.is_empty() {
            actions.push(Action::Decode {
                instances: all.clone(),
                masters: all,
                requests,
            });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DecodingRequest, PendingRequest};
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::ids::InstanceId;
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
        pending: Vec<PendingRequest>,
        decoding: Vec<DecodingRequest>,
        idle: Vec<InstanceId>,
    }

    fn fixture() -> Fixture {
        let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
        let idle = registry.all_ids();
        Fixture {
            registry,
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool: UnifiedKvPool::new(4, 500_000),
            pending: vec![],
            decoding: vec![],
            idle,
        }
    }

    fn view<'a>(f: &'a Fixture) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending: &f.pending,
            decoding: &f.decoding,
            swapped: &[],
            idle_instances: &f.idle,
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    #[test]
    fn prefill_uses_all_instances_and_keeps_them() {
        let mut f = fixture();
        f.pending = vec![PendingRequest {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 100_000,
            prefilled_len: 0,
            max_output_len: 128,
        }];
        let mut s = StaticHybridScheduler::new();
        let actions = s.schedule(&view(&f));
        match &actions[0] {
            Action::Prefill {
                instances,
                retain_on,
                ..
            } => {
                assert_eq!(instances.len(), 4);
                assert_eq!(
                    retain_on.len(),
                    4,
                    "no proactive scale-down in the static ablation"
                );
            }
            other => panic!("expected prefill, got {other:?}"),
        }
    }

    #[test]
    fn decode_uses_all_instances_when_no_prefill() {
        let mut f = fixture();
        f.pool
            .append(RequestId(1), InstanceId(0), 100)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(1),
            context_len: 100,
            generated: 2,
            decode_time_s: 0.0,
            kv_instances: vec![InstanceId(0)],
        }];
        let mut s = StaticHybridScheduler::new();
        let actions = s.schedule(&view(&f));
        match &actions[0] {
            Action::Decode { instances, .. } => assert_eq!(instances.len(), 4),
            other => panic!("expected decode, got {other:?}"),
        }
    }

    #[test]
    fn waits_when_any_instance_is_busy() {
        let mut f = fixture();
        f.idle = vec![InstanceId(0), InstanceId(1)];
        f.pending = vec![PendingRequest {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 1_000,
            prefilled_len: 0,
            max_output_len: 128,
        }];
        let mut s = StaticHybridScheduler::new();
        assert!(s.schedule(&view(&f)).is_empty());
    }

    #[test]
    fn interference_prefill_blocks_decode() {
        let mut f = fixture();
        f.pool
            .append(RequestId(1), InstanceId(0), 100)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(1),
            context_len: 100,
            generated: 2,
            decode_time_s: 0.0,
            kv_instances: vec![InstanceId(0)],
        }];
        f.pending = vec![PendingRequest {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 200_000,
            prefilled_len: 0,
            max_output_len: 128,
        }];
        let mut s = StaticHybridScheduler::new();
        let actions = s.schedule(&view(&f));
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], Action::Prefill { .. }));
    }
}
