//! Baseline serving policies the paper compares against.
//!
//! All baselines run on the same simulated substrate as LoongServe (same
//! cost model, same KV pool semantics, same workload traces); only the
//! scheduling policy and parallelism shape differ, which isolates the
//! contribution of elastic sequence parallelism exactly the way the paper's
//! evaluation does.

pub mod distserve;
pub mod independent;
pub mod splitfuse;
pub mod static_hybrid;

pub use distserve::DistServeScheduler;
pub use independent::IndependentInstancesScheduler;
pub use splitfuse::SplitFuseScheduler;
pub use static_hybrid::StaticHybridScheduler;
