//! Chunked-prefill baselines (DeepSpeed-MII Dynamic SplitFuse / LightLLM
//! SplitFuse / SARATHI).
//!
//! These systems bound the interference of long prompts on decoding by
//! splitting each prompt into fixed-size chunks and fusing one chunk with the
//! decode tokens of the running requests in every iteration. The chunk size
//! is chosen from the workload's prefill-to-decode ("P:D") token ratio, as
//! SARATHI prescribes and as the paper does for its LightLLM baseline
//! (§7.1). The weakness the paper measures: chunking makes the prefill phase
//! itself much less efficient for very long prompts, and interference
//! remains when the P:D ratio is high.

use crate::types::{Action, Scheduler, SchedulerView};
use loong_simcore::ids::{InstanceId, RequestId};
use std::collections::HashMap;

/// Chunked-prefill scheduler over a single static tensor-parallel engine per
/// instance.
#[derive(Debug, Clone)]
pub struct SplitFuseScheduler {
    name: String,
    /// Number of prompt tokens fused into each iteration.
    chunk_tokens: u64,
    /// Sticky routing of requests to instances.
    routing: HashMap<RequestId, InstanceId>,
}

impl SplitFuseScheduler {
    /// Default chunk size used when no workload-specific tuning is supplied
    /// (DeepSpeed-MII's default is 2 Ki tokens).
    pub const DEFAULT_CHUNK_TOKENS: u64 = 2048;

    /// Creates the scheduler with an explicit chunk size.
    pub fn new(name: impl Into<String>, chunk_tokens: u64) -> Self {
        assert!(chunk_tokens > 0, "chunk size must be positive");
        SplitFuseScheduler {
            name: name.into(),
            chunk_tokens,
            routing: HashMap::new(),
        }
    }

    /// The DeepSpeed-MII (Dynamic SplitFuse) label with the default chunk.
    pub fn deepspeed_mii() -> Self {
        Self::new(
            "DeepSpeed-MII (Dynamic SplitFuse)",
            Self::DEFAULT_CHUNK_TOKENS,
        )
    }

    /// The LightLLM w/ SplitFuse label with a chunk size derived from the
    /// workload's ideal P:D ratio.
    pub fn lightllm_for_workload(mean_input_len: f64, mean_output_len: f64) -> Self {
        Self::new(
            "LightLLM w/ SplitFuse",
            Self::ideal_chunk_tokens(mean_input_len, mean_output_len),
        )
    }

    /// SARATHI's ideal chunk size for a workload: the chunk that spreads a
    /// mean-length prompt over the mean number of decode iterations, i.e.
    /// `mean_input / mean_output`, clamped to a practical range.
    pub fn ideal_chunk_tokens(mean_input_len: f64, mean_output_len: f64) -> u64 {
        assert!(
            mean_input_len > 0.0 && mean_output_len > 0.0,
            "means must be positive"
        );
        let ratio = mean_input_len / mean_output_len;
        (ratio.round() as u64).clamp(256, 65_536)
    }

    /// The configured chunk size in tokens.
    pub fn chunk_tokens(&self) -> u64 {
        self.chunk_tokens
    }
}

impl Scheduler for SplitFuseScheduler {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn schedule(&mut self, view: &SchedulerView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();

        // Locality constraint identical to the other single-engine systems.
        let max_single = view
            .registry
            .all_ids()
            .iter()
            .map(|&i| view.pool.instance(i).capacity())
            .max()
            .unwrap_or(0);
        for p in view.pending {
            if p.input_len + p.max_output_len > max_single {
                actions.push(Action::Reject {
                    request: p.id,
                    reason: format!(
                        "request needs {} KV slots but a single instance only has {max_single}",
                        p.input_len + p.max_output_len
                    ),
                });
            }
        }

        let mut used: Vec<InstanceId> = Vec::new();

        // One fused iteration per idle instance: the oldest pending request's
        // next chunk plus every ready decode resident there.
        for &inst in view.idle_instances {
            let free = view.pool.instance(inst).free();
            let decode_here: Vec<RequestId> = view
                .decoding
                .iter()
                .filter(|d| d.kv_instances.first() == Some(&inst))
                .map(|d| d.id)
                .collect();

            // Pick the oldest pending request routed (or routable) to this
            // instance. Partially prefilled requests stay on their instance.
            let candidate = view.pending.iter().find(|p| {
                if p.input_len + p.max_output_len > max_single {
                    return false;
                }
                match self.routing.get(&p.id) {
                    Some(&routed) => routed == inst,
                    None => free >= p.input_len + p.max_output_len,
                }
            });

            match candidate {
                Some(p) if free >= p.remaining_prefill().min(self.chunk_tokens) => {
                    self.routing.insert(p.id, inst);
                    let chunk = p.remaining_prefill().min(self.chunk_tokens);
                    used.push(inst);
                    actions.push(Action::ChunkedPrefill {
                        instances: vec![inst],
                        prefill_request: p.id,
                        chunk_tokens: chunk,
                        decode_requests: decode_here,
                    });
                }
                _ => {
                    if !decode_here.is_empty() {
                        used.push(inst);
                        actions.push(Action::Decode {
                            instances: vec![inst],
                            masters: vec![inst],
                            requests: decode_here,
                        });
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DecodingRequest, PendingRequest};
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
        pending: Vec<PendingRequest>,
        decoding: Vec<DecodingRequest>,
        idle: Vec<InstanceId>,
    }

    fn fixture() -> Fixture {
        let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 8);
        let idle = registry.all_ids();
        Fixture {
            registry,
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool: UnifiedKvPool::new(1, 1_000_000),
            pending: vec![],
            decoding: vec![],
            idle,
        }
    }

    fn view<'a>(f: &'a Fixture) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending: &f.pending,
            decoding: &f.decoding,
            swapped: &[],
            idle_instances: &f.idle,
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    #[test]
    fn fuses_chunk_with_resident_decodes() {
        let mut f = fixture();
        f.pool
            .append(RequestId(5), InstanceId(0), 400)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(5),
            context_len: 400,
            generated: 2,
            decode_time_s: 0.0,
            kv_instances: vec![InstanceId(0)],
        }];
        f.pending = vec![PendingRequest {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 10_000,
            prefilled_len: 3_000,
            max_output_len: 128,
        }];
        let mut s = SplitFuseScheduler::deepspeed_mii();
        let actions = s.schedule(&view(&f));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::ChunkedPrefill {
                prefill_request,
                chunk_tokens,
                decode_requests,
                ..
            } => {
                assert_eq!(*prefill_request, RequestId(0));
                assert_eq!(*chunk_tokens, SplitFuseScheduler::DEFAULT_CHUNK_TOKENS);
                assert_eq!(decode_requests, &vec![RequestId(5)]);
            }
            other => panic!("expected a chunked prefill, got {other:?}"),
        }
    }

    #[test]
    fn final_chunk_is_truncated() {
        let mut f = fixture();
        f.pending = vec![PendingRequest {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 10_000,
            prefilled_len: 9_500,
            max_output_len: 128,
        }];
        let mut s = SplitFuseScheduler::deepspeed_mii();
        let actions = s.schedule(&view(&f));
        match &actions[0] {
            Action::ChunkedPrefill { chunk_tokens, .. } => assert_eq!(*chunk_tokens, 500),
            other => panic!("expected a chunked prefill, got {other:?}"),
        }
    }

    #[test]
    fn pure_decode_when_no_pending() {
        let mut f = fixture();
        f.pool
            .append(RequestId(5), InstanceId(0), 400)
            .expect("room");
        f.decoding = vec![DecodingRequest {
            id: RequestId(5),
            context_len: 400,
            generated: 2,
            decode_time_s: 0.0,
            kv_instances: vec![InstanceId(0)],
        }];
        let mut s = SplitFuseScheduler::lightllm_for_workload(8_000.0, 200.0);
        let actions = s.schedule(&view(&f));
        assert!(matches!(actions[0], Action::Decode { .. }));
    }

    #[test]
    fn ideal_chunk_follows_pd_ratio() {
        assert_eq!(SplitFuseScheduler::ideal_chunk_tokens(8_000.0, 200.0), 256);
        assert_eq!(
            SplitFuseScheduler::ideal_chunk_tokens(100_000.0, 100.0),
            1000
        );
        // Clamped at both ends.
        assert_eq!(SplitFuseScheduler::ideal_chunk_tokens(100.0, 1_000.0), 256);
        assert_eq!(SplitFuseScheduler::ideal_chunk_tokens(1e9, 1.0), 65_536);
    }

    #[test]
    fn oversized_requests_rejected() {
        let mut f = fixture();
        f.pending = vec![PendingRequest {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 2_000_000,
            prefilled_len: 0,
            max_output_len: 128,
        }];
        let mut s = SplitFuseScheduler::deepspeed_mii();
        let actions = s.schedule(&view(&f));
        assert!(actions.iter().any(|a| matches!(a, Action::Reject { .. })));
        assert!(!actions
            .iter()
            .any(|a| matches!(a, Action::ChunkedPrefill { .. })));
    }
}
