//! Memory-pressure policies: watermarks, victim selection, re-admission.
//!
//! With ample KV memory the schedulers reserve a request's full declared
//! output up front and pressure never occurs. Production serving cannot
//! afford that: declared bounds are loose, so real systems admit
//! optimistically and handle the (rare) exhaustion by trading memory for
//! something else — vLLM-style engines preempt a victim and *recompute* its
//! KV later, while a system with a host tier *swaps* the victim's KV to DRAM
//! over PCIe and restores it without recompute. This module implements both
//! policies behind one [`PressureConfig`]:
//!
//! * **Watermarks.** When device utilisation exceeds `high_watermark`, the
//!   policy evicts victims until projected utilisation drops to
//!   `low_watermark`; admission of new prefills pauses while above the high
//!   mark. When utilisation falls below the low mark, swapped requests are
//!   re-admitted one per scheduling point.
//! * **Victim selection** is deterministic and admission-rank-ordered: the
//!   decode-ready list is walked from the *newest* admission backwards
//!   (vLLM's preemption order), and the oldest decode-ready request is never
//!   evicted — the exemption that guarantees global progress, because the
//!   oldest request always runs to completion.
//! * **Fallback.** Under the swap policy, victims that do not fit on the
//!   host tier are preempted instead, so a saturated host degrades into the
//!   recompute policy rather than a livelock.
//!
//! The module only *selects*; the engine executes the returned actions,
//! mutates the pool, and charges PCIe transfer time.

use crate::types::{Action, SchedulerView};
use serde::{Deserialize, Serialize};

/// What to do with a victim's KV cache under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PressurePolicy {
    /// Discard the KV and recompute the request from its prompt later (the
    /// vLLM-style baseline behaviour, paper §7).
    Recompute,
    /// Park the KV on the host-DRAM tier and restore it once pressure
    /// clears (no recompute; pays PCIe transfer time instead).
    SwapToHost,
}

/// Tunables of the memory-pressure subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PressureConfig {
    /// The victim policy.
    pub policy: PressurePolicy,
    /// Device utilisation above which victims are evicted and admission
    /// pauses.
    pub high_watermark: f64,
    /// Eviction frees down to this utilisation; swapped requests re-admit
    /// below it.
    pub low_watermark: f64,
    /// Fraction of a request's declared output bound reserved at admission.
    /// `1.0` reproduces the conservative no-pressure reservation; `0.0` is
    /// fully optimistic admission (prompt plus one token), which is what
    /// makes pressure reachable in the first place.
    pub output_reserve_factor: f64,
}

impl PressureConfig {
    /// The preempt-and-recompute policy with default watermarks (90% high,
    /// 75% low) and fully optimistic admission.
    pub fn recompute() -> Self {
        PressureConfig {
            policy: PressurePolicy::Recompute,
            high_watermark: 0.90,
            low_watermark: 0.75,
            output_reserve_factor: 0.0,
        }
    }

    /// The swap-to-host policy with default watermarks and fully optimistic
    /// admission.
    pub fn swap_to_host() -> Self {
        PressureConfig {
            policy: PressurePolicy::SwapToHost,
            high_watermark: 0.90,
            low_watermark: 0.75,
            output_reserve_factor: 0.0,
        }
    }

    /// Validates the watermark ordering and ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.low_watermark && self.low_watermark <= self.high_watermark) {
            return Err(format!(
                "watermarks must satisfy 0 < low <= high, got low={} high={}",
                self.low_watermark, self.high_watermark
            ));
        }
        if self.high_watermark > 1.0 {
            return Err(format!(
                "high watermark must be <= 1, got {}",
                self.high_watermark
            ));
        }
        if !(0.0..=1.0).contains(&self.output_reserve_factor) {
            return Err(format!(
                "output reserve factor must be in [0, 1], got {}",
                self.output_reserve_factor
            ));
        }
        Ok(())
    }

    /// KV slots to reserve at admission for a pending request: the prompt,
    /// the configured fraction of the declared output bound, and at least
    /// one slot for the first generated token.
    pub fn admission_reserve(&self, input_len: u64, max_output_len: u64) -> u64 {
        let output = (max_output_len as f64 * self.output_reserve_factor).ceil() as u64;
        input_len + output.max(1)
    }

    /// Returns true if admission of new prefills should pause: utilisation
    /// at or above the *low* watermark. Admission stopping a band below
    /// eviction is what gives resident decoders growth headroom — pausing
    /// only at the high mark would let every admission round refill the
    /// pool to the eviction threshold and thrash.
    pub fn admission_paused(&self, view: &SchedulerView<'_>) -> bool {
        view.kv_utilization() >= self.low_watermark
    }

    /// KV slots one admission round may commit: enough to bring utilisation
    /// up to the low watermark and no further. Without this cap a single
    /// prefill round fills the whole free pool, overshooting the eviction
    /// threshold in one step and thrashing its own admissions back out.
    pub fn admission_budget(&self, view: &SchedulerView<'_>) -> u64 {
        let capacity = view.pool.total_capacity();
        let target = (self.low_watermark * capacity as f64).floor() as u64;
        // Active used only: retained prefixes are reclaimable, so they
        // must not consume admission headroom (see
        // [`SchedulerView::kv_utilization`]).
        target.saturating_sub(view.pool.active_used())
    }
}

/// Computes the pressure actions for the current scheduling point: victim
/// evictions while above the high watermark, one swap-in re-admission while
/// below the low watermark. Returns an empty list whenever utilisation sits
/// between the watermarks (or no eligible victim/returnee exists), so an
/// unpressured run emits no actions at all.
///
/// Suitable for schedulers over the *unified* pool, whose decode can route
/// around a single full instance; locality-constrained schedulers (the
/// independent baselines) should use
/// [`pressure_actions_with_rescue`] instead.
pub fn pressure_actions(view: &SchedulerView<'_>, config: &PressureConfig) -> Vec<Action> {
    pressure_actions_impl(view, config, false)
}

/// Like [`pressure_actions`], plus the full-instance stall rescue needed by
/// locality-constrained schedulers: each request decodes only on the single
/// instance holding its KV, so an instance with zero free slots can never
/// append another token — even while pool-global utilisation sits below the
/// watermarks (skewed growth across per-instance pools). For each full
/// instance the newest decode-ready resident is evicted; the globally
/// oldest request stays exempt so the progress argument holds.
pub fn pressure_actions_with_rescue(
    view: &SchedulerView<'_>,
    config: &PressureConfig,
) -> Vec<Action> {
    pressure_actions_impl(view, config, true)
}

fn pressure_actions_impl(
    view: &SchedulerView<'_>,
    config: &PressureConfig,
    rescue: bool,
) -> Vec<Action> {
    let capacity = view.pool.total_capacity();
    if capacity == 0 {
        return Vec::new();
    }
    // Active used only: a pool crowded by reclaimable retained prefixes is
    // not under pressure — evicting active decodes to make room for a
    // cache would be backwards.
    let used = view.pool.active_used();
    let utilization = used as f64 / capacity as f64;
    let mut actions = Vec::new();
    let mut victims: Vec<loong_simcore::ids::RequestId> = Vec::new();
    let mut host_free = view.host_free_slots();
    // Evicts one victim per the configured policy, falling back from swap
    // to preemption when the host tier cannot take it.
    let evict = |d: &crate::types::DecodingRequest,
                 tokens: u64,
                 host_free: &mut u64,
                 actions: &mut Vec<Action>| {
        match config.policy {
            PressurePolicy::SwapToHost if tokens <= *host_free => {
                *host_free -= tokens;
                actions.push(Action::SwapOut { request: d.id });
            }
            // Recompute policy, or a host tier too full to take the
            // victim: discard and recompute.
            _ => actions.push(Action::Preempt { request: d.id }),
        }
    };

    if utilization > config.high_watermark {
        // Evict newest-first down to the low watermark, exempting the
        // oldest decode-ready request (index 0) so the run always makes
        // progress.
        let target_used = (config.low_watermark * capacity as f64).floor() as u64;
        let mut need = used.saturating_sub(target_used);
        for d in view.decoding.iter().skip(1).rev() {
            if need == 0 {
                break;
            }
            let tokens = view.pool.tokens_of(d.id);
            if tokens == 0 {
                continue;
            }
            evict(d, tokens, &mut host_free, &mut actions);
            victims.push(d.id);
            need = need.saturating_sub(tokens);
        }
    }

    // Stall rescue, independent of the global watermarks (see
    // [`pressure_actions_with_rescue`]).
    if rescue {
        let oldest = view.decoding.first().map(|d| d.id);
        for (inst, free) in view.pool.free_slots() {
            // An instance whose only congestion is reclaimable retained
            // prefixes is not stalled: the engine evicts them the moment a
            // decode append needs the slot.
            if free + view.pool.prefix_retained_on(inst) > 0 {
                continue;
            }
            if let Some(d) = view.decoding.iter().rev().find(|d| {
                Some(d.id) != oldest && !victims.contains(&d.id) && d.kv_instances.contains(&inst)
            }) {
                let tokens = view.pool.tokens_of(d.id);
                if tokens == 0 {
                    continue;
                }
                evict(d, tokens, &mut host_free, &mut actions);
                victims.push(d.id);
            }
        }
    }

    if actions.is_empty() && utilization < config.low_watermark {
        // Re-admit the oldest swapped request, one per scheduling point,
        // when it fits below the high watermark (or unconditionally into an
        // empty pool, so oversized requests can always return eventually).
        if let Some(s) = view.swapped.first() {
            let head_used = (config.high_watermark * capacity as f64).floor() as u64;
            if used + s.tokens <= head_used || used == 0 {
                actions.push(Action::SwapIn {
                    request: s.id,
                    targets: view.registry.all_ids(),
                });
            }
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DecodingRequest, SwappedRequest};
    use loong_cluster::topology::ClusterSpec;
    use loong_esp::instance::InstanceRegistry;
    use loong_kvcache::unified::UnifiedKvPool;
    use loong_model::config::ModelConfig;
    use loong_model::roofline::CostModel;
    use loong_model::sib::ScalingInfoBase;
    use loong_simcore::ids::{InstanceId, RequestId};
    use loong_simcore::time::SimTime;

    struct Fixture {
        registry: InstanceRegistry,
        cost_model: CostModel,
        sib: ScalingInfoBase,
        pool: UnifiedKvPool,
        decoding: Vec<DecodingRequest>,
        swapped: Vec<SwappedRequest>,
    }

    fn fixture(capacity: u64, host: Option<u64>) -> Fixture {
        let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
        let mut pool = UnifiedKvPool::new(4, capacity);
        if let Some(h) = host {
            pool.enable_host_tier(h);
        }
        Fixture {
            registry,
            cost_model: CostModel::new(ModelConfig::lwm_1m_text()),
            sib: ScalingInfoBase::new(),
            pool,
            decoding: vec![],
            swapped: vec![],
        }
    }

    fn view<'a>(f: &'a Fixture) -> SchedulerView<'a> {
        SchedulerView {
            now: SimTime::ZERO,
            pending: &[],
            decoding: &f.decoding,
            swapped: &f.swapped,
            idle_instances: &[],
            busy_instances: &[],
            pool: &f.pool,
            registry: &f.registry,
            cost_model: &f.cost_model,
            sib: &f.sib,
            avg_decode_latency_s: 0.0,
        }
    }

    /// Fills the pool with `n` decode-ready requests of `tokens` each, in
    /// admission order 0..n.
    fn load(f: &mut Fixture, n: u64, tokens: u64) {
        for i in 0..n {
            f.pool
                .append(RequestId(i), InstanceId(i % 4), tokens)
                .expect("room");
            f.decoding.push(DecodingRequest {
                id: RequestId(i),
                context_len: tokens,
                generated: 1,
                decode_time_s: 0.0,
                kv_instances: vec![InstanceId(i % 4)],
            });
        }
    }

    #[test]
    fn no_actions_between_watermarks() {
        let mut f = fixture(1_000, Some(10_000));
        load(&mut f, 8, 400); // 3200 of 4000: 80%, between 75% and 90%
        let cfg = PressureConfig::swap_to_host();
        assert!(pressure_actions(&view(&f), &cfg).is_empty());
    }

    #[test]
    fn eviction_is_newest_first_and_exempts_the_oldest() {
        let mut f = fixture(1_000, None);
        load(&mut f, 8, 470); // 3760 of 4000: 94%
        let cfg = PressureConfig::recompute();
        let actions = pressure_actions(&view(&f), &cfg);
        // 94% -> 75% target frees 760 tokens = 2 victims (ceil), chosen
        // newest-first: requests 7, 6.
        let victims: Vec<RequestId> = actions
            .iter()
            .map(|a| match a {
                Action::Preempt { request } => *request,
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(victims, vec![RequestId(7), RequestId(6)]);
    }

    #[test]
    fn swap_policy_swaps_until_host_full_then_preempts() {
        let mut f = fixture(1_000, Some(500)); // host holds one victim only
        load(&mut f, 8, 470);
        let cfg = PressureConfig::swap_to_host();
        let actions = pressure_actions(&view(&f), &cfg);
        assert!(matches!(
            actions[0],
            Action::SwapOut {
                request: RequestId(7)
            }
        ));
        // The next victim does not fit on the 500-token host: preempted.
        assert!(actions[1..]
            .iter()
            .all(|a| matches!(a, Action::Preempt { .. })));
        assert_eq!(actions.len(), 2);
    }

    #[test]
    fn the_sole_decoder_is_never_evicted() {
        let mut f = fixture(1_000, None);
        // One request spread across every instance: 3900 of 4000 = 97.5%.
        for i in 0..4u64 {
            f.pool
                .append(RequestId(0), InstanceId(i), 975)
                .expect("room");
        }
        f.decoding.push(DecodingRequest {
            id: RequestId(0),
            context_len: 3_900,
            generated: 1,
            decode_time_s: 0.0,
            kv_instances: (0..4u64).map(InstanceId).collect(),
        });
        let cfg = PressureConfig::recompute();
        assert!(pressure_actions(&view(&f), &cfg).is_empty());
    }

    #[test]
    fn swap_in_readmits_oldest_when_pressure_clears() {
        let mut f = fixture(1_000, Some(10_000));
        load(&mut f, 2, 300); // 15% utilisation
        f.pool.swap_out(RequestId(0)).expect("host room");
        f.pool
            .append(RequestId(5), InstanceId(0), 200)
            .expect("room");
        f.pool.swap_out(RequestId(5)).expect("host room");
        f.decoding.retain(|d| d.id != RequestId(0));
        // Admission order: 0 first, then 5.
        f.swapped = vec![
            SwappedRequest {
                id: RequestId(0),
                context_len: 300,
                generated: 1,
                tokens: 300,
            },
            SwappedRequest {
                id: RequestId(5),
                context_len: 200,
                generated: 1,
                tokens: 200,
            },
        ];
        let cfg = PressureConfig::swap_to_host();
        let actions = pressure_actions(&view(&f), &cfg);
        assert_eq!(actions.len(), 1, "one re-admission per scheduling point");
        assert!(matches!(
            &actions[0],
            Action::SwapIn { request, .. } if *request == RequestId(0)
        ));
    }

    #[test]
    fn full_instance_rescue_fires_below_the_global_watermark() {
        // Instance 0 is 100% full while the pool sits at 40% — locality-
        // constrained decodes on instance 0 could never append again, so
        // the rescue must evict its newest resident even though the global
        // watermark says all is well.
        let mut f = fixture(1_000, None);
        for (i, inst) in [(0u64, 0u64), (1, 0), (2, 1)] {
            let tokens = if inst == 0 { 500 } else { 600 };
            f.pool
                .append(RequestId(i), InstanceId(inst), tokens)
                .expect("room");
            f.decoding.push(DecodingRequest {
                id: RequestId(i),
                context_len: tokens,
                generated: 1,
                decode_time_s: 0.0,
                kv_instances: vec![InstanceId(inst)],
            });
        }
        let cfg = PressureConfig::recompute();
        let actions = pressure_actions_with_rescue(&view(&f), &cfg);
        // Newest resident of the full instance 0 is request 1; request 0
        // (the globally oldest) stays exempt.
        assert_eq!(
            actions,
            vec![Action::Preempt {
                request: RequestId(1)
            }]
        );

        // With free slots everywhere, the rescue stays silent — and the
        // rescue-free variant never fires on full instances at all.
        let mut g = fixture(1_000, None);
        load(&mut g, 3, 300);
        assert!(pressure_actions_with_rescue(&view(&g), &cfg).is_empty());
        assert!(pressure_actions(&view(&f), &cfg).is_empty());
    }

    #[test]
    fn config_validation_and_reserve() {
        assert!(PressureConfig::recompute().validate().is_ok());
        assert!(PressureConfig::swap_to_host().validate().is_ok());
        let mut bad = PressureConfig::recompute();
        bad.low_watermark = 0.95;
        assert!(bad.validate().is_err());
        bad = PressureConfig::recompute();
        bad.high_watermark = 1.5;
        assert!(bad.validate().is_err());

        let cfg = PressureConfig::recompute();
        assert_eq!(cfg.admission_reserve(100, 64), 101);
        let mut half = cfg;
        half.output_reserve_factor = 0.5;
        assert_eq!(half.admission_reserve(100, 64), 132);
        let mut full = cfg;
        full.output_reserve_factor = 1.0;
        assert_eq!(full.admission_reserve(100, 64), 164);
    }
}
