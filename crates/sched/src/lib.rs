//! # loong-sched
//!
//! Scheduling policies for LoongServe-RS: the LoongServe global manager and
//! every baseline system used in the paper's evaluation.
//!
//! * [`types`] — the [`Scheduler`](types::Scheduler) trait, the view of
//!   system state schedulers observe, and the actions they emit,
//! * [`manager`] — the LoongServe global manager's four-step algorithm
//!   (dispatching, elastic instance allocation, DP batching, scaling plan
//!   generation; paper §5),
//! * [`baselines`] — vLLM-style static tensor parallelism, chunked prefill
//!   (DeepSpeed-MII / LightLLM SplitFuse), DistServe-style prefill–decode
//!   disaggregation, static hybrid TP×SP, and replicated instances,
//! * [`pressure`] — memory-pressure policies: watermark-driven victim
//!   selection (preempt-and-recompute vs swap-to-host) and re-admission,
//! * [`router`] — the fleet tier's cluster router: deterministic policies
//!   (round-robin, join-shortest-queue, least-KV-load,
//!   power-of-two-choices) assigning arriving requests to replicas,
//! * [`reliability`] — the dispatcher's failure handling: health-aware
//!   candidate sets, per-request retry budgets with exponential backoff,
//!   and a per-replica count/window circuit breaker,
//! * [`elastic`] — the elasticity tier's controllers: the target-tracking
//!   fleet [`Autoscaler`](elastic::Autoscaler) and the saturation-triggered
//!   [`AdmissionController`](elastic::AdmissionController) with class-priority
//!   shedding and hysteresis.
//!
//! # Examples
//!
//! ```
//! use loong_sched::prelude::*;
//!
//! let loongserve = LoongServeScheduler::new();
//! let vllm = IndependentInstancesScheduler::vllm();
//! assert_eq!(loongserve.name(), "LoongServe");
//! assert!(vllm.name().contains("vLLM"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod elastic;
pub mod manager;
pub mod pressure;
pub mod reliability;
pub mod router;
pub mod types;

pub use baselines::{
    DistServeScheduler, IndependentInstancesScheduler, SplitFuseScheduler, StaticHybridScheduler,
};
pub use elastic::{
    AdmissionConfig, AdmissionController, AdmissionDecision, Autoscaler, AutoscalerConfig,
    FleetSignals, ScaleDecision, ShedReason,
};
pub use manager::{LoongServeConfig, LoongServeScheduler};
pub use pressure::{
    pressure_actions, pressure_actions_with_rescue, PressureConfig, PressurePolicy,
};
pub use reliability::{healthy_candidates, CircuitBreaker, CircuitBreakerConfig, RetryPolicy};
pub use router::{all_replicas, FleetLoadTracker, ReplicaLoad, RouteRequest, Router, RouterPolicy};
pub use types::{
    Action, DecodingRequest, PendingRequest, ScalingEvent, ScalingEventKind, Scheduler,
    SchedulerView, SwappedRequest,
};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::baselines::{
        DistServeScheduler, IndependentInstancesScheduler, SplitFuseScheduler,
        StaticHybridScheduler,
    };
    pub use crate::elastic::{
        AdmissionConfig, AdmissionController, AdmissionDecision, Autoscaler, AutoscalerConfig,
        FleetSignals, ScaleDecision, ShedReason,
    };
    pub use crate::manager::{LoongServeConfig, LoongServeScheduler};
    pub use crate::pressure::{
        pressure_actions, pressure_actions_with_rescue, PressureConfig, PressurePolicy,
    };
    pub use crate::reliability::{
        healthy_candidates, CircuitBreaker, CircuitBreakerConfig, RetryPolicy,
    };
    pub use crate::router::{
        all_replicas, FleetLoadTracker, ReplicaLoad, RouteRequest, Router, RouterPolicy,
    };
    pub use crate::types::{
        Action, DecodingRequest, PendingRequest, ScalingEvent, ScalingEventKind, Scheduler,
        SchedulerView, SwappedRequest,
    };
}
