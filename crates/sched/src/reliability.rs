//! Reliability policies for the fleet tier: retry budgets with exponential
//! backoff, a per-replica circuit breaker, and candidate-set construction.
//!
//! The failure *schedule* lives in `loong-workload` (it is seeded sim-clock
//! event generation, like arrivals); this module owns the *policy* side the
//! dispatcher runs when those failures strike: which replicas are routable
//! right now ([`healthy_candidates`]), whether a casualty gets another
//! attempt and when ([`RetryPolicy`]), and when a crash-looping replica is
//! taken out of rotation even though the schedule says it is up
//! ([`CircuitBreaker`]).
//!
//! Everything here is deterministic and driven purely by the sim clock:
//! identical failure histories produce identical breaker decisions and
//! identical backoff instants, which is what lets the reliability proptests
//! pin outcome digests per seed.

use loong_simcore::ids::ReplicaId;
use loong_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-request retry budget with exponential backoff on the sim clock.
///
/// A request whose replica crashes mid-flight (or that was queued on the
/// crashed replica) is a *casualty*. Under `RetryPolicy::none()` every
/// casualty is terminally failed; otherwise it is re-submitted to the fleet
/// frontend `backoff(attempt)` after the crash, re-enters admission on a
/// (usually different) replica, and re-prefills from scratch — up to
/// `max_retries` times, after which it fails terminally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of re-submissions per request (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry, in sim-seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied per subsequent retry (2.0 = classic doubling).
    pub backoff_factor: f64,
}

impl RetryPolicy {
    /// No retries: every casualty fails terminally.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base_s: 0.0,
            backoff_factor: 2.0,
        }
    }

    /// A doubling backoff starting at `backoff_base_s`.
    pub fn exponential(max_retries: u32, backoff_base_s: f64) -> Self {
        assert!(backoff_base_s >= 0.0, "backoff must be non-negative");
        RetryPolicy {
            max_retries,
            backoff_base_s,
            backoff_factor: 2.0,
        }
    }

    /// Whether a request that has already been re-submitted `retries_used`
    /// times gets another attempt.
    pub fn allows(&self, retries_used: u32) -> bool {
        retries_used < self.max_retries
    }

    /// Backoff before retry number `attempt` (1-based: the first retry is
    /// attempt 1), i.e. `base * factor^(attempt-1)`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        assert!(attempt >= 1, "retry attempts are 1-based");
        let exp = (attempt - 1).min(62);
        SimDuration::from_secs(self.backoff_base_s * self.backoff_factor.powi(exp as i32))
    }
}

/// Configuration of the per-replica count/window circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreakerConfig {
    /// Failures within the window that trip the breaker.
    pub failure_threshold: u32,
    /// Length of the sliding failure-counting window, in sim-seconds.
    pub window_s: f64,
    /// How long a tripped breaker keeps the replica out of rotation, in
    /// sim-seconds.
    pub cooldown_s: f64,
}

impl CircuitBreakerConfig {
    /// A breaker tripping on `failure_threshold` failures within
    /// `window_s`, cooling down for `cooldown_s`.
    pub fn new(failure_threshold: u32, window_s: f64, cooldown_s: f64) -> Self {
        assert!(failure_threshold >= 1, "threshold must be at least 1");
        assert!(window_s > 0.0, "window must be positive");
        assert!(cooldown_s >= 0.0, "cooldown must be non-negative");
        CircuitBreakerConfig {
            failure_threshold,
            window_s,
            cooldown_s,
        }
    }
}

/// Per-replica count/window circuit breaker.
///
/// Tracks recent failures per replica on the sim clock. When a replica
/// accumulates `failure_threshold` failures within the trailing `window_s`
/// seconds, the breaker *opens*: the replica is excluded from routing for
/// `cooldown_s` seconds even if the failure schedule says it has recovered
/// — the dispatcher's defence against crash-looping hardware it cannot
/// introspect. Opening clears the failure history, so each open requires a
/// fresh run of failures. The breaker closes by timeout alone (at
/// `open-instant + cooldown_s`), the half-open probe being subsumed by
/// normal routing in a discrete-event setting.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: CircuitBreakerConfig,
    /// Failure instants within the current window, oldest first.
    failures: Vec<VecDeque<SimTime>>,
    /// Instant each replica's breaker closes again (ZERO = never opened).
    open_until: Vec<SimTime>,
    opens: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker for a fleet of `replicas`.
    pub fn new(config: CircuitBreakerConfig, replicas: usize) -> Self {
        assert!(replicas > 0, "a fleet needs at least one replica");
        CircuitBreaker {
            config,
            failures: vec![VecDeque::new(); replicas],
            open_until: vec![SimTime::ZERO; replicas],
            opens: 0,
        }
    }

    /// Records a failure attributed to `replica` at `now`. Returns `true`
    /// when this failure trips the breaker open.
    pub fn record_failure(&mut self, replica: ReplicaId, now: SimTime) -> bool {
        let window = SimDuration::from_secs(self.config.window_s);
        let history = &mut self.failures[replica.index()];
        history.push_back(now);
        while let Some(&oldest) = history.front() {
            if now.saturating_since(oldest) > window {
                history.pop_front();
            } else {
                break;
            }
        }
        if history.len() as u32 >= self.config.failure_threshold {
            history.clear();
            self.open_until[replica.index()] = now + SimDuration::from_secs(self.config.cooldown_s);
            self.opens += 1;
            true
        } else {
            false
        }
    }

    /// Whether `replica` is excluded from routing at `now` (open on
    /// `[trip, trip + cooldown)`).
    pub fn is_open(&self, replica: ReplicaId, now: SimTime) -> bool {
        now < self.open_until[replica.index()]
    }

    /// The instant `replica`'s breaker closes (ZERO if it never opened).
    pub fn open_until(&self, replica: ReplicaId) -> SimTime {
        self.open_until[replica.index()]
    }

    /// Total number of times any replica's breaker tripped open.
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

/// The routable candidate set of an `n`-replica fleet: every replica for
/// which `excluded` returns `false`, in strictly ascending id order — the
/// shape every [`Router`](crate::router::Router) requires.
///
/// May be empty (all replicas down); the caller owns the fallback, because
/// only it knows when each replica becomes routable again.
pub fn healthy_candidates(n: usize, mut excluded: impl FnMut(ReplicaId) -> bool) -> Vec<ReplicaId> {
    (0..n)
        .map(ReplicaId::from)
        .filter(|&r| !excluded(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_budget_and_backoff() {
        let policy = RetryPolicy::exponential(3, 0.5);
        assert!(policy.allows(0));
        assert!(policy.allows(2));
        assert!(!policy.allows(3));
        assert_eq!(policy.backoff(1), SimDuration::from_secs(0.5));
        assert_eq!(policy.backoff(2), SimDuration::from_secs(1.0));
        assert_eq!(policy.backoff(3), SimDuration::from_secs(2.0));
    }

    #[test]
    fn fail_fast_policy_allows_nothing() {
        let policy = RetryPolicy::none();
        assert!(!policy.allows(0));
    }

    #[test]
    fn breaker_trips_only_within_the_window() {
        let mut breaker = CircuitBreaker::new(CircuitBreakerConfig::new(2, 10.0, 30.0), 2);
        let r = ReplicaId(1);
        // Two failures 20s apart never coexist in a 10s window.
        assert!(!breaker.record_failure(r, SimTime::from_secs(0.0)));
        assert!(!breaker.record_failure(r, SimTime::from_secs(20.0)));
        assert!(!breaker.is_open(r, SimTime::from_secs(21.0)));
        // A second failure 5s after the last one trips it.
        assert!(breaker.record_failure(r, SimTime::from_secs(25.0)));
        assert_eq!(breaker.opens(), 1);
        assert!(breaker.is_open(r, SimTime::from_secs(25.0)));
        assert!(breaker.is_open(r, SimTime::from_secs(54.9)));
        // Closes exactly at trip + cooldown.
        assert!(!breaker.is_open(r, SimTime::from_secs(55.0)));
        assert_eq!(breaker.open_until(r), SimTime::from_secs(55.0));
        // The other replica was never affected.
        assert!(!breaker.is_open(ReplicaId(0), SimTime::from_secs(26.0)));
    }

    #[test]
    fn opening_clears_history_so_each_open_needs_a_fresh_run() {
        let mut breaker = CircuitBreaker::new(CircuitBreakerConfig::new(2, 100.0, 1.0), 1);
        let r = ReplicaId(0);
        assert!(!breaker.record_failure(r, SimTime::from_secs(1.0)));
        assert!(breaker.record_failure(r, SimTime::from_secs(2.0)));
        // One more failure inside the old window must NOT re-trip alone.
        assert!(!breaker.record_failure(r, SimTime::from_secs(3.0)));
        assert!(breaker.record_failure(r, SimTime::from_secs(4.0)));
        assert_eq!(breaker.opens(), 2);
    }

    #[test]
    fn healthy_candidates_is_sorted_and_filtered() {
        let down = [ReplicaId(0), ReplicaId(2)];
        assert_eq!(
            healthy_candidates(4, |r| down.contains(&r)),
            vec![ReplicaId(1), ReplicaId(3)]
        );
        assert!(healthy_candidates(2, |_| true).is_empty());
        assert_eq!(
            healthy_candidates(2, |_| false),
            vec![ReplicaId(0), ReplicaId(1)]
        );
    }

    #[test]
    fn policies_serialise() {
        let retry = RetryPolicy::exponential(2, 0.25);
        let json = serde_json::to_string(&retry).expect("serialise");
        let back: RetryPolicy = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(retry, back);

        let breaker = CircuitBreakerConfig::new(3, 60.0, 120.0);
        let json = serde_json::to_string(&breaker).expect("serialise");
        let back: CircuitBreakerConfig = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(breaker, back);
    }
}
