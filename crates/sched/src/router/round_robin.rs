//! Round-robin routing.

use super::{check_candidates, ReplicaLoad, RouteRequest, Router};
use loong_simcore::ids::ReplicaId;

/// Cycles through the routable replicas in id order: request *k* goes to
/// the *k mod |candidates|*-th healthy replica.
///
/// Oblivious to load, but on homogeneous replicas with exchangeable
/// requests it is the strongest simple baseline — and it is trivially
/// deterministic, needing neither seed nor tie-breaking. With every
/// replica routable the cycle is *k mod N* over replica ids, exactly the
/// pre-reliability behaviour; when replicas drop out the counter keeps
/// advancing by one per request, cycling over whatever sorted candidate
/// set each decision sees.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinRouter {
    next: u64,
}

impl RoundRobinRouter {
    /// Creates a round-robin router starting at the first candidate.
    pub fn new() -> Self {
        RoundRobinRouter { next: 0 }
    }
}

impl Router for RoundRobinRouter {
    fn name(&self) -> String {
        "round-robin".to_string()
    }

    fn route(
        &mut self,
        _request: &RouteRequest,
        loads: &[ReplicaLoad],
        candidates: &[ReplicaId],
    ) -> ReplicaId {
        check_candidates(loads, candidates);
        let choice = candidates[(self.next % candidates.len() as u64) as usize];
        self.next += 1;
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::super::all_replicas;
    use super::super::tests::req;
    use super::*;
    use crate::router::FleetLoadTracker;

    #[test]
    fn cycles_in_replica_id_order() {
        let mut router = RoundRobinRouter::new();
        let tracker = FleetLoadTracker::new(3);
        let all = all_replicas(3);
        let picks: Vec<u64> = (0..7)
            .map(|i| router.route(&req(i, 10, 10), tracker.loads(), &all).raw())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn excluded_replicas_are_skipped_without_stalling_the_cycle() {
        let mut router = RoundRobinRouter::new();
        let tracker = FleetLoadTracker::new(3);
        let healthy = [ReplicaId(0), ReplicaId(2)];
        // Replica 1 is unhealthy: the cycle covers {0, 2} in sorted order.
        let picks: Vec<u64> = (0..4)
            .map(|i| {
                router
                    .route(&req(i, 10, 10), tracker.loads(), &healthy)
                    .raw()
            })
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
        // When replica 1 recovers, the counter has still advanced one per
        // request, so the cycle re-phases deterministically.
        let all = all_replicas(3);
        assert_eq!(
            router.route(&req(9, 10, 10), tracker.loads(), &all),
            ReplicaId(1)
        );
    }
}
