//! Round-robin routing.

use super::{ReplicaLoad, RouteRequest, Router};
use loong_simcore::ids::ReplicaId;

/// Cycles through replicas in id order: request *k* goes to replica
/// *k mod N*.
///
/// Oblivious to load, but on homogeneous replicas with exchangeable
/// requests it is the strongest simple baseline — and it is trivially
/// deterministic, needing neither seed nor tie-breaking.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinRouter {
    next: u64,
}

impl RoundRobinRouter {
    /// Creates a round-robin router starting at replica 0.
    pub fn new() -> Self {
        RoundRobinRouter { next: 0 }
    }
}

impl Router for RoundRobinRouter {
    fn name(&self) -> String {
        "round-robin".to_string()
    }

    fn route(&mut self, _request: &RouteRequest, loads: &[ReplicaLoad]) -> ReplicaId {
        assert!(!loads.is_empty(), "cannot route over an empty fleet");
        let choice = ReplicaId(self.next % loads.len() as u64);
        self.next += 1;
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::req;
    use super::*;
    use crate::router::FleetLoadTracker;

    #[test]
    fn cycles_in_replica_id_order() {
        let mut router = RoundRobinRouter::new();
        let tracker = FleetLoadTracker::new(3);
        let picks: Vec<u64> = (0..7)
            .map(|i| router.route(&req(i, 10, 10), tracker.loads()).raw())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }
}
