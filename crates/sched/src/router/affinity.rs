//! Prefix-affinity routing for multi-turn workloads.

use super::{argmin_among, ReplicaLoad, RouteRequest, Router};
use loong_simcore::ids::{ConversationId, ReplicaId};
use std::collections::BTreeMap;

/// Routes follow-up turns to the replica that served their conversation's
/// previous turns — the replica whose unified KV pool retains the shared
/// prefix — and falls back to least-KV-load placement for first turns and
/// untagged requests.
///
/// Prefix reuse is replica-local: a retained prefix lives in one replica's
/// device pool, so a follow-up routed anywhere else re-prefills its whole
/// history no matter how good the cache is. Affinity is therefore the fleet
/// half of the prefix-cache tier. The conversation→replica map grows by one
/// entry per conversation (O(conversations) state, O(log n) per decision).
///
/// A pin is honoured only while the pinned replica is routable. When a
/// crash removes it from the candidate set, the conversation **re-pins**:
/// the fallback picks the least-KV candidate (shared [`argmin_among`]
/// tie-break) and the map is updated, because the crashed replica lost its
/// device pool — after recovery it holds nothing for this conversation, so
/// the *new* replica is now the only one that could retain the re-prefilled
/// prefix.
#[derive(Debug, Clone, Default)]
pub struct PrefixAffinityRouter {
    assigned: BTreeMap<ConversationId, ReplicaId>,
}

impl PrefixAffinityRouter {
    /// Creates a prefix-affinity router with an empty conversation map.
    pub fn new() -> Self {
        PrefixAffinityRouter {
            assigned: BTreeMap::new(),
        }
    }

    /// Number of conversations with a pinned replica.
    pub fn conversations(&self) -> usize {
        self.assigned.len()
    }
}

impl Router for PrefixAffinityRouter {
    fn name(&self) -> String {
        "prefix-affinity".to_string()
    }

    fn route(
        &mut self,
        request: &RouteRequest,
        loads: &[ReplicaLoad],
        candidates: &[ReplicaId],
    ) -> ReplicaId {
        let Some(conversation) = request.conversation else {
            return argmin_among(loads, candidates, |l| l.kv_tokens);
        };
        if let Some(&replica) = self.assigned.get(&conversation) {
            if candidates.binary_search(&replica).is_ok() {
                return replica;
            }
        }
        let replica = argmin_among(loads, candidates, |l| l.kv_tokens);
        self.assigned.insert(conversation, replica);
        replica
    }

    /// Drops every pin to the retired replica. Crash re-pinning (above) is
    /// lazy — the pin is replaced on the conversation's next turn — but
    /// that is only sound while the replica *might* return with its id. A
    /// retired replica's pool is gone for good, and the id may later be
    /// re-activated as a **cold** replica; a surviving pin would then route
    /// follow-ups to a pool that holds nothing of their prefix. Removal
    /// therefore durably un-pins, and the next turn re-pins by least-KV.
    fn on_replica_removed(&mut self, replica: ReplicaId) {
        self.assigned.retain(|_, &mut pinned| pinned != replica);
    }
}

#[cfg(test)]
mod tests {
    use super::super::all_replicas;
    use super::super::tests::req;
    use super::*;
    use crate::router::FleetLoadTracker;

    fn conv_req(id: u64, input: u64, conversation: u64) -> RouteRequest {
        RouteRequest {
            conversation: Some(ConversationId(conversation)),
            ..req(id, input, 64)
        }
    }

    #[test]
    fn follow_ups_stick_to_the_first_turn_replica() {
        let mut router = PrefixAffinityRouter::new();
        let mut tracker = FleetLoadTracker::new(2);
        let all = all_replicas(2);
        // Turn 0 of conversation 7 lands on the emptiest replica (0).
        let first = conv_req(0, 1_000, 7);
        let r0 = router.route(&first, tracker.loads(), &all);
        assert_eq!(r0, ReplicaId(0));
        tracker.on_assign(r0, &first);
        // Load replica 0 heavily: a fresh conversation prefers replica 1...
        tracker.on_assign(ReplicaId(0), &req(1, 500_000, 64));
        assert_eq!(
            router.route(&conv_req(2, 1_000, 8), tracker.loads(), &all),
            ReplicaId(1)
        );
        // ...but conversation 7's follow-up still goes to replica 0, where
        // its prefix is retained.
        assert_eq!(
            router.route(&conv_req(3, 3_000, 7), tracker.loads(), &all),
            ReplicaId(0)
        );
        assert_eq!(router.conversations(), 2);
    }

    #[test]
    fn untagged_requests_fall_back_to_least_kv() {
        let mut router = PrefixAffinityRouter::new();
        let mut tracker = FleetLoadTracker::new(2);
        let all = all_replicas(2);
        tracker.on_assign(ReplicaId(0), &req(0, 50_000, 64));
        assert_eq!(
            router.route(&req(1, 10, 10), tracker.loads(), &all),
            ReplicaId(1)
        );
        assert_eq!(router.conversations(), 0);
    }

    #[test]
    fn retired_pin_is_dropped_and_does_not_resurrect_cold() {
        let mut router = PrefixAffinityRouter::new();
        let mut tracker = FleetLoadTracker::new(3);
        let all = all_replicas(3);
        // Conversation 5 pins to replica 0 (emptiest), 7 to replica 1.
        let first = conv_req(0, 2_000, 5);
        assert_eq!(router.route(&first, tracker.loads(), &all), ReplicaId(0));
        tracker.on_assign(ReplicaId(0), &first);
        let r = conv_req(1, 1_000, 7);
        assert_eq!(router.route(&r, tracker.loads(), &all), ReplicaId(1));
        tracker.on_assign(ReplicaId(1), &r);
        assert_eq!(router.conversations(), 2);

        // Replica 0 drains and retires: its pin must be dropped durably,
        // pins to other replicas untouched.
        router.on_replica_removed(ReplicaId(0));
        assert_eq!(router.conversations(), 1);

        // The id later re-activates as a *cold* replica with an empty pool
        // and zero tracked load. Without the removal hook, the stale pin
        // would be "routable" again and send the follow-up to a pool that
        // holds nothing; with it, the conversation re-pins by least-KV —
        // which is the cold replica on merit (emptiest), and durably so.
        let mut cold = FleetLoadTracker::new(3);
        cold.on_assign(ReplicaId(1), &req(90, 50_000, 64));
        cold.on_assign(ReplicaId(2), &req(91, 40_000, 64));
        let follow_up = conv_req(3, 4_000, 5);
        let repinned = router.route(&follow_up, cold.loads(), &all);
        assert_eq!(repinned, ReplicaId(0), "re-pin is by load, not stale state");
        assert_eq!(router.conversations(), 2);
        // Conversation 7's pin to replica 1 survived the removal.
        assert_eq!(
            router.route(&conv_req(4, 1_000, 7), cold.loads(), &all),
            ReplicaId(1)
        );
    }

    #[test]
    fn crashed_pin_re_pins_to_a_healthy_candidate() {
        let mut router = PrefixAffinityRouter::new();
        let mut tracker = FleetLoadTracker::new(3);
        let all = all_replicas(3);
        // Conversation 5 pins to replica 0.
        let first = conv_req(0, 2_000, 5);
        assert_eq!(router.route(&first, tracker.loads(), &all), ReplicaId(0));
        tracker.on_assign(ReplicaId(0), &first);
        // Replica 0 crashes: the follow-up must re-pin among {1, 2}; with
        // replica 2 lighter in KV, it wins over the old pin *and* over the
        // lower-id healthy replica.
        tracker.on_assign(ReplicaId(1), &req(1, 9_000, 64));
        let healthy = [ReplicaId(1), ReplicaId(2)];
        assert_eq!(
            router.route(&conv_req(2, 2_000, 5), tracker.loads(), &healthy),
            ReplicaId(2)
        );
        // The re-pin is durable: once replica 0 recovers (empty pool), the
        // conversation stays with replica 2, which now holds its prefix.
        assert_eq!(
            router.route(&conv_req(3, 2_000, 5), tracker.loads(), &all),
            ReplicaId(2)
        );
        assert_eq!(router.conversations(), 1);
    }
}
