//! Prefix-affinity routing for multi-turn workloads.

use super::{argmin_by_key, ReplicaLoad, RouteRequest, Router};
use loong_simcore::ids::{ConversationId, ReplicaId};
use std::collections::BTreeMap;

/// Routes follow-up turns to the replica that served their conversation's
/// previous turns — the replica whose unified KV pool retains the shared
/// prefix — and falls back to least-KV-load placement for first turns and
/// untagged requests.
///
/// Prefix reuse is replica-local: a retained prefix lives in one replica's
/// device pool, so a follow-up routed anywhere else re-prefills its whole
/// history no matter how good the cache is. Affinity is therefore the fleet
/// half of the prefix-cache tier. The conversation→replica map grows by one
/// entry per conversation (O(conversations) state, O(log n) per decision)
/// and is never invalidated: even if the replica has since evicted the
/// prefix, it remains the only replica that could still hold it.
#[derive(Debug, Clone, Default)]
pub struct PrefixAffinityRouter {
    assigned: BTreeMap<ConversationId, ReplicaId>,
}

impl PrefixAffinityRouter {
    /// Creates a prefix-affinity router with an empty conversation map.
    pub fn new() -> Self {
        PrefixAffinityRouter {
            assigned: BTreeMap::new(),
        }
    }

    /// Number of conversations with a pinned replica.
    pub fn conversations(&self) -> usize {
        self.assigned.len()
    }
}

impl Router for PrefixAffinityRouter {
    fn name(&self) -> String {
        "prefix-affinity".to_string()
    }

    fn route(&mut self, request: &RouteRequest, loads: &[ReplicaLoad]) -> ReplicaId {
        let Some(conversation) = request.conversation else {
            return argmin_by_key(loads, |l| l.kv_tokens);
        };
        if let Some(&replica) = self.assigned.get(&conversation) {
            return replica;
        }
        let replica = argmin_by_key(loads, |l| l.kv_tokens);
        self.assigned.insert(conversation, replica);
        replica
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::req;
    use super::*;
    use crate::router::FleetLoadTracker;

    fn conv_req(id: u64, input: u64, conversation: u64) -> RouteRequest {
        RouteRequest {
            conversation: Some(ConversationId(conversation)),
            ..req(id, input, 64)
        }
    }

    #[test]
    fn follow_ups_stick_to_the_first_turn_replica() {
        let mut router = PrefixAffinityRouter::new();
        let mut tracker = FleetLoadTracker::new(2);
        // Turn 0 of conversation 7 lands on the emptiest replica (0).
        let first = conv_req(0, 1_000, 7);
        let r0 = router.route(&first, tracker.loads());
        assert_eq!(r0, ReplicaId(0));
        tracker.on_assign(r0, &first);
        // Load replica 0 heavily: a fresh conversation prefers replica 1...
        tracker.on_assign(ReplicaId(0), &req(1, 500_000, 64));
        assert_eq!(
            router.route(&conv_req(2, 1_000, 8), tracker.loads()),
            ReplicaId(1)
        );
        // ...but conversation 7's follow-up still goes to replica 0, where
        // its prefix is retained.
        assert_eq!(
            router.route(&conv_req(3, 3_000, 7), tracker.loads()),
            ReplicaId(0)
        );
        assert_eq!(router.conversations(), 2);
    }

    #[test]
    fn untagged_requests_fall_back_to_least_kv() {
        let mut router = PrefixAffinityRouter::new();
        let mut tracker = FleetLoadTracker::new(2);
        tracker.on_assign(ReplicaId(0), &req(0, 50_000, 64));
        assert_eq!(router.route(&req(1, 10, 10), tracker.loads()), ReplicaId(1));
        assert_eq!(router.conversations(), 0);
    }
}
