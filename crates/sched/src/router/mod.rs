//! The cluster router: assigning arriving requests to fleet replicas.
//!
//! LoongServe's elastic groups live inside one replica (one 8-GPU node with
//! its own global manager and unified KV pool). Serving "heavy traffic from
//! millions of users" needs a tier above that: a fleet of replicas behind a
//! dispatcher that decides, per arriving request, which replica serves it —
//! the same tier DistServe assumes above its prefill/decode pools. This
//! module is that dispatcher's policy layer.
//!
//! A [`Router`] sees one [`RouteRequest`] at a time, in arrival order, plus
//! the fleet's per-replica [`ReplicaLoad`] snapshot, and returns the
//! [`ReplicaId`] to serve it. Load accounting is owned by the
//! [`FleetLoadTracker`], which the fleet engine updates **incrementally** —
//! O(1) per assignment — so routing never scans a replica's full request
//! table, preserving the engine's O(active) invariant at fleet scope.
//!
//! Every shipped policy is deterministic: identically-seeded runs route
//! identically, bit for bit. Ties are always broken by the lowest
//! [`ReplicaId`] (loads are iterated in replica-id order with a
//! strictly-less comparison), and the power-of-two-choices policy draws its
//! probe pairs from a seeded [`SimRng`] substream.

mod affinity;
mod jsq;
mod least_kv;
mod p2c;
mod passthrough;
mod round_robin;

pub use affinity::PrefixAffinityRouter;
pub use jsq::JoinShortestQueueRouter;
pub use least_kv::LeastKvLoadRouter;
pub use p2c::PowerOfTwoChoicesRouter;
pub use passthrough::PassthroughRouter;
pub use round_robin::RoundRobinRouter;

use loong_simcore::ids::{ConversationId, ReplicaId, RequestId};
use loong_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// What the router may observe about an arriving request.
///
/// Mirrors what a real cluster frontend knows at admission time: the prompt
/// length and the user-declared output bound — never the true output length,
/// which the simulator knows but hides from all policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteRequest {
    /// The request.
    pub id: RequestId,
    /// Arrival time at the fleet frontend.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub input_len: u64,
    /// User-declared bound on the output length.
    pub max_output_len: u64,
    /// The request's conversation, if it is a multi-turn follow-up. A real
    /// frontend knows this at admission (it is the session the request
    /// arrived on), so affinity policies may use it.
    pub conversation: Option<ConversationId>,
}

impl RouteRequest {
    /// Worst-case tokens the request will queue behind it: prompt plus the
    /// declared output bound (the router's analogue of queued work).
    pub fn queued_tokens(&self) -> u64 {
        self.input_len + self.max_output_len
    }
}

/// Incrementally maintained load statistics of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaLoad {
    /// The replica these statistics describe.
    pub replica: ReplicaId,
    /// Requests assigned to this replica so far.
    pub assigned_requests: u64,
    /// Sum of `input_len + max_output_len` over assigned requests — the
    /// worst-case queued work, the join-shortest-queue criterion.
    pub queued_tokens: u64,
    /// Sum of `input_len` over assigned requests — the dominant KV-cache
    /// footprint for long-context workloads, the least-KV-load criterion.
    pub kv_tokens: u64,
}

impl ReplicaLoad {
    fn new(replica: ReplicaId) -> Self {
        ReplicaLoad {
            replica,
            assigned_requests: 0,
            queued_tokens: 0,
            kv_tokens: 0,
        }
    }
}

/// The fleet's per-replica load accounting.
///
/// Owned by the fleet engine, shown read-only to routers. Updates are O(1)
/// per assignment: running sums only, never a scan of assigned requests.
#[derive(Debug, Clone)]
pub struct FleetLoadTracker {
    loads: Vec<ReplicaLoad>,
}

impl FleetLoadTracker {
    /// Creates a tracker for `replicas` idle replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "a fleet needs at least one replica");
        FleetLoadTracker {
            loads: (0..replicas)
                .map(|r| ReplicaLoad::new(ReplicaId::from(r)))
                .collect(),
        }
    }

    /// The per-replica loads, in replica-id order.
    pub fn loads(&self) -> &[ReplicaLoad] {
        &self.loads
    }

    /// Number of replicas tracked.
    pub fn replicas(&self) -> usize {
        self.loads.len()
    }

    /// Accounts `request` as assigned to `replica`.
    ///
    /// # Panics
    ///
    /// Panics if the replica is out of range.
    pub fn on_assign(&mut self, replica: ReplicaId, request: &RouteRequest) {
        let load = &mut self.loads[replica.index()];
        load.assigned_requests += 1;
        load.queued_tokens += request.queued_tokens();
        load.kv_tokens += request.input_len;
    }
}

/// The routing-policy interface.
///
/// Implementations must be deterministic: the same construction parameters
/// and the same sequence of `route` calls must produce the same assignments.
pub trait Router {
    /// Human-readable name used in reports (e.g. "round-robin").
    fn name(&self) -> String;

    /// Chooses the replica to serve `request` from `candidates`. `loads`
    /// is the fleet's current per-replica accounting, in replica-id order;
    /// `candidates` is the **routable** subset — healthy replicas, in
    /// strictly ascending id order, never empty (see
    /// [`crate::reliability::healthy_candidates`]) — and the returned id
    /// must be one of them. A failure-free fleet passes every replica
    /// ([`all_replicas`]), which reproduces the pre-reliability behaviour
    /// of every policy bit for bit.
    fn route(
        &mut self,
        request: &RouteRequest,
        loads: &[ReplicaLoad],
        candidates: &[ReplicaId],
    ) -> ReplicaId;

    /// Notifies the policy that `replica` has been **removed** from the
    /// fleet (drained and retired by a scale-down, as opposed to a crash
    /// it may come back from). Stateless policies ignore this; stateful
    /// ones must drop any durable preference for the replica — a retired
    /// replica's device pool is gone, so a pin that survives removal would
    /// silently become valid again if the id is later re-activated cold.
    fn on_replica_removed(&mut self, _replica: ReplicaId) {}
}

/// The full candidate set: every replica of an `n`-replica fleet, in
/// ascending id order. What a fleet without health tracking routes over.
pub fn all_replicas(n: usize) -> Vec<ReplicaId> {
    (0..n).map(ReplicaId::from).collect()
}

/// Validates a candidate set: non-empty, strictly ascending, in range of
/// `loads`. Debug-only on the hot path; policies call it on entry so every
/// policy rejects a malformed set the same way.
pub(crate) fn check_candidates(loads: &[ReplicaLoad], candidates: &[ReplicaId]) {
    assert!(
        !candidates.is_empty(),
        "cannot route over an empty candidate set"
    );
    debug_assert!(
        candidates.windows(2).all(|w| w[0] < w[1]),
        "candidates must be strictly ascending"
    );
    debug_assert!(
        candidates.last().expect("non-empty").index() < loads.len(),
        "candidate out of range of the load table"
    );
}

/// Selects the candidate minimising `key`, breaking ties towards the
/// lowest replica id. This is the **one** sorted-candidate tie-break all
/// load-comparing policies share (JSQ, least-KV, the affinity fallback):
/// candidates are iterated in ascending id order with a strictly-less
/// comparison, so no policy can diverge on tie-break order when the
/// candidate set shrinks around a failure.
pub(crate) fn argmin_among(
    loads: &[ReplicaLoad],
    candidates: &[ReplicaId],
    key: impl Fn(&ReplicaLoad) -> u64,
) -> ReplicaId {
    check_candidates(loads, candidates);
    let mut best = candidates[0];
    let mut best_key = key(&loads[best.index()]);
    for &candidate in &candidates[1..] {
        let k = key(&loads[candidate.index()]);
        if k < best_key {
            best = candidate;
            best_key = k;
        }
    }
    best
}

/// The deterministic routing policies shipped with the fleet tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Every request goes to replica 0. The single-replica identity policy:
    /// a 1-replica fleet under `Passthrough` must be bit-for-bit identical
    /// to a bare serving engine.
    Passthrough,
    /// Cycle through replicas in id order.
    RoundRobin,
    /// Join the replica with the fewest queued tokens
    /// (`input_len + max_output_len` running sum).
    JoinShortestQueue,
    /// Join the replica with the smallest KV-cache footprint
    /// (`input_len` running sum).
    LeastKvLoad,
    /// Probe two distinct replicas drawn from a seeded RNG and join the one
    /// with fewer queued tokens.
    PowerOfTwoChoices {
        /// Seed of the probe-order RNG substream.
        seed: u64,
    },
    /// Pin every conversation to the replica that served its first turn
    /// (where the prefix cache retains its context); first turns and
    /// untagged requests fall back to least-KV-load placement.
    PrefixAffinity,
}

impl RouterPolicy {
    /// All four fleet routing policies compared in the fleet experiments
    /// (passthrough is the single-replica identity, not a policy to sweep).
    pub fn all_policies() -> Vec<RouterPolicy> {
        vec![
            RouterPolicy::RoundRobin,
            RouterPolicy::JoinShortestQueue,
            RouterPolicy::LeastKvLoad,
            RouterPolicy::PowerOfTwoChoices { seed: 0x90f1ee7 },
            RouterPolicy::PrefixAffinity,
        ]
    }

    /// Every shipped policy including the passthrough identity — the set
    /// the reliability suites quantify determinism over.
    pub fn all_policies_with_passthrough() -> Vec<RouterPolicy> {
        let mut policies = Self::all_policies();
        policies.push(RouterPolicy::Passthrough);
        policies
    }

    /// Builds the router implementing this policy.
    pub fn build(&self) -> Box<dyn Router> {
        match *self {
            RouterPolicy::Passthrough => Box::new(PassthroughRouter::new()),
            RouterPolicy::RoundRobin => Box::new(RoundRobinRouter::new()),
            RouterPolicy::JoinShortestQueue => Box::new(JoinShortestQueueRouter::new()),
            RouterPolicy::LeastKvLoad => Box::new(LeastKvLoadRouter::new()),
            RouterPolicy::PowerOfTwoChoices { seed } => {
                Box::new(PowerOfTwoChoicesRouter::new(seed))
            }
            RouterPolicy::PrefixAffinity => Box::new(PrefixAffinityRouter::new()),
        }
    }

    /// The report label.
    pub fn label(&self) -> &'static str {
        match self {
            RouterPolicy::Passthrough => "passthrough",
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::JoinShortestQueue => "join-shortest-queue",
            RouterPolicy::LeastKvLoad => "least-kv-load",
            RouterPolicy::PowerOfTwoChoices { .. } => "power-of-two-choices",
            RouterPolicy::PrefixAffinity => "prefix-affinity",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) fn req(id: u64, input_len: u64, max_output_len: u64) -> RouteRequest {
        RouteRequest {
            id: RequestId(id),
            arrival: SimTime::from_secs(id as f64),
            input_len,
            max_output_len,
            conversation: None,
        }
    }

    #[test]
    fn tracker_accumulates_o1_running_sums() {
        let mut tracker = FleetLoadTracker::new(2);
        tracker.on_assign(ReplicaId(0), &req(0, 100, 50));
        tracker.on_assign(ReplicaId(1), &req(1, 10, 5));
        tracker.on_assign(ReplicaId(0), &req(2, 1, 1));
        let loads = tracker.loads();
        assert_eq!(loads[0].assigned_requests, 2);
        assert_eq!(loads[0].queued_tokens, 152);
        assert_eq!(loads[0].kv_tokens, 101);
        assert_eq!(loads[1].assigned_requests, 1);
        assert_eq!(loads[1].queued_tokens, 15);
        assert_eq!(loads[1].kv_tokens, 10);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_fleet_is_rejected() {
        let _ = FleetLoadTracker::new(0);
    }

    #[test]
    fn argmin_breaks_ties_towards_lowest_replica() {
        let mut tracker = FleetLoadTracker::new(3);
        let all = all_replicas(3);
        // All loads equal: the winner must be replica 0.
        assert_eq!(
            argmin_among(tracker.loads(), &all, |l| l.queued_tokens),
            ReplicaId(0)
        );
        // Make replica 0 heavier; 1 and 2 tie at zero -> replica 1 wins.
        tracker.on_assign(ReplicaId(0), &req(0, 10, 10));
        assert_eq!(
            argmin_among(tracker.loads(), &all, |l| l.queued_tokens),
            ReplicaId(1)
        );
    }

    #[test]
    fn argmin_only_considers_candidates() {
        let tracker = FleetLoadTracker::new(4);
        // All loads tie at zero, but replica 0 is not a candidate: the
        // lowest *candidate* id wins, not the lowest replica id.
        assert_eq!(
            argmin_among(tracker.loads(), &[ReplicaId(2), ReplicaId(3)], |l| l
                .queued_tokens),
            ReplicaId(2)
        );
    }

    #[test]
    #[should_panic(expected = "empty candidate set")]
    fn empty_candidate_set_is_rejected() {
        let tracker = FleetLoadTracker::new(2);
        let _ = argmin_among(tracker.loads(), &[], |l| l.queued_tokens);
    }

    #[test]
    fn all_replicas_is_the_ascending_identity_set() {
        assert_eq!(
            all_replicas(3),
            vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)]
        );
        assert!(all_replicas(0).is_empty());
    }

    #[test]
    fn policy_factory_builds_matching_names() {
        for policy in RouterPolicy::all_policies() {
            let router = policy.build();
            assert_eq!(router.name(), policy.label());
        }
        assert_eq!(RouterPolicy::Passthrough.build().name(), "passthrough");
    }

    #[test]
    fn policies_serialise() {
        let p = RouterPolicy::PowerOfTwoChoices { seed: 7 };
        let json = serde_json::to_string(&p).expect("serialise");
        let back: RouterPolicy = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(p, back);
    }
}
