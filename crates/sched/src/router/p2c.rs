//! Power-of-two-choices routing with a seeded probe order.

use super::{check_candidates, ReplicaLoad, RouteRequest, Router};
use loong_simcore::ids::ReplicaId;
use loong_simcore::rng::SimRng;
use rand::Rng;

/// Probes two distinct candidate replicas drawn from a seeded RNG and joins
/// the one with fewer queued tokens.
///
/// The classic load-balancing result: sampling two queues and joining the
/// shorter one gets exponentially close to join-shortest-queue while
/// probing O(1) replicas per request — the shape that matters once a fleet
/// is too large to scan. The probe pair comes from a [`SimRng`] substream
/// seeded at construction, so identically-seeded runs probe — and therefore
/// route — identically. Probes are drawn as *indices into the sorted
/// candidate slice*, so with the full fleet routable the draws are exactly
/// the pre-reliability ones (bit-for-bit replay), and with a shrunken set
/// every draw still lands on a healthy replica. A probe-pair tie breaks
/// towards the lower candidate index — the lower replica id, since
/// candidates are sorted — independent of draw order.
#[derive(Debug, Clone)]
pub struct PowerOfTwoChoicesRouter {
    rng: SimRng,
}

impl PowerOfTwoChoicesRouter {
    /// Creates a power-of-two-choices router with the given probe seed.
    pub fn new(seed: u64) -> Self {
        PowerOfTwoChoicesRouter {
            rng: SimRng::seed(seed).fork("p2c-probes"),
        }
    }
}

impl Router for PowerOfTwoChoicesRouter {
    fn name(&self) -> String {
        "power-of-two-choices".to_string()
    }

    fn route(
        &mut self,
        _request: &RouteRequest,
        loads: &[ReplicaLoad],
        candidates: &[ReplicaId],
    ) -> ReplicaId {
        check_candidates(loads, candidates);
        let n = candidates.len();
        if n == 1 {
            return candidates[0];
        }
        // Two distinct probes: draw the first uniformly, the second from
        // the remaining n-1 slots, shifted past the first. For a fixed
        // candidate count of two or more, every request costs exactly two
        // RNG draws regardless of the outcome, so the probe stream stays
        // aligned across replays; a single candidate (handled above) needs
        // none.
        let first = self.rng.gen_range(0..n);
        let mut second = self.rng.gen_range(0..n - 1);
        if second >= first {
            second += 1;
        }
        // Compare in candidate order so a tie breaks to the lower id no
        // matter in which order the probes were drawn.
        let (lo, hi) = (first.min(second), first.max(second));
        let (lo, hi) = (candidates[lo], candidates[hi]);
        if loads[hi.index()].queued_tokens < loads[lo.index()].queued_tokens {
            hi
        } else {
            lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::all_replicas;
    use super::super::tests::req;
    use super::*;
    use crate::router::FleetLoadTracker;

    #[test]
    fn identical_seeds_probe_identically() {
        let tracker = FleetLoadTracker::new(8);
        let all = all_replicas(8);
        let route_all = |seed: u64| -> Vec<u64> {
            let mut router = PowerOfTwoChoicesRouter::new(seed);
            (0..64)
                .map(|i| router.route(&req(i, 100, 10), tracker.loads(), &all).raw())
                .collect()
        };
        assert_eq!(route_all(42), route_all(42));
        assert_ne!(route_all(42), route_all(43), "seeds must matter");
    }

    #[test]
    fn prefers_the_less_loaded_probe() {
        let mut tracker = FleetLoadTracker::new(2);
        let all = all_replicas(2);
        // With two replicas the probe pair is always {0, 1}.
        tracker.on_assign(ReplicaId(0), &req(0, 10_000, 64));
        let mut router = PowerOfTwoChoicesRouter::new(7);
        for i in 0..16 {
            assert_eq!(
                router.route(&req(i, 10, 10), tracker.loads(), &all),
                ReplicaId(1)
            );
        }
    }

    #[test]
    fn probe_tie_breaks_to_lower_replica_id() {
        let tracker = FleetLoadTracker::new(2);
        let all = all_replicas(2);
        let mut router = PowerOfTwoChoicesRouter::new(11);
        // All loads are zero, so every probe pair ties; with two replicas
        // the pair is {0, 1} and the lower id must always win.
        for i in 0..16 {
            assert_eq!(
                router.route(&req(i, 10, 10), tracker.loads(), &all),
                ReplicaId(0)
            );
        }
    }

    #[test]
    fn single_replica_needs_no_draws() {
        let tracker = FleetLoadTracker::new(1);
        let all = all_replicas(1);
        let mut router = PowerOfTwoChoicesRouter::new(3);
        assert_eq!(
            router.route(&req(0, 10, 10), tracker.loads(), &all),
            ReplicaId(0)
        );
    }

    #[test]
    fn probes_never_land_on_excluded_replicas() {
        let tracker = FleetLoadTracker::new(4);
        let healthy = [ReplicaId(1), ReplicaId(3)];
        let mut router = PowerOfTwoChoicesRouter::new(5);
        // Probes are indices into the candidate slice, so replicas 0 and 2
        // are unreachable no matter what the RNG draws; all loads tie, so
        // the lower candidate id wins every time.
        for i in 0..32 {
            assert_eq!(
                router.route(&req(i, 10, 10), tracker.loads(), &healthy),
                ReplicaId(1)
            );
        }
    }

    #[test]
    fn single_candidate_keeps_probe_stream_aligned() {
        // A decision over one candidate must not consume RNG draws: the
        // probe sequence after the degenerate call matches a router that
        // never saw it.
        let tracker = FleetLoadTracker::new(4);
        let all = all_replicas(4);
        let mut skipped = PowerOfTwoChoicesRouter::new(9);
        let mut fresh = PowerOfTwoChoicesRouter::new(9);
        assert_eq!(
            skipped.route(&req(0, 10, 10), tracker.loads(), &[ReplicaId(2)]),
            ReplicaId(2)
        );
        for i in 1..32 {
            assert_eq!(
                skipped.route(&req(i, 10, 10), tracker.loads(), &all),
                fresh.route(&req(i, 10, 10), tracker.loads(), &all)
            );
        }
    }
}
