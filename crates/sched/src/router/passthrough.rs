//! The single-replica identity router.

use super::{ReplicaLoad, RouteRequest, Router};
use loong_simcore::ids::ReplicaId;

/// Routes every request to replica 0.
///
/// This is the identity of the fleet tier: a 1-replica fleet under
/// passthrough must produce the bare serving engine's outcome bit for bit
/// (pinned by `tests/fleet_equivalence.rs`). It also works over larger
/// fleets — as the degenerate "no load balancing" baseline — but that is
/// only useful for experiments about imbalance.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassthroughRouter;

impl PassthroughRouter {
    /// Creates the passthrough router.
    pub fn new() -> Self {
        PassthroughRouter
    }
}

impl Router for PassthroughRouter {
    fn name(&self) -> String {
        "passthrough".to_string()
    }

    fn route(&mut self, _request: &RouteRequest, loads: &[ReplicaLoad]) -> ReplicaId {
        assert!(!loads.is_empty(), "cannot route over an empty fleet");
        ReplicaId(0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::req;
    use super::*;
    use crate::router::FleetLoadTracker;

    #[test]
    fn everything_lands_on_replica_zero() {
        let mut router = PassthroughRouter::new();
        let tracker = FleetLoadTracker::new(3);
        for i in 0..10 {
            assert_eq!(
                router.route(&req(i, 100, 10), tracker.loads()),
                ReplicaId(0)
            );
        }
    }
}
