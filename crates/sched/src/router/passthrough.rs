//! The single-replica identity router.

use super::{check_candidates, ReplicaLoad, RouteRequest, Router};
use loong_simcore::ids::ReplicaId;

/// Routes every request to the first routable replica.
///
/// This is the identity of the fleet tier: a 1-replica fleet under
/// passthrough must produce the bare serving engine's outcome bit for bit
/// (pinned by `tests/fleet_equivalence.rs`) — with the full candidate set
/// the first candidate is replica 0, the historical behaviour. It also
/// works over larger fleets — as the degenerate "no load balancing"
/// baseline — but that is only useful for experiments about imbalance.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassthroughRouter;

impl PassthroughRouter {
    /// Creates the passthrough router.
    pub fn new() -> Self {
        PassthroughRouter
    }
}

impl Router for PassthroughRouter {
    fn name(&self) -> String {
        "passthrough".to_string()
    }

    fn route(
        &mut self,
        _request: &RouteRequest,
        loads: &[ReplicaLoad],
        candidates: &[ReplicaId],
    ) -> ReplicaId {
        check_candidates(loads, candidates);
        candidates[0]
    }
}

#[cfg(test)]
mod tests {
    use super::super::all_replicas;
    use super::super::tests::req;
    use super::*;
    use crate::router::FleetLoadTracker;

    #[test]
    fn everything_lands_on_replica_zero() {
        let mut router = PassthroughRouter::new();
        let tracker = FleetLoadTracker::new(3);
        let all = all_replicas(3);
        for i in 0..10 {
            assert_eq!(
                router.route(&req(i, 100, 10), tracker.loads(), &all),
                ReplicaId(0)
            );
        }
    }

    #[test]
    fn falls_over_to_the_lowest_healthy_replica() {
        let mut router = PassthroughRouter::new();
        let tracker = FleetLoadTracker::new(3);
        // Replica 0 is unhealthy: the identity policy degrades to "first
        // healthy id" rather than routing into the crash.
        assert_eq!(
            router.route(
                &req(0, 100, 10),
                tracker.loads(),
                &[ReplicaId(1), ReplicaId(2)]
            ),
            ReplicaId(1)
        );
    }
}
