//! Join-shortest-queue routing by queued tokens.

use super::{argmin_among, ReplicaLoad, RouteRequest, Router};
use loong_simcore::ids::ReplicaId;

/// Joins the candidate replica with the fewest queued tokens.
///
/// "Queue length" is measured in worst-case tokens, not requests: the
/// running sum of `input_len + max_output_len` over assigned requests. For
/// long-context workloads a single 200K-token prompt outweighs hundreds of
/// chat requests, so counting requests would badly misjudge skewed mixes.
/// Ties break towards the lowest candidate id via the shared
/// [`argmin_among`] helper.
///
/// The routing tier gets no completion feedback from the replicas, so the
/// sums are **cumulative assigned work, never drained**: over a long trace
/// with idle gaps this is "join the least-total-work replica", which
/// converges towards token-weighted balancing rather than the
/// instantaneous-queue-depth JSQ of a feedback-coupled frontend. That is
/// the honest capability of a dispatcher that must not scan replica state
/// (the fleet's O(active) invariant); drain-aware variants belong in a
/// future feedback-coupled router.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestQueueRouter;

impl JoinShortestQueueRouter {
    /// Creates a join-shortest-queue router.
    pub fn new() -> Self {
        JoinShortestQueueRouter
    }
}

impl Router for JoinShortestQueueRouter {
    fn name(&self) -> String {
        "join-shortest-queue".to_string()
    }

    fn route(
        &mut self,
        _request: &RouteRequest,
        loads: &[ReplicaLoad],
        candidates: &[ReplicaId],
    ) -> ReplicaId {
        argmin_among(loads, candidates, |l| l.queued_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::super::all_replicas;
    use super::super::tests::req;
    use super::*;
    use crate::router::FleetLoadTracker;

    #[test]
    fn picks_least_queued_tokens_not_fewest_requests() {
        let mut router = JoinShortestQueueRouter::new();
        let mut tracker = FleetLoadTracker::new(2);
        let all = all_replicas(2);
        // Replica 0: one huge request. Replica 1: three small ones.
        tracker.on_assign(ReplicaId(0), &req(0, 100_000, 64));
        for i in 1..4 {
            tracker.on_assign(ReplicaId(1), &req(i, 100, 64));
        }
        // Fewest requests is replica 0, but fewest queued tokens is 1.
        assert_eq!(
            router.route(&req(9, 10, 10), tracker.loads(), &all),
            ReplicaId(1)
        );
    }

    #[test]
    fn ties_break_to_lowest_replica() {
        let mut router = JoinShortestQueueRouter::new();
        let tracker = FleetLoadTracker::new(4);
        let all = all_replicas(4);
        assert_eq!(
            router.route(&req(0, 10, 10), tracker.loads(), &all),
            ReplicaId(0)
        );
    }

    #[test]
    fn unhealthy_replicas_are_excluded_even_when_emptiest() {
        let mut router = JoinShortestQueueRouter::new();
        let mut tracker = FleetLoadTracker::new(3);
        // Replica 0 is idle (global argmin) but unhealthy; among the
        // candidates, 2 is lighter than 1.
        tracker.on_assign(ReplicaId(1), &req(0, 1_000, 64));
        tracker.on_assign(ReplicaId(2), &req(1, 100, 64));
        assert_eq!(
            router.route(
                &req(9, 10, 10),
                tracker.loads(),
                &[ReplicaId(1), ReplicaId(2)]
            ),
            ReplicaId(2)
        );
        // Candidate ties break towards the lowest *candidate* id.
        let idle = FleetLoadTracker::new(3);
        assert_eq!(
            router.route(
                &req(10, 10, 10),
                idle.loads(),
                &[ReplicaId(1), ReplicaId(2)]
            ),
            ReplicaId(1)
        );
    }
}
