//! Least-KV-load routing.

use super::{argmin_among, ReplicaLoad, RouteRequest, Router};
use loong_simcore::ids::ReplicaId;

/// Joins the candidate replica with the smallest KV-cache footprint: the
/// running sum of `input_len` over assigned requests.
///
/// Differs from join-shortest-queue in what it counts: prompts only. In
/// LoongServe the unified KV pool is the scarce per-replica resource — one
/// million-token prompt pins ~488 GB of KV — while the declared output
/// bound mostly predicts *time*, not *memory*. On prompt-skewed mixes the
/// two policies can disagree sharply. Ties break towards the lowest
/// candidate id via the shared [`argmin_among`] helper.
///
/// Like join-shortest-queue, the sum is cumulative assigned work — the
/// routing tier gets no release feedback from the replicas' KV pools, so
/// this balances total prompt tokens ever assigned, not instantaneous
/// residency.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastKvLoadRouter;

impl LeastKvLoadRouter {
    /// Creates a least-KV-load router.
    pub fn new() -> Self {
        LeastKvLoadRouter
    }
}

impl Router for LeastKvLoadRouter {
    fn name(&self) -> String {
        "least-kv-load".to_string()
    }

    fn route(
        &mut self,
        _request: &RouteRequest,
        loads: &[ReplicaLoad],
        candidates: &[ReplicaId],
    ) -> ReplicaId {
        argmin_among(loads, candidates, |l| l.kv_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::super::all_replicas;
    use super::super::tests::req;
    use super::*;
    use crate::router::FleetLoadTracker;

    #[test]
    fn ignores_output_bounds_when_comparing_load() {
        let mut router = LeastKvLoadRouter::new();
        let mut tracker = FleetLoadTracker::new(2);
        let all = all_replicas(2);
        // Replica 0: small prompt, huge declared output (heavy queue, light
        // KV). Replica 1: large prompt, tiny output (light queue, heavy KV).
        tracker.on_assign(ReplicaId(0), &req(0, 100, 60_000));
        tracker.on_assign(ReplicaId(1), &req(1, 50_000, 64));
        // JSQ would pick replica 1; least-KV must pick replica 0.
        assert_eq!(
            router.route(&req(2, 10, 10), tracker.loads(), &all),
            ReplicaId(0)
        );
    }

    #[test]
    fn unhealthy_replicas_are_excluded_even_when_emptiest() {
        let mut router = LeastKvLoadRouter::new();
        let mut tracker = FleetLoadTracker::new(3);
        // Replica 0 holds no KV (global argmin) but is unhealthy; among the
        // candidates, replica 2 holds less.
        tracker.on_assign(ReplicaId(1), &req(0, 10_000, 64));
        tracker.on_assign(ReplicaId(2), &req(1, 100, 64));
        assert_eq!(
            router.route(
                &req(9, 10, 10),
                tracker.loads(),
                &[ReplicaId(1), ReplicaId(2)]
            ),
            ReplicaId(2)
        );
        // Candidate ties break towards the lowest *candidate* id.
        let idle = FleetLoadTracker::new(3);
        assert_eq!(
            router.route(
                &req(10, 10, 10),
                idle.loads(),
                &[ReplicaId(1), ReplicaId(2)]
            ),
            ReplicaId(1)
        );
    }
}
