//! # loong-esp
//!
//! Elastic sequence parallelism (ESP) for LoongServe-RS.
//!
//! ESP is the paper's core contribution: the degree of parallelism of a
//! batch is chosen *per iteration* by regrouping elastic instances, instead
//! of being fixed when the service launches. This crate provides the
//! mechanisms; the policies that drive them live in `loong-sched`.
//!
//! * [`instance`] — elastic instances (model replicas on fixed GPU sets) and
//!   the registry that carves them out of a cluster,
//! * [`group`] — ESP parallel groups and the scaling actions that reshape
//!   them,
//! * [`prefill`] — sequence-parallel prefill with zero-overhead proactive
//!   scale-down (paper §4.1),
//! * [`decode`] — single-/multi-master distributed decoding and
//!   migration-free scale-up (paper §4.2),
//! * [`scaling`] — reactive, migration-based scaling with explicit
//!   communication cost, used by the optional decode scale-down and by
//!   baseline systems.
//!
//! # Examples
//!
//! ```
//! use loong_esp::prelude::*;
//! use loong_cluster::topology::ClusterSpec;
//! use loong_kvcache::unified::UnifiedKvPool;
//! use loong_model::prelude::*;
//! use loong_simcore::ids::{GroupId, InstanceId, RequestId};
//!
//! let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
//! let cost_model = CostModel::new(ModelConfig::lwm_1m_text());
//! let mut pool = UnifiedKvPool::new(4, 500_000);
//!
//! // Prefill a 100K-token request on all four instances, retaining its KV
//! // on just the first two (proactive scale-down).
//! let group = EspGroup::new(GroupId(0), registry.all_ids());
//! let plan = PrefillPlan::build(
//!     group,
//!     vec![PrefillRequest { id: RequestId(0), input_len: 100_000 }],
//!     vec![InstanceId(0), InstanceId(1)],
//!     &pool,
//! ).unwrap();
//! let outcome = execute_prefill(&plan, &cost_model, &registry, &mut pool).unwrap();
//! assert!(outcome.cost.total() > 0.0);
//! assert_eq!(pool.tokens_of(RequestId(0)), 100_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod decode;
pub mod group;
pub mod instance;
pub mod prefill;
pub mod scaling;

pub use decode::{execute_decode, DecodeOutcome, DecodePlan, DecodePlanError, DecodeRequest};
pub use group::{EspGroup, ScalingAction};
pub use instance::{ElasticInstance, InstanceRegistry};
pub use prefill::{execute_prefill, PrefillOutcome, PrefillPlan, PrefillPlanError, PrefillRequest};
pub use scaling::{migrate_request, reactive_scale_down, scale_up, MigrationSummary, ScalingError};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::decode::{
        execute_decode, DecodeOutcome, DecodePlan, DecodePlanError, DecodeRequest,
    };
    pub use crate::group::{EspGroup, ScalingAction};
    pub use crate::instance::{ElasticInstance, InstanceRegistry};
    pub use crate::prefill::{
        execute_prefill, PrefillOutcome, PrefillPlan, PrefillPlanError, PrefillRequest,
    };
    pub use crate::scaling::{
        migrate_request, reactive_scale_down, scale_up, MigrationSummary, ScalingError,
    };
}
