//! ESP parallel groups and elastic scaling actions.
//!
//! A parallel group is a set of elastic instances that jointly execute one
//! batch with sequence parallelism; the number of instances in the group is
//! the batch's degree of parallelism (DoP). The global manager reshapes
//! groups between iterations: scaling a prefill group *down* as it enters
//! the decoding phase (proactively, §4.1), scaling a decoding group *up*
//! when it runs out of memory or becomes compute-bound (§4.2), and
//! optionally scaling a decoding group down with explicit migration when
//! the resources are more valuable elsewhere (§5.4).

use crate::instance::InstanceRegistry;
use loong_model::roofline::ParallelConfig;
use loong_simcore::ids::{GroupId, InstanceId};
use serde::{Deserialize, Serialize};

/// A set of elastic instances executing one batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EspGroup {
    /// Group identifier.
    pub id: GroupId,
    /// Member instances (unique, order defines the SP ring order).
    pub instances: Vec<InstanceId>,
    /// Master instances for distributed decoding (subset of `instances`).
    /// During prefill this is ignored.
    pub masters: Vec<InstanceId>,
}

impl EspGroup {
    /// Creates a group over the given instances with every instance acting
    /// as a master (the common multi-master configuration).
    ///
    /// # Panics
    ///
    /// Panics if `instances` is empty or contains duplicates.
    pub fn new(id: GroupId, instances: Vec<InstanceId>) -> Self {
        let masters = instances.clone();
        Self::with_masters(id, instances, masters)
    }

    /// Creates a group with an explicit master set.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is empty or has duplicates, or `masters` is
    /// empty or not a subset of `instances`.
    pub fn with_masters(id: GroupId, instances: Vec<InstanceId>, masters: Vec<InstanceId>) -> Self {
        assert!(
            !instances.is_empty(),
            "a parallel group needs at least one instance"
        );
        let mut dedup = instances.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), instances.len(), "duplicate instances in group");
        assert!(
            !masters.is_empty(),
            "a parallel group needs at least one master"
        );
        assert!(
            masters.iter().all(|m| instances.contains(m)),
            "masters must be members of the group"
        );
        EspGroup {
            id,
            instances,
            masters,
        }
    }

    /// The degree of parallelism (number of member instances).
    pub fn dop(&self) -> usize {
        self.instances.len()
    }

    /// Number of master instances.
    pub fn num_masters(&self) -> usize {
        self.masters.len()
    }

    /// The parallel configuration of this group given the registry's
    /// tensor-parallel degree.
    pub fn parallel_config(&self, registry: &InstanceRegistry) -> ParallelConfig {
        ParallelConfig::new(registry.tp(), self.dop())
    }

    /// Returns true if the instance is a member of the group.
    pub fn contains(&self, instance: InstanceId) -> bool {
        self.instances.contains(&instance)
    }

    /// Returns true if the instance is a master of the group.
    pub fn is_master(&self, instance: InstanceId) -> bool {
        self.masters.contains(&instance)
    }
}

/// An elastic scaling action applied to a group between iterations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingAction {
    /// Shrink the group to `retain`, a subset of the current members. When
    /// folded into the prefill phase this is the zero-overhead proactive
    /// scale-down; applied to a decode group it requires migrating the KV
    /// held by the departing instances.
    ScaleDown {
        /// Instances that remain in the group.
        retain: Vec<InstanceId>,
    },
    /// Grow the group by `added` instances. No KV moves: existing tokens
    /// stay where they are and new instances contribute fresh capacity and
    /// compute (multi-master decoding).
    ScaleUp {
        /// Instances joining the group.
        added: Vec<InstanceId>,
    },
    /// Change which members act as masters without changing membership.
    Remaster {
        /// The new master set.
        masters: Vec<InstanceId>,
    },
}

impl ScalingAction {
    /// Applies the action to a group, returning the reshaped group.
    ///
    /// # Panics
    ///
    /// Panics if the action is inconsistent with the group (retaining
    /// non-members, adding existing members, or remastering to non-members).
    pub fn apply(&self, group: &EspGroup) -> EspGroup {
        match self {
            ScalingAction::ScaleDown { retain } => {
                assert!(
                    !retain.is_empty(),
                    "cannot scale a group down to zero instances"
                );
                assert!(
                    retain.iter().all(|i| group.contains(*i)),
                    "scale-down retains instances that are not members"
                );
                let masters: Vec<InstanceId> = group
                    .masters
                    .iter()
                    .copied()
                    .filter(|m| retain.contains(m))
                    .collect();
                let masters = if masters.is_empty() {
                    vec![retain[0]]
                } else {
                    masters
                };
                EspGroup::with_masters(group.id, retain.clone(), masters)
            }
            ScalingAction::ScaleUp { added } => {
                assert!(
                    added.iter().all(|i| !group.contains(*i)),
                    "scale-up adds instances that are already members"
                );
                let mut instances = group.instances.clone();
                instances.extend(added.iter().copied());
                let mut masters = group.masters.clone();
                // New instances immediately become masters so they can absorb
                // newly generated KV (the multi-master mechanism).
                masters.extend(added.iter().copied());
                EspGroup::with_masters(group.id, instances, masters)
            }
            ScalingAction::Remaster { masters } => {
                EspGroup::with_masters(group.id, group.instances.clone(), masters.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_cluster::topology::ClusterSpec;

    fn group() -> EspGroup {
        EspGroup::new(
            GroupId(0),
            vec![InstanceId(0), InstanceId(1), InstanceId(2), InstanceId(3)],
        )
    }

    #[test]
    fn group_basics() {
        let g = group();
        assert_eq!(g.dop(), 4);
        assert_eq!(g.num_masters(), 4);
        assert!(g.contains(InstanceId(2)));
        assert!(g.is_master(InstanceId(2)));
        let reg = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
        assert_eq!(g.parallel_config(&reg), ParallelConfig::new(2, 4));
    }

    #[test]
    fn scale_down_keeps_subset_and_masters() {
        let g = group();
        let action = ScalingAction::ScaleDown {
            retain: vec![InstanceId(0), InstanceId(1)],
        };
        let g2 = action.apply(&g);
        assert_eq!(g2.dop(), 2);
        assert_eq!(g2.masters, vec![InstanceId(0), InstanceId(1)]);
        assert_eq!(g2.id, g.id);
    }

    #[test]
    fn scale_up_adds_new_masters() {
        let g = EspGroup::with_masters(GroupId(1), vec![InstanceId(0)], vec![InstanceId(0)]);
        let action = ScalingAction::ScaleUp {
            added: vec![InstanceId(1), InstanceId(2)],
        };
        let g2 = action.apply(&g);
        assert_eq!(g2.dop(), 3);
        assert_eq!(g2.num_masters(), 3);
        assert!(g2.is_master(InstanceId(2)));
    }

    #[test]
    fn remaster_changes_masters_only() {
        let g = group();
        let action = ScalingAction::Remaster {
            masters: vec![InstanceId(3)],
        };
        let g2 = action.apply(&g);
        assert_eq!(g2.dop(), 4);
        assert_eq!(g2.masters, vec![InstanceId(3)]);
    }

    #[test]
    #[should_panic(expected = "not members")]
    fn scale_down_to_foreign_instance_panics() {
        let g = group();
        let action = ScalingAction::ScaleDown {
            retain: vec![InstanceId(7)],
        };
        let _ = action.apply(&g);
    }

    #[test]
    #[should_panic(expected = "already members")]
    fn scale_up_with_existing_member_panics() {
        let g = group();
        let action = ScalingAction::ScaleUp {
            added: vec![InstanceId(0)],
        };
        let _ = action.apply(&g);
    }

    #[test]
    #[should_panic(expected = "duplicate instances")]
    fn duplicate_members_rejected() {
        let _ = EspGroup::new(GroupId(0), vec![InstanceId(0), InstanceId(0)]);
    }

    #[test]
    #[should_panic(expected = "at least one master")]
    fn empty_masters_rejected() {
        let _ = EspGroup::with_masters(GroupId(0), vec![InstanceId(0)], vec![]);
    }
}
