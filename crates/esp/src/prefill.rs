//! Prefill execution with proactive scale-down.
//!
//! During a sequence-parallel prefill, the key-value tensors of every token
//! circulate through all instances of the group (StripedAttention). The
//! proactive scale-down mechanism (paper §4.1) piggybacks on that ring:
//! instead of writing KV wherever it was computed and migrating it later,
//! each instance of the *post-prefill* (smaller) group selectively retains
//! the tokens assigned to it as they pass by. The prefill therefore finishes
//! with the KV already laid out for the decode phase, at any token-level
//! placement, with no extra communication.

use crate::group::EspGroup;
use crate::instance::InstanceRegistry;
use loong_kvcache::placement::{PlacementPlan, PlacementStrategy};
use loong_kvcache::pool::KvError;
use loong_kvcache::unified::UnifiedKvPool;
use loong_model::roofline::{CostModel, IterationCost};
use loong_simcore::ids::{InstanceId, RequestId};
use serde::{Deserialize, Serialize};

/// One request taking part in a prefill iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefillRequest {
    /// The request.
    pub id: RequestId,
    /// Prompt length in tokens.
    pub input_len: u64,
}

/// A fully specified prefill iteration: which group runs it, which requests
/// it contains, which instances survive the proactive scale-down, and where
/// every request's KV tokens are retained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefillPlan {
    /// The group executing the prefill (its DoP is the prefill DoP).
    pub group: EspGroup,
    /// The batch.
    pub requests: Vec<PrefillRequest>,
    /// Instances that remain after the prefill (the decode-phase group).
    /// Equal to `group.instances` when no scale-down is requested.
    pub retain_on: Vec<InstanceId>,
    /// Per-request KV retention placement; every span targets a member of
    /// `retain_on`.
    pub placements: Vec<PlacementPlan>,
}

/// Errors surfaced while building a prefill plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefillPlanError {
    /// The retained instances do not have enough total free KV slots.
    InsufficientKvCapacity {
        /// Tokens that needed placing.
        requested: u64,
        /// Free slots available on the retained instances.
        available: u64,
    },
    /// The retained set is empty or not a subset of the group.
    InvalidRetention,
    /// The batch is empty.
    EmptyBatch,
}

impl std::fmt::Display for PrefillPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefillPlanError::InsufficientKvCapacity { requested, available } => write!(
                f,
                "prefill batch needs {requested} KV slots but the retained instances only have {available}"
            ),
            PrefillPlanError::InvalidRetention => write!(f, "retained instances must be a non-empty subset of the group"),
            PrefillPlanError::EmptyBatch => write!(f, "prefill batch is empty"),
        }
    }
}

impl std::error::Error for PrefillPlanError {}

impl PrefillPlan {
    /// Builds a prefill plan, choosing a balanced token-level retention
    /// placement over the free slots of `retain_on`.
    ///
    /// `retain_on` is the scheduler's proactive scale-down decision: pass
    /// the full group membership for "no scale-down".
    pub fn build(
        group: EspGroup,
        requests: Vec<PrefillRequest>,
        retain_on: Vec<InstanceId>,
        pool: &UnifiedKvPool,
    ) -> Result<Self, PrefillPlanError> {
        if requests.is_empty() {
            return Err(PrefillPlanError::EmptyBatch);
        }
        if retain_on.is_empty() || !retain_on.iter().all(|i| group.contains(*i)) {
            return Err(PrefillPlanError::InvalidRetention);
        }
        let mut free = pool.free_slots_on(&retain_on);
        let total_free: u64 = free.iter().map(|(_, f)| f).sum();
        let total_tokens: u64 = requests.iter().map(|r| r.input_len).sum();
        if total_free < total_tokens {
            return Err(PrefillPlanError::InsufficientKvCapacity {
                requested: total_tokens,
                available: total_free,
            });
        }
        // Place requests one by one on the (shrinking) free slots so the
        // combined placement is feasible. Largest requests first keeps the
        // balanced splits well shaped.
        let mut ordered = requests.clone();
        ordered.sort_by(|a, b| b.input_len.cmp(&a.input_len).then(a.id.cmp(&b.id)));
        let mut placements = Vec::with_capacity(ordered.len());
        for req in &ordered {
            let plan = loong_kvcache::placement::plan_placement(
                req.id,
                req.input_len,
                &free,
                PlacementStrategy::Balanced,
            )
            .ok_or(PrefillPlanError::InsufficientKvCapacity {
                requested: total_tokens,
                available: total_free,
            })?;
            for &(inst, tokens) in &plan.spans {
                let slot = free
                    .iter_mut()
                    .find(|(i, _)| *i == inst)
                    .expect("placement only uses candidate instances");
                slot.1 -= tokens;
            }
            placements.push(plan);
        }
        Ok(PrefillPlan {
            group,
            requests,
            retain_on,
            placements,
        })
    }

    /// Total prompt tokens processed by this iteration.
    pub fn total_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.input_len).sum()
    }

    /// The input lengths of the batch, in request order.
    pub fn input_lens(&self) -> Vec<u64> {
        self.requests.iter().map(|r| r.input_len).collect()
    }

    /// Returns true if the plan scales the group down after the prefill.
    pub fn scales_down(&self) -> bool {
        self.retain_on.len() < self.group.dop()
    }

    /// Validates the plan's structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.placements.len() != self.requests.len() {
            return Err("one placement per request is required".to_string());
        }
        for p in &self.placements {
            p.validate()?;
            if !p.spans.iter().all(|(i, _)| self.retain_on.contains(i)) {
                return Err(format!(
                    "{}: placement targets an instance outside the retained set",
                    p.request
                ));
            }
        }
        let placed: u64 = self.placements.iter().map(|p| p.total_tokens()).sum();
        if placed != self.total_tokens() {
            return Err(format!(
                "placements cover {placed} tokens but the batch has {}",
                self.total_tokens()
            ));
        }
        Ok(())
    }
}

/// The result of executing a prefill iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefillOutcome {
    /// Predicted iteration cost, including any proactive scale-down
    /// overhead.
    pub cost: IterationCost,
    /// Tokens written into the unified pool by this iteration.
    pub retained_tokens: u64,
}

/// Executes a prefill plan: commits every retention placement to the unified
/// pool and returns the iteration cost.
///
/// On a KV commit failure the pool may hold the placements committed before
/// the failing one; callers treat this as a fatal scheduling bug (plans are
/// validated against the same pool before execution), so no rollback is
/// attempted.
pub fn execute_prefill(
    plan: &PrefillPlan,
    cost_model: &CostModel,
    registry: &InstanceRegistry,
    pool: &mut UnifiedKvPool,
) -> Result<PrefillOutcome, KvError> {
    plan.validate()
        .expect("prefill plans are validated at construction");
    let parallel = plan.group.parallel_config(registry);
    let link = registry.link_between(&plan.group.instances);
    let mut cost = cost_model.prefill_cost(&plan.input_lens(), parallel, link);
    if plan.scales_down() {
        cost.scaling_s = cost_model.proactive_scale_down_overhead(plan.total_tokens(), parallel);
    }
    for placement in &plan.placements {
        pool.commit(placement)?;
    }
    Ok(PrefillOutcome {
        cost,
        retained_tokens: plan.total_tokens(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_cluster::topology::ClusterSpec;
    use loong_model::config::ModelConfig;
    use loong_simcore::ids::GroupId;

    fn setup() -> (InstanceRegistry, CostModel, UnifiedKvPool) {
        let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
        let cost_model = CostModel::new(ModelConfig::lwm_1m_text());
        let pool = UnifiedKvPool::new(4, 500_000);
        (registry, cost_model, pool)
    }

    fn group_of(ids: &[u64]) -> EspGroup {
        EspGroup::new(GroupId(0), ids.iter().map(|&i| InstanceId(i)).collect())
    }

    #[test]
    fn build_and_execute_with_scale_down() {
        let (registry, cost_model, mut pool) = setup();
        let group = group_of(&[0, 1, 2, 3]);
        let requests = vec![
            PrefillRequest {
                id: RequestId(0),
                input_len: 200_000,
            },
            PrefillRequest {
                id: RequestId(1),
                input_len: 50_000,
            },
        ];
        let plan = PrefillPlan::build(group, requests, vec![InstanceId(0), InstanceId(1)], &pool)
            .expect("fits on two instances");
        assert!(plan.scales_down());
        assert!(plan.validate().is_ok());
        let outcome = execute_prefill(&plan, &cost_model, &registry, &mut pool).expect("commit");
        assert_eq!(outcome.retained_tokens, 250_000);
        assert!(outcome.cost.total() > 0.0);
        assert!(
            outcome.cost.scaling_s > 0.0,
            "scale-down overhead should be accounted"
        );
        // The scale-down overhead stays under 2% of the iteration (Figure 14a).
        assert!(outcome.cost.scaling_s / outcome.cost.total() < 0.02);
        // KV landed only on the retained instances.
        assert_eq!(pool.tokens_of(RequestId(0)), 200_000);
        assert_eq!(pool.instance(InstanceId(2)).used(), 0);
        assert_eq!(pool.instance(InstanceId(3)).used(), 0);
    }

    #[test]
    fn no_scale_down_has_zero_scaling_cost() {
        let (registry, cost_model, mut pool) = setup();
        let group = group_of(&[0, 1]);
        let requests = vec![PrefillRequest {
            id: RequestId(7),
            input_len: 10_000,
        }];
        let plan = PrefillPlan::build(group.clone(), requests, group.instances.clone(), &pool)
            .expect("fits");
        assert!(!plan.scales_down());
        let outcome = execute_prefill(&plan, &cost_model, &registry, &mut pool).expect("commit");
        assert_eq!(outcome.cost.scaling_s, 0.0);
    }

    #[test]
    fn capacity_shortfall_is_reported() {
        let (_registry, _cost_model, pool) = setup();
        let group = group_of(&[0, 1, 2, 3]);
        let requests = vec![PrefillRequest {
            id: RequestId(0),
            input_len: 600_000,
        }];
        let err = PrefillPlan::build(group, requests, vec![InstanceId(0)], &pool).unwrap_err();
        assert!(matches!(
            err,
            PrefillPlanError::InsufficientKvCapacity {
                requested: 600_000,
                available: 500_000
            }
        ));
    }

    #[test]
    fn retention_must_be_subset_of_group() {
        let (_registry, _cost_model, pool) = setup();
        let group = group_of(&[0, 1]);
        let requests = vec![PrefillRequest {
            id: RequestId(0),
            input_len: 10,
        }];
        let err = PrefillPlan::build(group, requests, vec![InstanceId(3)], &pool).unwrap_err();
        assert_eq!(err, PrefillPlanError::InvalidRetention);
    }

    #[test]
    fn empty_batch_is_rejected() {
        let (_registry, _cost_model, pool) = setup();
        let group = group_of(&[0]);
        let err = PrefillPlan::build(group, vec![], vec![InstanceId(0)], &pool).unwrap_err();
        assert_eq!(err, PrefillPlanError::EmptyBatch);
    }

    #[test]
    fn multiple_requests_fill_fragmented_pool() {
        // Token-level retention can use free slots that no single instance
        // could provide alone.
        let (registry, cost_model, _) = setup();
        let mut pool = UnifiedKvPool::with_capacities(&[100_000, 200_000, 400_000, 400_000]);
        // Pre-occupy some of instance 3.
        pool.append(RequestId(99), InstanceId(3), 350_000)
            .expect("room");
        let group = group_of(&[0, 1, 2, 3]);
        let requests = vec![PrefillRequest {
            id: RequestId(1),
            input_len: 600_000,
        }];
        let plan = PrefillPlan::build(
            group,
            requests,
            vec![InstanceId(0), InstanceId(1), InstanceId(2), InstanceId(3)],
            &pool,
        )
        .expect("unified pool has room");
        let outcome = execute_prefill(&plan, &cost_model, &registry, &mut pool).expect("commit");
        assert_eq!(outcome.retained_tokens, 600_000);
        assert_eq!(pool.tokens_of(RequestId(1)), 600_000);
        assert!(pool.check_invariants().is_ok());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = PrefillPlanError::InsufficientKvCapacity {
            requested: 10,
            available: 5,
        };
        assert!(format!("{e}").contains("10"));
        assert!(format!("{}", PrefillPlanError::EmptyBatch).contains("empty"));
    }

    #[test]
    fn hierarchical_prefill_policy_cheapens_esp_execution() {
        // The attention policy threads through the ESP execution path via
        // the cost model: a hierarchical-prefill policy must make the same
        // plan cheaper than dense (the SP ring is priced against the
        // policy-reduced local attention) and never more expensive.
        use loong_model::attention::AttentionCostPolicy;
        let (registry, dense_cm, pool) = setup();
        let sparse_cm = dense_cm
            .clone()
            .with_attention(AttentionCostPolicy::hierarchical());
        let group = group_of(&[0, 1, 2, 3]);
        let requests = vec![PrefillRequest {
            id: RequestId(0),
            input_len: 400_000,
        }];
        let plan = PrefillPlan::build(group, requests, vec![InstanceId(0)], &pool).expect("fits");
        let mut pool_a = pool.clone();
        let mut pool_b = pool;
        let dense = execute_prefill(&plan, &dense_cm, &registry, &mut pool_a)
            .expect("commit")
            .cost
            .total();
        let sparse = execute_prefill(&plan, &sparse_cm, &registry, &mut pool_b)
            .expect("commit")
            .cost
            .total();
        assert!(sparse < dense, "sparse {sparse} should beat dense {dense}");
    }
}
