//! Reactive (migration-based) scaling and whole-request migration.
//!
//! LoongServe itself avoids KV migration: prefill scale-down is proactive
//! and decode scale-up adds masters without moving anything. Migration is
//! still needed in three places, and this module provides it with explicit
//! communication-cost accounting:
//!
//! * the **optional decode scale-down** (paper §5.4), used only when its
//!   benefit outweighs the migration cost,
//! * the global manager's **instance draining** when the prefill phase
//!   preempts a lightly used decode instance (§5.2), and
//! * the **baseline systems** (prefill–decode disaggregation, replicated
//!   instances) that migrate whole requests between instance groups.

use crate::group::{EspGroup, ScalingAction};
use crate::instance::InstanceRegistry;
use loong_kvcache::placement::PlacementStrategy;
use loong_kvcache::unified::{KvMove, UnifiedKvPool};
use loong_model::roofline::CostModel;
use loong_simcore::ids::{InstanceId, RequestId};
use serde::{Deserialize, Serialize};

/// The outcome of a migration-based scaling action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationSummary {
    /// The individual KV moves performed.
    pub moves: Vec<KvMove>,
    /// Total tokens moved.
    pub total_tokens: u64,
    /// Bytes moved across the interconnect.
    pub total_bytes: f64,
    /// Time spent migrating, in seconds (serialised on the bottleneck link,
    /// which is how real systems experience it once a transfer saturates the
    /// NIC/NVLink port).
    pub time_s: f64,
}

impl MigrationSummary {
    /// A summary describing "nothing moved".
    pub fn empty() -> Self {
        MigrationSummary {
            moves: Vec::new(),
            total_tokens: 0,
            total_bytes: 0.0,
            time_s: 0.0,
        }
    }

    fn from_moves(moves: Vec<KvMove>, cost_model: &CostModel, registry: &InstanceRegistry) -> Self {
        let total_tokens: u64 = moves.iter().map(|m| m.tokens).sum();
        let mut total_bytes = 0.0;
        let mut time_s = 0.0;
        for m in &moves {
            let link = registry.link_between(&[m.from, m.to]);
            let bytes = m.tokens as f64 * cost_model.model.kv_bytes_per_token();
            total_bytes += bytes;
            time_s += link.transfer_time(bytes);
        }
        MigrationSummary {
            moves,
            total_tokens,
            total_bytes,
            time_s,
        }
    }
}

/// Errors from migration-based scaling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingError {
    /// The retained/target instances cannot absorb the KV that has to move.
    InsufficientTargetCapacity {
        /// Tokens that needed to move.
        tokens: u64,
    },
    /// The requested membership change is inconsistent with the group.
    InvalidMembership,
}

impl std::fmt::Display for ScalingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingError::InsufficientTargetCapacity { tokens } => {
                write!(
                    f,
                    "target instances cannot absorb {tokens} migrated KV tokens"
                )
            }
            ScalingError::InvalidMembership => {
                write!(f, "scaling action inconsistent with group membership")
            }
        }
    }
}

impl std::error::Error for ScalingError {}

/// Scales a decode group down to `retain`, migrating the KV that the
/// departing instances hold for `requests` onto the retained instances.
///
/// Returns the reshaped group and the migration summary (whose `time_s` the
/// caller charges to the iteration timeline). Fails without mutating the
/// pool if the retained instances cannot absorb the KV.
pub fn reactive_scale_down(
    group: &EspGroup,
    retain: &[InstanceId],
    requests: &[RequestId],
    pool: &mut UnifiedKvPool,
    cost_model: &CostModel,
    registry: &InstanceRegistry,
) -> Result<(EspGroup, MigrationSummary), ScalingError> {
    if retain.is_empty() || !retain.iter().all(|i| group.contains(*i)) {
        return Err(ScalingError::InvalidMembership);
    }
    let departing: Vec<InstanceId> = group
        .instances
        .iter()
        .copied()
        .filter(|i| !retain.contains(i))
        .collect();

    // Feasibility check before touching the pool.
    let mut to_move = 0u64;
    for &req in requests {
        for (inst, tokens) in pool.locations_of(req) {
            if departing.contains(&inst) {
                to_move += tokens;
            }
        }
    }
    let free_on_retained: u64 = pool.free_slots_on(retain).iter().map(|(_, f)| f).sum();
    if free_on_retained < to_move {
        return Err(ScalingError::InsufficientTargetCapacity { tokens: to_move });
    }

    let mut moves = Vec::new();
    for &req in requests {
        for (from, tokens) in pool.locations_of(req) {
            if !departing.contains(&from) {
                continue;
            }
            // Spread the evicted tokens over the retained instances using a
            // balanced token-level placement.
            let placement = pool
                .plan(req, tokens, retain, PlacementStrategy::Balanced)
                .ok_or(ScalingError::InsufficientTargetCapacity { tokens: to_move })?;
            for (to, chunk) in placement.spans {
                let mv = pool
                    .migrate(req, from, to, chunk)
                    .expect("feasibility checked above");
                moves.push(mv);
            }
        }
    }
    let summary = MigrationSummary::from_moves(moves, cost_model, registry);
    let new_group = ScalingAction::ScaleDown {
        retain: retain.to_vec(),
    }
    .apply(group);
    Ok((new_group, summary))
}

/// Scales a group up by adding instances. No KV moves are required — the
/// new instances become additional masters — so this returns only the
/// reshaped group.
pub fn scale_up(group: &EspGroup, added: &[InstanceId]) -> Result<EspGroup, ScalingError> {
    if added.iter().any(|i| group.contains(*i)) {
        return Err(ScalingError::InvalidMembership);
    }
    Ok(ScalingAction::ScaleUp {
        added: added.to_vec(),
    }
    .apply(group))
}

/// Migrates *all* KV of `request` onto `targets` (used by the disaggregation
/// and replication baselines when handing a request between instance
/// groups). Returns the migration summary, or an error if the targets lack
/// capacity, in which case the pool is unchanged.
pub fn migrate_request(
    request: RequestId,
    targets: &[InstanceId],
    pool: &mut UnifiedKvPool,
    cost_model: &CostModel,
    registry: &InstanceRegistry,
) -> Result<MigrationSummary, ScalingError> {
    let locations = pool.locations_of(request);
    let outside: Vec<(InstanceId, u64)> = locations
        .into_iter()
        .filter(|(inst, _)| !targets.contains(inst))
        .collect();
    let to_move: u64 = outside.iter().map(|(_, t)| t).sum();
    if to_move == 0 {
        return Ok(MigrationSummary::empty());
    }
    let free_on_targets: u64 = pool.free_slots_on(targets).iter().map(|(_, f)| f).sum();
    if free_on_targets < to_move {
        return Err(ScalingError::InsufficientTargetCapacity { tokens: to_move });
    }
    let mut moves = Vec::new();
    for (from, tokens) in outside {
        let placement = pool
            .plan(request, tokens, targets, PlacementStrategy::PackMostFree)
            .ok_or(ScalingError::InsufficientTargetCapacity { tokens: to_move })?;
        for (to, chunk) in placement.spans {
            let mv = pool
                .migrate(request, from, to, chunk)
                .expect("feasibility checked above");
            moves.push(mv);
        }
    }
    Ok(MigrationSummary::from_moves(moves, cost_model, registry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_cluster::topology::ClusterSpec;
    use loong_model::config::ModelConfig;
    use loong_simcore::ids::GroupId;

    fn setup() -> (InstanceRegistry, CostModel) {
        (
            InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2),
            CostModel::new(ModelConfig::lwm_1m_text()),
        )
    }

    fn group_of(ids: &[u64]) -> EspGroup {
        EspGroup::new(GroupId(0), ids.iter().map(|&i| InstanceId(i)).collect())
    }

    #[test]
    fn reactive_scale_down_moves_kv_and_charges_time() {
        let (registry, cm) = setup();
        let mut pool = UnifiedKvPool::new(4, 300_000);
        // Request 0 spread over all four instances.
        for i in 0..4 {
            pool.append(RequestId(0), InstanceId(i), 50_000)
                .expect("room");
        }
        let group = group_of(&[0, 1, 2, 3]);
        let (new_group, summary) = reactive_scale_down(
            &group,
            &[InstanceId(0), InstanceId(1)],
            &[RequestId(0)],
            &mut pool,
            &cm,
            &registry,
        )
        .expect("capacity");
        assert_eq!(new_group.dop(), 2);
        assert_eq!(summary.total_tokens, 100_000);
        assert!(summary.time_s > 0.0);
        assert!(summary.total_bytes > 0.0);
        assert_eq!(pool.instance(InstanceId(2)).used(), 0);
        assert_eq!(pool.instance(InstanceId(3)).used(), 0);
        assert_eq!(pool.tokens_of(RequestId(0)), 200_000);
    }

    #[test]
    fn reactive_scale_down_fails_cleanly_without_capacity() {
        let (registry, cm) = setup();
        let mut pool = UnifiedKvPool::with_capacities(&[60_000, 60_000, 300_000, 300_000]);
        for i in 0..4 {
            pool.append(RequestId(0), InstanceId(i), 50_000)
                .expect("room");
        }
        let group = group_of(&[0, 1, 2, 3]);
        let err = reactive_scale_down(
            &group,
            &[InstanceId(0), InstanceId(1)],
            &[RequestId(0)],
            &mut pool,
            &cm,
            &registry,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ScalingError::InsufficientTargetCapacity { tokens: 100_000 }
        ));
        // Pool untouched.
        assert_eq!(pool.instance(InstanceId(2)).used_by(RequestId(0)), 50_000);
    }

    #[test]
    fn scale_up_requires_no_migration() {
        let group = group_of(&[0, 1]);
        let bigger = scale_up(&group, &[InstanceId(2), InstanceId(3)]).expect("valid");
        assert_eq!(bigger.dop(), 4);
        assert!(bigger.is_master(InstanceId(3)));
        assert!(scale_up(&group, &[InstanceId(0)]).is_err());
    }

    #[test]
    fn migrate_request_consolidates_onto_targets() {
        let (registry, cm) = setup();
        let mut pool = UnifiedKvPool::new(4, 300_000);
        pool.append(RequestId(5), InstanceId(0), 40_000)
            .expect("room");
        pool.append(RequestId(5), InstanceId(1), 40_000)
            .expect("room");
        let summary = migrate_request(
            RequestId(5),
            &[InstanceId(2), InstanceId(3)],
            &mut pool,
            &cm,
            &registry,
        )
        .expect("capacity");
        assert_eq!(summary.total_tokens, 80_000);
        assert_eq!(pool.instance(InstanceId(0)).used(), 0);
        assert_eq!(pool.tokens_of(RequestId(5)), 80_000);
        // Migration of ~80K tokens (~40 GB) over NVLink should cost on the
        // order of 100 ms — far more than a decode step, as the paper argues.
        assert!(summary.time_s > 0.05, "migration time {}", summary.time_s);
    }

    #[test]
    fn migrate_request_already_on_targets_is_free() {
        let (registry, cm) = setup();
        let mut pool = UnifiedKvPool::new(4, 300_000);
        pool.append(RequestId(5), InstanceId(2), 40_000)
            .expect("room");
        let summary = migrate_request(RequestId(5), &[InstanceId(2)], &mut pool, &cm, &registry)
            .expect("noop");
        assert_eq!(summary.total_tokens, 0);
        assert_eq!(summary.time_s, 0.0);
    }

    #[test]
    fn invalid_membership_is_rejected() {
        let (registry, cm) = setup();
        let mut pool = UnifiedKvPool::new(4, 300_000);
        let group = group_of(&[0, 1]);
        let err = reactive_scale_down(&group, &[InstanceId(3)], &[], &mut pool, &cm, &registry)
            .unwrap_err();
        assert_eq!(err, ScalingError::InvalidMembership);
    }
}
