//! Distributed decoding with single- and multi-master execution.
//!
//! LoongServe extends sequence parallelism to the decode phase (paper §4.2):
//! every instance of a parallel group computes attention over the KV tokens
//! it already holds, while one or more *master* instances drive the dense
//! layers, hold the queries, and store the newly generated KV of the
//! requests assigned to them. Scaling a decode group up therefore needs no
//! KV movement at all — new instances simply become additional masters.

use crate::group::EspGroup;
use crate::instance::InstanceRegistry;
use loong_kvcache::pool::KvError;
use loong_kvcache::unified::UnifiedKvPool;
use loong_model::roofline::{CostModel, IterationCost};
use loong_simcore::ids::{InstanceId, RequestId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One request taking part in a decode iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeRequest {
    /// The request.
    pub id: RequestId,
    /// Current context length (prompt + generated so far) in tokens.
    pub context_len: u64,
    /// The master instance that drives this request and stores its new KV.
    pub master: InstanceId,
}

/// A fully specified decode iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodePlan {
    /// The group executing the iteration.
    pub group: EspGroup,
    /// The batch, each request bound to a master instance.
    pub requests: Vec<DecodeRequest>,
}

/// Errors surfaced while building a decode plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodePlanError {
    /// The batch is empty.
    EmptyBatch,
    /// No master has a free KV slot for a request's next token.
    NoMasterCapacity {
        /// The request that could not be placed.
        request: RequestId,
    },
}

impl std::fmt::Display for DecodePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodePlanError::EmptyBatch => write!(f, "decode batch is empty"),
            DecodePlanError::NoMasterCapacity { request } => {
                write!(f, "no master instance has a free KV slot for {request}")
            }
        }
    }
}

impl std::error::Error for DecodePlanError {}

impl DecodePlan {
    /// Builds a decode plan by assigning each request to a master.
    ///
    /// Assignment prefers the master that already holds the request's KV
    /// (keeping a request's cache on one instance and the query exchange
    /// volume low) and otherwise follows the paper's rule of keeping the
    /// number of newly generated KV tokens "as uniform as possible" across
    /// masters (§5.4), always respecting per-master free KV slots.
    pub fn build(
        group: EspGroup,
        requests: &[(RequestId, u64)],
        pool: &UnifiedKvPool,
    ) -> Result<Self, DecodePlanError> {
        if requests.is_empty() {
            return Err(DecodePlanError::EmptyBatch);
        }
        // Remaining free slots per master, updated as requests are assigned.
        let mut free: Vec<(InstanceId, u64)> = group
            .masters
            .iter()
            .map(|&m| (m, pool.instance(m).free()))
            .collect();
        // Most free slots first so load balances toward emptier masters.
        free.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut assigned_counts: HashMap<InstanceId, u64> = HashMap::new();
        let mut planned = Vec::with_capacity(requests.len());
        for &(id, context_len) in requests {
            // Locality first: the master already holding most of this
            // request's KV keeps it, as long as it has a free slot.
            let home = group
                .masters
                .iter()
                .copied()
                .filter(|&m| {
                    pool.instance(m).used_by(id) > 0 && free.iter().any(|&(fm, f)| fm == m && f > 0)
                })
                .max_by_key(|&m| (pool.instance(m).used_by(id), u64::MAX - m.raw()));
            // Otherwise pick the master with the fewest assignments among
            // those with a free slot; break ties toward more free slots.
            let choice = home.or_else(|| {
                free.iter()
                    .filter(|(_, f)| *f > 0)
                    .min_by_key(|(m, f)| {
                        (
                            assigned_counts.get(m).copied().unwrap_or(0),
                            u64::MAX - *f,
                            m.raw(),
                        )
                    })
                    .map(|&(m, _)| m)
            });
            let Some(master) = choice else {
                return Err(DecodePlanError::NoMasterCapacity { request: id });
            };
            *assigned_counts.entry(master).or_insert(0) += 1;
            if let Some(slot) = free.iter_mut().find(|(m, _)| *m == master) {
                slot.1 -= 1;
            }
            planned.push(DecodeRequest {
                id,
                context_len,
                master,
            });
        }
        Ok(DecodePlan {
            group,
            requests: planned,
        })
    }

    /// The context lengths of the batch, in request order.
    pub fn context_lens(&self) -> Vec<u64> {
        self.requests.iter().map(|r| r.context_len).collect()
    }

    /// The batch size.
    pub fn batch_size(&self) -> usize {
        self.requests.len()
    }

    /// Number of requests assigned to each master.
    pub fn per_master_load(&self) -> HashMap<InstanceId, u64> {
        let mut load = HashMap::new();
        for r in &self.requests {
            *load.entry(r.master).or_insert(0) += 1;
        }
        load
    }

    /// Validates the plan's structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        for r in &self.requests {
            if !self.group.is_master(r.master) {
                return Err(format!(
                    "{}: master {} is not a master of the group",
                    r.id, r.master
                ));
            }
        }
        Ok(())
    }
}

/// The result of executing one decode iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodeOutcome {
    /// Predicted iteration cost.
    pub cost: IterationCost,
    /// Tokens generated (one per request in the batch).
    pub generated_tokens: u64,
}

/// Executes a decode plan: appends one KV slot per request on its master and
/// returns the iteration cost.
pub fn execute_decode(
    plan: &DecodePlan,
    cost_model: &CostModel,
    registry: &InstanceRegistry,
    pool: &mut UnifiedKvPool,
) -> Result<DecodeOutcome, KvError> {
    plan.validate()
        .expect("decode plans are validated at construction");
    let parallel = plan.group.parallel_config(registry);
    let link = registry.link_between(&plan.group.instances);
    let cost = cost_model.decode_cost(
        &plan.context_lens(),
        parallel,
        plan.group.num_masters().min(plan.batch_size()).max(1),
        link,
    );
    for r in &plan.requests {
        pool.append(r.id, r.master, 1)?;
    }
    Ok(DecodeOutcome {
        cost,
        generated_tokens: plan.requests.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_cluster::topology::ClusterSpec;
    use loong_model::config::ModelConfig;
    use loong_simcore::ids::GroupId;

    fn setup() -> (InstanceRegistry, CostModel, UnifiedKvPool) {
        let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
        let cost_model = CostModel::new(ModelConfig::lwm_1m_text());
        let pool = UnifiedKvPool::new(4, 100_000);
        (registry, cost_model, pool)
    }

    fn group_of(ids: &[u64]) -> EspGroup {
        EspGroup::new(GroupId(0), ids.iter().map(|&i| InstanceId(i)).collect())
    }

    #[test]
    fn masters_are_load_balanced() {
        let (_registry, _cm, pool) = setup();
        let group = group_of(&[0, 1]);
        let requests: Vec<(RequestId, u64)> = (0..10).map(|i| (RequestId(i), 1000)).collect();
        let plan = DecodePlan::build(group, &requests, &pool).expect("capacity");
        let load = plan.per_master_load();
        assert_eq!(load[&InstanceId(0)], 5);
        assert_eq!(load[&InstanceId(1)], 5);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn full_master_is_skipped() {
        let (_registry, _cm, _) = setup();
        let mut pool = UnifiedKvPool::with_capacities(&[10, 100_000]);
        // Fill instance 0 completely.
        pool.append(RequestId(99), InstanceId(0), 10).expect("room");
        let group = group_of(&[0, 1]);
        let requests: Vec<(RequestId, u64)> = (0..4).map(|i| (RequestId(i), 100)).collect();
        let plan = DecodePlan::build(group, &requests, &pool).expect("instance 1 has room");
        assert!(plan.requests.iter().all(|r| r.master == InstanceId(1)));
    }

    #[test]
    fn no_capacity_anywhere_is_an_error() {
        let mut pool = UnifiedKvPool::with_capacities(&[2, 2]);
        pool.append(RequestId(99), InstanceId(0), 2).expect("room");
        pool.append(RequestId(98), InstanceId(1), 2).expect("room");
        let group = group_of(&[0, 1]);
        let err = DecodePlan::build(group, &[(RequestId(0), 10)], &pool).unwrap_err();
        assert!(matches!(err, DecodePlanError::NoMasterCapacity { .. }));
    }

    #[test]
    fn empty_batch_is_rejected() {
        let (_registry, _cm, pool) = setup();
        let err = DecodePlan::build(group_of(&[0]), &[], &pool).unwrap_err();
        assert_eq!(err, DecodePlanError::EmptyBatch);
    }

    #[test]
    fn execute_appends_one_token_per_request() {
        let (registry, cm, mut pool) = setup();
        let group = group_of(&[0, 1, 2, 3]);
        let requests: Vec<(RequestId, u64)> = (0..8).map(|i| (RequestId(i), 5_000)).collect();
        let plan = DecodePlan::build(group, &requests, &pool).expect("capacity");
        let before = pool.total_used();
        let outcome = execute_decode(&plan, &cm, &registry, &mut pool).expect("append");
        assert_eq!(outcome.generated_tokens, 8);
        assert_eq!(pool.total_used(), before + 8);
        assert!(outcome.cost.total() > 0.0);
        for i in 0..8 {
            assert_eq!(pool.tokens_of(RequestId(i)), 1);
        }
    }

    #[test]
    fn more_masters_speed_up_large_batches() {
        // The multi-master mechanism should show its Figure 14b advantage
        // end-to-end through the plan/execute path as well.
        let (registry, cm, pool) = setup();
        let requests: Vec<(RequestId, u64)> = (0..512).map(|i| (RequestId(i), 64)).collect();

        let single_master = EspGroup::with_masters(
            GroupId(0),
            vec![InstanceId(0), InstanceId(1), InstanceId(2), InstanceId(3)],
            vec![InstanceId(0)],
        );
        let multi_master = group_of(&[0, 1, 2, 3]);

        let mut pool_a = pool.clone();
        let mut pool_b = pool;
        let plan_a = DecodePlan::build(single_master, &requests, &pool_a).expect("capacity");
        let plan_b = DecodePlan::build(multi_master, &requests, &pool_b).expect("capacity");
        let cost_a = execute_decode(&plan_a, &cm, &registry, &mut pool_a)
            .expect("ok")
            .cost
            .total();
        let cost_b = execute_decode(&plan_b, &cm, &registry, &mut pool_b)
            .expect("ok")
            .cost
            .total();
        assert!(
            cost_a / cost_b > 1.3,
            "multi-master speedup {}",
            cost_a / cost_b
        );
    }

    #[test]
    fn master_validation_catches_foreign_masters() {
        let plan = DecodePlan {
            group: group_of(&[0, 1]),
            requests: vec![DecodeRequest {
                id: RequestId(0),
                context_len: 10,
                master: InstanceId(3),
            }],
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn page_sparse_policy_flattens_esp_decode_cost() {
        // Page-sparse decode threads through the multi-master execution
        // path: long-context decode gets cheaper than dense, and the cost
        // saturates in context length beyond the token budget.
        use loong_model::attention::AttentionCostPolicy;
        let (registry, dense_cm, pool) = setup();
        let sparse_cm = dense_cm
            .clone()
            .with_attention(AttentionCostPolicy::page_sparse());
        let group = group_of(&[0, 1, 2, 3]);

        let run = |cm: &CostModel, context: u64| {
            let requests: Vec<(RequestId, u64)> = (0..8).map(|i| (RequestId(i), context)).collect();
            let mut pool = pool.clone();
            let plan = DecodePlan::build(group.clone(), &requests, &pool).expect("capacity");
            execute_decode(&plan, cm, &registry, &mut pool)
                .expect("append")
                .cost
                .total()
        };

        let dense_100k = run(&dense_cm, 100_000);
        let sparse_100k = run(&sparse_cm, 100_000);
        let sparse_400k = run(&sparse_cm, 400_000);
        assert!(
            sparse_100k < dense_100k,
            "sparse {sparse_100k} should beat dense {dense_100k}"
        );
        assert!(
            (sparse_400k - sparse_100k).abs() / sparse_100k < 0.01,
            "sparse decode should be flat: {sparse_100k} vs {sparse_400k}"
        );
    }
}
