//! Elastic instances.
//!
//! An elastic instance is LoongServe's minimum independent execution unit
//! (paper §4): a full replica of the model weights spread over a fixed
//! number of GPUs by tensor parallelism. Instances never change their GPU
//! assignment at runtime — elasticity comes from regrouping instances into
//! ESP parallel groups, not from repartitioning weights.

use loong_cluster::gpu::LinkSpec;
use loong_cluster::topology::ClusterSpec;
use loong_simcore::ids::{GpuId, InstanceId, NodeId};
use serde::{Deserialize, Serialize};

/// A model replica bound to a fixed set of GPUs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElasticInstance {
    /// Instance identifier.
    pub id: InstanceId,
    /// GPUs hosting this instance's tensor-parallel shards.
    pub gpus: Vec<GpuId>,
    /// The node hosting the instance (instances never span nodes).
    pub node: NodeId,
}

impl ElasticInstance {
    /// The tensor-parallel degree of the instance.
    pub fn tp(&self) -> usize {
        self.gpus.len()
    }
}

/// The fixed set of elastic instances carved out of a cluster.
///
/// # Examples
///
/// ```
/// use loong_esp::instance::InstanceRegistry;
/// use loong_cluster::topology::ClusterSpec;
///
/// // The paper's single-node configuration: 8 GPUs, TP=2 → 4 instances.
/// let reg = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
/// assert_eq!(reg.num_instances(), 4);
/// assert_eq!(reg.tp(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRegistry {
    cluster: ClusterSpec,
    instances: Vec<ElasticInstance>,
    tp: usize,
}

impl InstanceRegistry {
    /// Carves the cluster into instances of `tp` GPUs each, never crossing
    /// node boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero or does not divide the per-node GPU count.
    pub fn build(cluster: &ClusterSpec, tp: usize) -> Self {
        assert!(tp >= 1, "tensor parallel degree must be >= 1");
        assert!(
            cluster.gpus_per_node.is_multiple_of(tp),
            "tp={tp} must divide the {} GPUs per node so instances do not span nodes",
            cluster.gpus_per_node
        );
        let mut instances = Vec::new();
        let mut next_id = 0u64;
        for node_idx in 0..cluster.nodes {
            let node = NodeId(node_idx as u64);
            let gpus = cluster.gpus_on_node(node);
            for chunk in gpus.chunks(tp) {
                instances.push(ElasticInstance {
                    id: InstanceId(next_id),
                    gpus: chunk.to_vec(),
                    node,
                });
                next_id += 1;
            }
        }
        InstanceRegistry {
            cluster: cluster.clone(),
            instances,
            tp,
        }
    }

    /// The underlying cluster description.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The tensor-parallel degree shared by every instance.
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Number of elastic instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// All instance identifiers in index order.
    pub fn all_ids(&self) -> Vec<InstanceId> {
        self.instances.iter().map(|i| i.id).collect()
    }

    /// The instance with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range.
    pub fn get(&self, id: InstanceId) -> &ElasticInstance {
        &self.instances[id.index()]
    }

    /// The link between GPUs of the same instance (always intra-node).
    pub fn intra_instance_link(&self) -> LinkSpec {
        self.cluster.intra_node_link
    }

    /// The bottleneck link among a set of instances: NVLink when they share
    /// a node, the inter-node fabric otherwise.
    pub fn link_between(&self, instances: &[InstanceId]) -> LinkSpec {
        let mut nodes: Vec<NodeId> = instances.iter().map(|&i| self.get(i).node).collect();
        nodes.dedup();
        let single_node = instances
            .iter()
            .map(|&i| self.get(i).node)
            .all(|n| Some(n) == instances.first().map(|&i| self.get(i).node));
        if single_node {
            self.cluster.intra_node_link
        } else {
            self.cluster.inter_node_link
        }
    }

    /// Returns true if all the given instances share one node.
    pub fn same_node(&self, instances: &[InstanceId]) -> bool {
        match instances.first() {
            None => true,
            Some(&first) => {
                let node = self.get(first).node;
                instances.iter().all(|&i| self.get(i).node == node)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_tp2_yields_four_instances() {
        let reg = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
        assert_eq!(reg.num_instances(), 4);
        for inst in reg.all_ids() {
            assert_eq!(reg.get(inst).tp(), 2);
            assert_eq!(reg.get(inst).node, NodeId(0));
        }
        // GPUs are disjoint and cover the cluster.
        let mut gpus: Vec<GpuId> = reg
            .all_ids()
            .iter()
            .flat_map(|&i| reg.get(i).gpus.clone())
            .collect();
        gpus.sort();
        gpus.dedup();
        assert_eq!(gpus.len(), 8);
    }

    #[test]
    fn two_node_instances_do_not_span_nodes() {
        let reg = InstanceRegistry::build(&ClusterSpec::two_node_a800(), 2);
        assert_eq!(reg.num_instances(), 8);
        for id in reg.all_ids() {
            let inst = reg.get(id);
            let nodes: Vec<NodeId> = inst
                .gpus
                .iter()
                .map(|&g| reg.cluster().node_of(g))
                .collect();
            assert!(nodes.iter().all(|&n| n == inst.node));
        }
    }

    #[test]
    fn link_selection_depends_on_node_placement() {
        let reg = InstanceRegistry::build(&ClusterSpec::two_node_a800(), 2);
        // Instances 0..4 are on node 0, 4..8 on node 1.
        let same = reg.link_between(&[InstanceId(0), InstanceId(1)]);
        let cross = reg.link_between(&[InstanceId(0), InstanceId(5)]);
        assert!(same.bandwidth > cross.bandwidth);
        assert!(reg.same_node(&[InstanceId(0), InstanceId(3)]));
        assert!(!reg.same_node(&[InstanceId(3), InstanceId(4)]));
        assert!(reg.same_node(&[]));
    }

    #[test]
    fn tp8_yields_one_instance_per_node() {
        let reg = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 8);
        assert_eq!(reg.num_instances(), 1);
        assert_eq!(reg.get(InstanceId(0)).tp(), 8);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_dividing_tp_panics() {
        let _ = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 3);
    }
}
