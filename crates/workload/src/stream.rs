//! Lazy, seeded trace generation: requests pulled one at a time.
//!
//! [`TraceStream`] is the streaming counterpart of the [`Trace`]
//! generators: the same seeded sampling, the same ids, the same
//! `(arrival, id)` emission order — but produced on demand, so a frontend
//! can route a million-request workload without ever materialising a
//! `Vec<Request>`. Memory stays O(open conversations) for the multi-turn
//! shapes and O(1) for the single-shot shapes.
//!
//! Every [`Trace::generate*`](Trace::generate) constructor is implemented
//! by *collecting* the matching stream, so the materialised and streamed
//! paths share one code path and are bit-for-bit identical by construction
//! — the property the fleet's streamed run paths (and their golden
//! digests) rest on.
//!
//! # How multi-turn shapes stay lazy
//!
//! A conversation's follow-up turns arrive after think times, so they can
//! interleave arbitrarily with later conversations' starts. The stream
//! keeps a small heap of *drafted* turns: when the next conversation start
//! is pulled from the arrival process, the whole conversation is sampled
//! at once (in exactly the per-fork RNG order the batch generator uses)
//! and pushed into the heap; a drafted turn is emitted only once its
//! `(arrival, tie-break)` key can no longer be preceded by any
//! not-yet-pulled start — arrival processes are non-decreasing, so that is
//! the case exactly when the key is ≤ the next fresh start. The heap
//! therefore holds only the turns of conversations that are still "open"
//! past the emission frontier, not the whole trace.

use crate::arrival::{ArrivalProcess, ArrivalStream};
use crate::datasets::{
    DatasetKind, DatasetSampler, MixedClassProfile, MultiTurnProfile, ZipfMixedSampler,
};
use crate::request::{Request, TrafficClass};
use crate::trace::Trace;
use loong_simcore::ids::{ConversationId, IdAllocator, RequestId};
use loong_simcore::rng::SimRng;
use loong_simcore::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A lazily generated workload trace: an iterator of [`Request`]s in
/// `(arrival, id)` order, ids assigned in emission order.
///
/// Constructed with the same `(spec, count, &mut SimRng)` signature as the
/// matching [`Trace`] generator; collecting the stream yields bit-for-bit
/// the trace the generator returns (the generators are implemented that
/// way). See the [module docs](self) for the memory model.
pub struct TraceStream {
    label: String,
    ids: IdAllocator<RequestId>,
    inner: Inner,
}

/// Which single-shot length sampler a [`Inner::SingleShot`] stream uses.
// One sampler exists per stream, and one stream per run: variant size is
// irrelevant next to the per-request state the stream exists to avoid.
#[allow(clippy::large_enum_variant)]
enum ShotSampler {
    Dataset(DatasetSampler),
    Zipf(Box<ZipfMixedSampler>),
}

impl ShotSampler {
    fn sample(&self, rng: &mut SimRng) -> crate::datasets::LengthSample {
        match self {
            ShotSampler::Dataset(s) => s.sample(rng),
            ShotSampler::Zipf(s) => s.sample(rng),
        }
    }
}

/// A drafted multi-turn request waiting in the emission heap.
struct MtDraft {
    at: f64,
    conv: u64,
    turn: u32,
    input_len: u64,
    output_len: u64,
}

impl MtDraft {
    fn key(&self) -> (f64, u64, u32) {
        (self.at, self.conv, self.turn)
    }
}

impl PartialEq for MtDraft {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MtDraft {}
impl PartialOrd for MtDraft {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MtDraft {
    fn cmp(&self, other: &Self) -> Ordering {
        // Arrival order, ties broken by (conversation, turn) — the exact
        // sort key of the batch generator. Arrivals are finite, so
        // `total_cmp` agrees with the batch sort's `partial_cmp`.
        let (a, b) = (self.key(), other.key());
        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
    }
}

/// A drafted mixed-class request waiting in the emission heap. `seq` is
/// the draft sequence number that makes the order deterministic when think
/// times collide with fresh arrivals.
struct MixDraft {
    at: f64,
    seq: u64,
    request: Request,
}

impl PartialEq for MixDraft {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MixDraft {}
impl PartialOrd for MixDraft {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MixDraft {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.total_cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// Per-shape generator state.
// One `Inner` exists per stream, and one stream per run: variant size is
// irrelevant next to the per-request state the stream exists to avoid.
#[allow(clippy::large_enum_variant)]
enum Inner {
    /// One request per arrival: `generate` / `generate_zipf_mixed`.
    SingleShot {
        sampler: ShotSampler,
        length_rng: SimRng,
        arrivals: ArrivalStream,
        remaining: usize,
    },
    /// `generate_multi_turn`: conversations drafted whole, emitted through
    /// the heap.
    MultiTurn {
        sampler: DatasetSampler,
        profile: MultiTurnProfile,
        length_rng: SimRng,
        rounds_rng: SimRng,
        think_rng: SimRng,
        arrivals: ArrivalStream,
        /// Starts not yet pulled from the arrival process.
        remaining_starts: usize,
        /// Conversation index of `next_start`.
        next_conv: u64,
        /// The next not-yet-expanded conversation start (the emission
        /// frontier), `None` once every start has been expanded.
        next_start: Option<f64>,
        heap: BinaryHeap<std::cmp::Reverse<MtDraft>>,
    },
    /// `generate_mixed_classes`: events drafted whole (a multi-turn event
    /// drafts its entire conversation), emitted through the heap.
    MixedClasses {
        chat: DatasetSampler,
        long_doc: DatasetSampler,
        profile: MixedClassProfile,
        class_rng: SimRng,
        length_rng: SimRng,
        rounds_rng: SimRng,
        think_rng: SimRng,
        arrivals: ArrivalStream,
        remaining_starts: usize,
        next_start: Option<SimTime>,
        next_seq: u64,
        next_conv: u64,
        heap: BinaryHeap<std::cmp::Reverse<MixDraft>>,
    },
    /// An already-materialised trace replayed as a stream.
    Materialized {
        requests: std::vec::IntoIter<Request>,
    },
}

impl TraceStream {
    /// Streams `count` requests from a standard dataset with a given
    /// arrival process — the lazy form of [`Trace::generate`].
    pub fn dataset(
        dataset: DatasetKind,
        arrivals: ArrivalProcess,
        count: usize,
        rng: &mut SimRng,
    ) -> Self {
        let sampler = DatasetSampler::new(dataset);
        let length_rng = rng.fork("lengths");
        let arrival_rng = rng.fork("arrivals");
        TraceStream {
            label: format!("{} @ {:.3} req/s", dataset.name(), arrivals.mean_rate()),
            ids: IdAllocator::<RequestId>::new(),
            inner: Inner::SingleShot {
                sampler: ShotSampler::Dataset(sampler),
                length_rng,
                arrivals: ArrivalStream::new(arrivals, arrival_rng),
                remaining: count,
            },
        }
    }

    /// Streams a Figure-12-style Zipf-reshaped Mixed workload — the lazy
    /// form of [`Trace::generate_zipf_mixed`].
    pub fn zipf_mixed(
        exponent: f64,
        arrivals: ArrivalProcess,
        count: usize,
        rng: &mut SimRng,
    ) -> Self {
        let sampler = ZipfMixedSampler::new(exponent);
        let length_rng = rng.fork("zipf-lengths");
        let arrival_rng = rng.fork("zipf-arrivals");
        TraceStream {
            label: format!(
                "Mixed Zipf={exponent:.1} @ {:.3} req/s",
                arrivals.mean_rate()
            ),
            ids: IdAllocator::<RequestId>::new(),
            inner: Inner::SingleShot {
                sampler: ShotSampler::Zipf(Box::new(sampler)),
                length_rng,
                arrivals: ArrivalStream::new(arrivals, arrival_rng),
                remaining: count,
            },
        }
    }

    /// Streams a multi-turn conversation workload — the lazy form of
    /// [`Trace::generate_multi_turn`].
    pub fn multi_turn(
        dataset: DatasetKind,
        profile: &MultiTurnProfile,
        arrivals: ArrivalProcess,
        conversations: usize,
        rng: &mut SimRng,
    ) -> Self {
        profile.validate().expect("valid multi-turn profile");
        let sampler = DatasetSampler::new(dataset);
        let length_rng = rng.fork("mt-lengths");
        let arrival_rng = rng.fork("mt-arrivals");
        let rounds_rng = rng.fork("mt-rounds");
        let think_rng = rng.fork("mt-think");
        let mut arrival_stream = ArrivalStream::new(arrivals, arrival_rng);
        let mut remaining_starts = conversations;
        let next_start = (remaining_starts > 0).then(|| {
            remaining_starts -= 1;
            arrival_stream.next().expect("arrival streams are infinite")
        });
        TraceStream {
            label: format!(
                "{} multi-turn ({} conv) @ {:.3} conv/s",
                dataset.name(),
                conversations,
                arrivals.mean_rate()
            ),
            ids: IdAllocator::<RequestId>::new(),
            inner: Inner::MultiTurn {
                sampler,
                profile: *profile,
                length_rng,
                rounds_rng,
                think_rng,
                arrivals: arrival_stream,
                remaining_starts,
                next_conv: 0,
                next_start: next_start.map(|t| t.as_secs()),
                heap: BinaryHeap::new(),
            },
        }
    }

    /// Streams a mixed traffic-class overload workload — the lazy form of
    /// [`Trace::generate_mixed_classes`].
    pub fn mixed_classes(
        arrivals: ArrivalProcess,
        count: usize,
        profile: &MixedClassProfile,
        rng: &mut SimRng,
    ) -> Self {
        profile.validate().expect("valid mixed-class profile");
        let chat = DatasetSampler::new(DatasetKind::ShareGpt);
        let long_doc = DatasetSampler::new(DatasetKind::LEval);
        let class_rng = rng.fork("mix-class");
        let length_rng = rng.fork("mix-lengths");
        let arrival_rng = rng.fork("mix-arrivals");
        let rounds_rng = rng.fork("mix-rounds");
        let think_rng = rng.fork("mix-think");
        let mut arrival_stream = ArrivalStream::new(arrivals, arrival_rng);
        let mut remaining_starts = count;
        let next_start = (remaining_starts > 0).then(|| {
            remaining_starts -= 1;
            arrival_stream.next().expect("arrival streams are infinite")
        });
        TraceStream {
            label: format!(
                "mixed-class ({:.0}% long-doc, {:.0}% multi-turn) @ {:.3} ev/s",
                profile.long_doc_fraction * 100.0,
                profile.multi_turn_fraction * 100.0,
                arrivals.mean_rate()
            ),
            ids: IdAllocator::<RequestId>::new(),
            inner: Inner::MixedClasses {
                chat,
                long_doc,
                profile: *profile,
                class_rng,
                length_rng,
                rounds_rng,
                think_rng,
                arrivals: arrival_stream,
                remaining_starts,
                next_start,
                next_seq: 0,
                next_conv: 0,
                heap: BinaryHeap::new(),
            },
        }
    }

    /// Replays an already-materialised trace as a stream (requests keep
    /// their ids). Useful for feeding trace files — or hand-built tests —
    /// through the streamed run paths.
    pub fn from_trace(trace: Trace) -> Self {
        TraceStream {
            label: trace.label,
            ids: IdAllocator::<RequestId>::new(),
            inner: Inner::Materialized {
                requests: trace.requests.into_iter(),
            },
        }
    }

    /// The trace label (how the workload was generated).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Drains the stream into a materialised [`Trace`] — the adapter the
    /// `Trace::generate*` constructors are built on.
    pub fn collect_trace(mut self) -> Trace {
        let label = std::mem::take(&mut self.label);
        let requests: Vec<Request> = (&mut self).collect();
        Trace { label, requests }
    }
}

impl Iterator for TraceStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        match &mut self.inner {
            Inner::SingleShot {
                sampler,
                length_rng,
                arrivals,
                remaining,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let at = arrivals.next().expect("arrival streams are infinite");
                let s = sampler.sample(length_rng);
                Some(Request::new(self.ids.next(), at, s.input_len, s.output_len))
            }
            Inner::MultiTurn {
                sampler,
                profile,
                length_rng,
                rounds_rng,
                think_rng,
                arrivals,
                remaining_starts,
                next_conv,
                next_start,
                heap,
            } => {
                loop {
                    // A drafted turn is safe to emit once no unexpanded
                    // conversation can precede it: starts are
                    // non-decreasing and ties break toward the lower
                    // conversation index, which the heap minimum has.
                    let emit = match (heap.peek(), *next_start) {
                        (Some(std::cmp::Reverse(min)), Some(frontier)) => {
                            min.at.total_cmp(&frontier) != Ordering::Greater
                        }
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => return None,
                    };
                    if emit {
                        let d = heap.pop().expect("peeked above").0;
                        return Some(
                            Request::new(
                                self.ids.next(),
                                SimTime::ZERO + SimDuration::from_secs(d.at),
                                d.input_len,
                                d.output_len,
                            )
                            .with_conversation(ConversationId(d.conv), d.turn),
                        );
                    }
                    // Expand the conversation at the frontier, drawing in
                    // exactly the batch generator's per-fork order.
                    let start = next_start.take().expect("frontier checked above");
                    let conv = *next_conv;
                    *next_conv += 1;
                    let rounds = profile.sample_rounds(rounds_rng);
                    let mut at = start;
                    let mut context = 0u64;
                    for turn in 0..rounds {
                        let s = sampler.sample(length_rng);
                        let input_len = context + s.input_len;
                        heap.push(std::cmp::Reverse(MtDraft {
                            at,
                            conv,
                            turn,
                            input_len,
                            output_len: s.output_len,
                        }));
                        context = input_len + s.output_len;
                        at += profile.sample_think_s(think_rng);
                    }
                    if *remaining_starts > 0 {
                        *remaining_starts -= 1;
                        *next_start = Some(
                            arrivals
                                .next()
                                .expect("arrival streams are infinite")
                                .as_secs(),
                        );
                    }
                }
            }
            Inner::MixedClasses {
                chat,
                long_doc,
                profile,
                class_rng,
                length_rng,
                rounds_rng,
                think_rng,
                arrivals,
                remaining_starts,
                next_start,
                next_seq,
                next_conv,
                heap,
            } => loop {
                let emit = match (heap.peek(), *next_start) {
                    (Some(std::cmp::Reverse(min)), Some(frontier)) => {
                        min.at.total_cmp(&frontier.as_secs()) != Ordering::Greater
                    }
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => return None,
                };
                if emit {
                    let mut r = heap.pop().expect("peeked above").0.request;
                    r.id = self.ids.next();
                    return Some(r);
                }
                let start = next_start.take().expect("frontier checked above");
                let u = class_rng.uniform01();
                if u < profile.long_doc_fraction {
                    let s = long_doc.sample(length_rng);
                    heap.push(std::cmp::Reverse(MixDraft {
                        at: start.as_secs(),
                        seq: *next_seq,
                        request: Request::new(RequestId(0), start, s.input_len, s.output_len)
                            .with_class(TrafficClass::BestEffort),
                    }));
                    *next_seq += 1;
                } else if u < profile.long_doc_fraction + profile.multi_turn_fraction {
                    let conv = ConversationId(*next_conv);
                    *next_conv += 1;
                    let rounds = profile.multi_turn.sample_rounds(rounds_rng);
                    let mut at = start.as_secs();
                    let mut context = 0u64;
                    for turn in 0..rounds {
                        let s = chat.sample(length_rng);
                        let input_len = context + s.input_len;
                        heap.push(std::cmp::Reverse(MixDraft {
                            at,
                            seq: *next_seq,
                            request: Request::new(
                                RequestId(0),
                                SimTime::ZERO + SimDuration::from_secs(at),
                                input_len,
                                s.output_len,
                            )
                            .with_conversation(conv, turn)
                            .with_class(TrafficClass::Standard),
                        }));
                        *next_seq += 1;
                        context = input_len + s.output_len;
                        at += profile.multi_turn.sample_think_s(think_rng);
                    }
                } else {
                    let s = chat.sample(length_rng);
                    heap.push(std::cmp::Reverse(MixDraft {
                        at: start.as_secs(),
                        seq: *next_seq,
                        request: Request::new(RequestId(0), start, s.input_len, s.output_len),
                    }));
                    *next_seq += 1;
                }
                if *remaining_starts > 0 {
                    *remaining_starts -= 1;
                    *next_start = Some(arrivals.next().expect("arrival streams are infinite"));
                }
            },
            Inner::Materialized { requests } => requests.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson(rate: f64) -> ArrivalProcess {
        ArrivalProcess::Poisson { rate }
    }

    #[test]
    fn dataset_stream_collects_to_the_generated_trace() {
        for seed in [5u64, 42, 2024] {
            let trace = Trace::generate(
                DatasetKind::Mixed,
                poisson(0.5),
                200,
                &mut SimRng::seed(seed),
            );
            let streamed = TraceStream::dataset(
                DatasetKind::Mixed,
                poisson(0.5),
                200,
                &mut SimRng::seed(seed),
            )
            .collect_trace();
            assert_eq!(trace, streamed);
        }
    }

    #[test]
    fn zipf_stream_collects_to_the_generated_trace() {
        let trace = Trace::generate_zipf_mixed(1.2, poisson(1.0), 300, &mut SimRng::seed(9));
        let streamed =
            TraceStream::zipf_mixed(1.2, poisson(1.0), 300, &mut SimRng::seed(9)).collect_trace();
        assert_eq!(trace, streamed);
    }

    #[test]
    fn multi_turn_stream_collects_to_the_generated_trace() {
        let profile = MultiTurnProfile::sharegpt();
        for seed in [21u64, 77] {
            let trace = Trace::generate_multi_turn(
                DatasetKind::ShareGpt,
                &profile,
                poisson(0.5),
                40,
                &mut SimRng::seed(seed),
            );
            let streamed = TraceStream::multi_turn(
                DatasetKind::ShareGpt,
                &profile,
                poisson(0.5),
                40,
                &mut SimRng::seed(seed),
            )
            .collect_trace();
            assert_eq!(trace, streamed);
        }
    }

    #[test]
    fn mixed_class_stream_collects_to_the_generated_trace() {
        let profile = MixedClassProfile::overload_mix();
        let arrivals = ArrivalProcess::DiurnalFlash {
            trough_rate: 0.5,
            peak_rate: 4.0,
            period_secs: 300.0,
            flash_start_s: 100.0,
            flash_secs: 30.0,
            flash_rate: 8.0,
        };
        for seed in [31u64, 55] {
            let trace =
                Trace::generate_mixed_classes(arrivals, 150, &profile, &mut SimRng::seed(seed));
            let streamed =
                TraceStream::mixed_classes(arrivals, 150, &profile, &mut SimRng::seed(seed))
                    .collect_trace();
            assert_eq!(trace, streamed);
        }
    }

    #[test]
    fn stream_emits_in_arrival_id_order() {
        let stream = TraceStream::mixed_classes(
            poisson(2.0),
            200,
            &MixedClassProfile::overload_mix(),
            &mut SimRng::seed(3),
        );
        let requests: Vec<Request> = stream.collect();
        assert!(requests.len() >= 200);
        assert!(requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(requests.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn from_trace_replays_verbatim() {
        let trace = Trace::generate(
            DatasetKind::ShareGpt,
            poisson(2.0),
            50,
            &mut SimRng::seed(4),
        );
        let replayed: Vec<Request> = TraceStream::from_trace(trace.clone()).collect();
        assert_eq!(trace.requests, replayed);
    }

    #[test]
    fn multi_turn_heap_stays_small() {
        // The emission frontier bounds the heap by the turns of open
        // conversations, not the trace: stream a long workload and check
        // the high-water mark stays far below the emitted count.
        let profile = MultiTurnProfile::sharegpt();
        let mut stream = TraceStream::multi_turn(
            DatasetKind::ShareGpt,
            &profile,
            poisson(5.0),
            2_000,
            &mut SimRng::seed(13),
        );
        let mut emitted = 0usize;
        let mut heap_high = 0usize;
        while stream.next().is_some() {
            emitted += 1;
            if let Inner::MultiTurn { heap, .. } = &stream.inner {
                heap_high = heap_high.max(heap.len());
            }
        }
        assert!(emitted >= 2_000);
        assert!(
            heap_high < emitted / 4,
            "heap high-water {heap_high} should be far below {emitted} emitted"
        );
    }
}
