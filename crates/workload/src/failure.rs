//! Replica failure schedules: crash and recovery events on the sim clock.
//!
//! A fleet serving heavy traffic loses replicas. A [`FailureSchedule`] is
//! the deterministic script of those losses: for each replica, a set of
//! disjoint `[crash, recover)` downtime intervals, either written out by
//! hand (targeted experiments, property tests) or drawn from a seeded
//! MTBF/MTTR process (availability sweeps). The schedule is pure data on
//! the simulated clock — the reliability tier in `loongserve` interprets
//! it: a crashing replica loses its device KV, host-swap tier and prefix
//! cache wholesale, and every in-flight or queued request surfaces back to
//! the fleet for health-aware re-routing.
//!
//! Like arrival processes, schedules are seeded and replayable: the same
//! seed yields the same crashes, so a failure experiment is as reproducible
//! as the trace it runs over. An empty schedule is the explicit "tier
//! armed, nothing fails" configuration that must stay bit-for-bit on the
//! failure-free goldens.

use loong_simcore::distributions::Exponential;
use loong_simcore::ids::ReplicaId;
use loong_simcore::rng::SimRng;
use loong_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One replica failure: the replica is down on `[crash, recover)`.
///
/// A crash is total: the replica loses all device KV, any host-swapped KV
/// and its whole prefix cache. Work completing exactly at `crash` still
/// counts (the transfer finished before the machine died); a request
/// arriving exactly at `crash` does not — the replica is already down.
/// At `recover` the replica rejoins empty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// The replica that fails.
    pub replica: ReplicaId,
    /// When it crashes.
    pub crash: SimTime,
    /// When it rejoins the fleet (empty), strictly after `crash`.
    pub recover: SimTime,
}

impl FailureEvent {
    /// Creates a failure event.
    ///
    /// # Panics
    ///
    /// Panics unless `recover > crash`.
    pub fn new(replica: ReplicaId, crash: SimTime, recover: SimTime) -> Self {
        assert!(
            recover > crash,
            "recovery at {recover} must be strictly after the crash at {crash}"
        );
        FailureEvent {
            replica,
            crash,
            recover,
        }
    }

    /// Length of the outage.
    pub fn downtime(&self) -> SimDuration {
        self.recover.saturating_since(self.crash)
    }
}

/// A deterministic script of replica crashes and recoveries.
///
/// Events are kept sorted by `(crash, replica)` and validated: one
/// replica's downtime intervals may not overlap (a machine cannot crash
/// while it is already down), though back-to-back `recover == next crash`
/// is allowed (it rejoins for an instant and dies again).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
}

impl FailureSchedule {
    /// The empty schedule: the reliability tier armed, nothing failing.
    pub fn none() -> Self {
        FailureSchedule { events: Vec::new() }
    }

    /// Builds a schedule from explicit events (targeted experiments and
    /// property tests). Events are sorted by `(crash, replica)`.
    ///
    /// # Panics
    ///
    /// Panics if any replica's downtime intervals overlap.
    pub fn from_events(mut events: Vec<FailureEvent>) -> Self {
        events.sort_by(|a, b| {
            a.crash
                .cmp(&b.crash)
                .then(a.replica.cmp(&b.replica))
                .then(a.recover.cmp(&b.recover))
        });
        let schedule = FailureSchedule { events };
        schedule.validate();
        schedule
    }

    /// Draws a schedule from a seeded MTBF/MTTR renewal process: each
    /// replica independently alternates exponential up-times (mean
    /// `mtbf_s`) and exponential repair times (mean `mttr_s`), starting
    /// up at time zero, until the horizon. Identical seeds yield identical
    /// schedules; each replica draws from its own RNG substream, so adding
    /// a replica never perturbs the others' crashes.
    ///
    /// # Panics
    ///
    /// Panics unless both means are positive and the horizon is non-zero.
    pub fn generate(
        replicas: usize,
        horizon: SimDuration,
        mtbf_s: f64,
        mttr_s: f64,
        seed: u64,
    ) -> Self {
        assert!(
            mtbf_s > 0.0 && mttr_s > 0.0,
            "MTBF and MTTR must be positive"
        );
        assert!(
            horizon > SimDuration::ZERO,
            "the failure horizon must be positive"
        );
        let up = Exponential::new(1.0 / mtbf_s);
        let repair = Exponential::new(1.0 / mttr_s);
        let mut root = SimRng::seed(seed);
        let mut events = Vec::new();
        for r in 0..replicas {
            let mut rng = root.fork(&format!("failures-replica-{r}"));
            let mut t = SimTime::ZERO;
            loop {
                let crash = t + SimDuration::from_secs(up.sample(&mut rng));
                if crash.saturating_since(SimTime::ZERO) >= horizon {
                    break;
                }
                let recover = crash + SimDuration::from_secs(repair.sample(&mut rng).max(1e-6));
                events.push(FailureEvent::new(ReplicaId::from(r), crash, recover));
                t = recover;
            }
        }
        Self::from_events(events)
    }

    /// The events, sorted by `(crash, replica)`.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// True if nothing ever fails.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total downtime scripted across all replicas.
    pub fn total_downtime(&self) -> SimDuration {
        self.events
            .iter()
            .fold(SimDuration::ZERO, |acc, e| acc + e.downtime())
    }

    /// The largest replica id named by any event, if any — fleets validate
    /// this against their replica count.
    pub fn max_replica(&self) -> Option<ReplicaId> {
        self.events.iter().map(|e| e.replica).max()
    }

    /// True if `replica` is down at `t` (down on `[crash, recover)`).
    pub fn is_down(&self, replica: ReplicaId, t: SimTime) -> bool {
        self.events
            .iter()
            .any(|e| e.replica == replica && t >= e.crash && t < e.recover)
    }

    /// The earliest time `>= t` at which `replica` is up: `t` itself if
    /// the replica is up, otherwise the end of the covering outage.
    pub fn next_up(&self, replica: ReplicaId, t: SimTime) -> SimTime {
        let mut t = t;
        // Back-to-back outages (`recover == next crash`) chain; events are
        // sorted by crash time, so one forward pass resolves them.
        for e in &self.events {
            if e.replica == replica && t >= e.crash && t < e.recover {
                t = e.recover;
            }
        }
        t
    }

    /// The distinct crash instants across the whole fleet, ascending.
    /// These are the reliability tier's era boundaries: every routing or
    /// retry decision between two consecutive crash instants sees the same
    /// set of discovered failures.
    pub fn crash_times(&self) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = self.events.iter().map(|e| e.crash).collect();
        times.sort();
        times.dedup();
        times
    }

    /// The up-intervals of `replica` as `(start, end)` pairs in time
    /// order; `end == None` is the final interval running to the end of
    /// the simulation. A replica scripted to be "born dead" (crash at
    /// time zero) still yields its leading empty `[0, 0)` interval — the
    /// reliability tier routes around it via [`FailureSchedule::is_down`],
    /// never through the empty segment.
    pub fn up_segments(&self, replica: ReplicaId) -> Vec<(SimTime, Option<SimTime>)> {
        let mut segments = Vec::new();
        let mut start = SimTime::ZERO;
        for e in self.events.iter().filter(|e| e.replica == replica) {
            segments.push((start, Some(e.crash)));
            start = e.recover;
        }
        segments.push((start, None));
        segments
    }

    fn validate(&self) {
        for pair in self.events.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a.replica == b.replica {
                assert!(
                    b.crash >= a.recover,
                    "replica {} crashes at {} while still down until {}",
                    a.replica,
                    b.crash,
                    a.recover
                );
            }
        }
        // The windows check above only sees adjacent events of the same
        // replica when they sort together; a full per-replica pass catches
        // interleaved fleets.
        let mut replicas: Vec<ReplicaId> = self.events.iter().map(|e| e.replica).collect();
        replicas.sort();
        replicas.dedup();
        for r in replicas {
            let mut last_recover = SimTime::ZERO;
            for e in self.events.iter().filter(|e| e.replica == r) {
                assert!(
                    e.crash >= last_recover,
                    "replica {r} crashes at {} while still down until {last_recover}",
                    e.crash
                );
                last_recover = e.recover;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn manual_schedule_reports_downtime_intervals() {
        let schedule = FailureSchedule::from_events(vec![
            FailureEvent::new(ReplicaId(1), t(10.0), t(15.0)),
            FailureEvent::new(ReplicaId(0), t(5.0), t(8.0)),
        ]);
        assert_eq!(schedule.events().len(), 2);
        // Sorted by crash time.
        assert_eq!(schedule.events()[0].replica, ReplicaId(0));
        assert!(schedule.is_down(ReplicaId(0), t(5.0)));
        assert!(schedule.is_down(ReplicaId(0), t(7.999)));
        assert!(!schedule.is_down(ReplicaId(0), t(8.0)));
        assert!(!schedule.is_down(ReplicaId(0), t(4.999)));
        assert!(!schedule.is_down(ReplicaId(1), t(5.0)));
        assert_eq!(schedule.total_downtime().as_secs(), 8.0);
        assert_eq!(schedule.max_replica(), Some(ReplicaId(1)));
        assert_eq!(schedule.crash_times(), vec![t(5.0), t(10.0)]);
    }

    #[test]
    fn next_up_chains_back_to_back_outages() {
        let schedule = FailureSchedule::from_events(vec![
            FailureEvent::new(ReplicaId(0), t(5.0), t(8.0)),
            FailureEvent::new(ReplicaId(0), t(8.0), t(12.0)),
        ]);
        assert_eq!(schedule.next_up(ReplicaId(0), t(6.0)), t(12.0));
        assert_eq!(schedule.next_up(ReplicaId(0), t(12.0)), t(12.0));
        assert_eq!(schedule.next_up(ReplicaId(0), t(1.0)), t(1.0));
        assert_eq!(schedule.next_up(ReplicaId(1), t(6.0)), t(6.0));
    }

    #[test]
    fn up_segments_partition_the_timeline() {
        let schedule = FailureSchedule::from_events(vec![
            FailureEvent::new(ReplicaId(0), t(5.0), t(8.0)),
            FailureEvent::new(ReplicaId(0), t(20.0), t(21.0)),
        ]);
        assert_eq!(
            schedule.up_segments(ReplicaId(0)),
            vec![
                (SimTime::ZERO, Some(t(5.0))),
                (t(8.0), Some(t(20.0))),
                (t(21.0), None),
            ]
        );
        // An untouched replica has one unbounded segment.
        assert_eq!(
            schedule.up_segments(ReplicaId(1)),
            vec![(SimTime::ZERO, None)]
        );
    }

    #[test]
    #[should_panic(expected = "still down")]
    fn overlapping_outages_are_rejected() {
        let _ = FailureSchedule::from_events(vec![
            FailureEvent::new(ReplicaId(0), t(5.0), t(10.0)),
            FailureEvent::new(ReplicaId(0), t(7.0), t(12.0)),
        ]);
    }

    #[test]
    #[should_panic(expected = "strictly after")]
    fn zero_length_outages_are_rejected() {
        let _ = FailureEvent::new(ReplicaId(0), t(5.0), t(5.0));
    }

    #[test]
    fn generated_schedules_are_seed_deterministic_and_valid() {
        let a = FailureSchedule::generate(4, SimDuration::from_secs(500.0), 120.0, 20.0, 42);
        let b = FailureSchedule::generate(4, SimDuration::from_secs(500.0), 120.0, 20.0, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "500 s at MTBF 120 s should crash something");
        for e in a.events() {
            assert!(e.recover > e.crash);
            assert!(e.crash < SimTime::ZERO + SimDuration::from_secs(500.0));
        }
        let c = FailureSchedule::generate(4, SimDuration::from_secs(500.0), 120.0, 20.0, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generated_replica_substreams_are_stable_under_fleet_growth() {
        let four = FailureSchedule::generate(4, SimDuration::from_secs(400.0), 100.0, 15.0, 7);
        let six = FailureSchedule::generate(6, SimDuration::from_secs(400.0), 100.0, 15.0, 7);
        for r in 0..4usize {
            let id = ReplicaId::from(r);
            let of = |s: &FailureSchedule| -> Vec<FailureEvent> {
                s.events()
                    .iter()
                    .copied()
                    .filter(|e| e.replica == id)
                    .collect()
            };
            assert_eq!(of(&four), of(&six), "replica {r} events moved");
        }
    }

    #[test]
    fn empty_schedule_is_inert() {
        let schedule = FailureSchedule::none();
        assert!(schedule.is_empty());
        assert!(!schedule.is_down(ReplicaId(0), t(100.0)));
        assert_eq!(schedule.crash_times(), Vec::<SimTime>::new());
        assert_eq!(schedule.max_replica(), None);
        assert_eq!(schedule.total_downtime(), SimDuration::ZERO);
    }

    #[test]
    fn schedules_serialise() {
        let schedule =
            FailureSchedule::from_events(vec![FailureEvent::new(ReplicaId(2), t(1.0), t(2.5))]);
        let json = serde_json::to_string(&schedule).expect("serialise");
        let back: FailureSchedule = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(schedule, back);
    }
}
