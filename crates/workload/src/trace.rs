//! Workload traces: a concrete list of requests fed to a serving system.
//!
//! A [`Trace`] combines a dataset sampler with an arrival process into the
//! exact sequence of requests a simulation run will serve. Traces are
//! serialisable so the same trace can be replayed against every system under
//! comparison — the property that makes the Figure 10/11/12 comparisons
//! apples-to-apples.

use crate::arrival::ArrivalProcess;
use crate::datasets::{DatasetKind, MixedClassProfile, MultiTurnProfile};
use crate::request::Request;
use crate::stream::TraceStream;
use loong_simcore::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A fully materialised workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Short description of how the trace was generated.
    pub label: String,
    /// Requests sorted by arrival time.
    pub requests: Vec<Request>,
}

/// Aggregate statistics of a trace, used in experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of requests.
    pub count: usize,
    /// Mean prompt length in tokens.
    pub mean_input_len: f64,
    /// Maximum prompt length in tokens.
    pub max_input_len: u64,
    /// Mean output length in tokens.
    pub mean_output_len: f64,
    /// Maximum output length in tokens.
    pub max_output_len: u64,
    /// Mean arrival rate over the trace duration, in requests/second.
    pub mean_arrival_rate: f64,
    /// Total prompt tokens across the trace.
    pub total_input_tokens: u64,
    /// Total generated tokens across the trace.
    pub total_output_tokens: u64,
}

impl Trace {
    /// Generates a trace of `count` requests from a standard dataset with a
    /// given arrival process.
    ///
    /// This is the collected form of [`TraceStream::dataset`]; prefer the
    /// stream when the trace is only consumed once in arrival order.
    pub fn generate(
        dataset: DatasetKind,
        arrivals: ArrivalProcess,
        count: usize,
        rng: &mut SimRng,
    ) -> Self {
        TraceStream::dataset(dataset, arrivals, count, rng).collect_trace()
    }

    /// Generates a Figure-12-style trace: the Mixed dataset reshaped by a
    /// Zipf exponent and capped at 200K input tokens.
    pub fn generate_zipf_mixed(
        exponent: f64,
        arrivals: ArrivalProcess,
        count: usize,
        rng: &mut SimRng,
    ) -> Self {
        TraceStream::zipf_mixed(exponent, arrivals, count, rng).collect_trace()
    }

    /// Generates a multi-turn conversation trace: `conversations`
    /// conversations start according to `arrivals`, each runs for a
    /// geometric number of turns (per `profile`), and every follow-up
    /// turn's prompt is the previous turn's **full context** (prompt +
    /// generated output) plus a freshly sampled user message — so turns of
    /// one conversation form strictly-growing prompt prefixes, the shape
    /// the prefix-cache tier reuses. Follow-ups arrive one sampled think
    /// time after the previous turn.
    ///
    /// Requests across all conversations are interleaved in arrival order
    /// and ids are assigned in that order, so the trace replays exactly
    /// like any single-shot trace; each request carries its
    /// `(conversation, turn)` tag.
    pub fn generate_multi_turn(
        dataset: DatasetKind,
        profile: &MultiTurnProfile,
        arrivals: ArrivalProcess,
        conversations: usize,
        rng: &mut SimRng,
    ) -> Self {
        TraceStream::multi_turn(dataset, profile, arrivals, conversations, rng).collect_trace()
    }

    /// Generates a mixed traffic-class trace for overload studies: each of
    /// the `count` arrival events of `arrivals` is classified per
    /// `profile` into one of three streams —
    ///
    /// * **interactive** (the remainder): one ShareGPT-shaped request;
    /// * **long-document**: one L-Eval-shaped request tagged
    ///   [`TrafficClass::BestEffort`];
    /// * **multi-turn**: the event starts a [`TrafficClass::Standard`]
    ///   conversation whose follow-up turns (growing-context prompts, think
    ///   times, geometric rounds as in [`Trace::generate_multi_turn`])
    ///   arrive *after* the event, so the final trace has at least `count`
    ///   requests.
    ///
    /// Requests are interleaved in arrival order and ids assigned in that
    /// order; every request carries its class tag (and conversation tag for
    /// multi-turn requests).
    pub fn generate_mixed_classes(
        arrivals: ArrivalProcess,
        count: usize,
        profile: &MixedClassProfile,
        rng: &mut SimRng,
    ) -> Self {
        TraceStream::mixed_classes(arrivals, count, profile, rng).collect_trace()
    }

    /// Builds a trace directly from explicit requests (used by unit tests
    /// and micro-experiments).
    pub fn from_requests(label: impl Into<String>, mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| r.arrival);
        Trace {
            label: label.into(),
            requests,
        }
    }

    /// Splits the trace into one sub-trace per replica according to a
    /// per-request assignment (the output of a fleet router).
    ///
    /// `assignment[i]` is the replica serving `self.requests[i]`. Each
    /// sub-trace keeps its requests in the original arrival order with
    /// their original ids, so replaying sub-trace *r* on replica *r*
    /// serves exactly the requests routed there — splitting never drops,
    /// duplicates or reorders a request. Empty sub-traces are produced for
    /// replicas that received nothing.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not have one entry per request or names
    /// a replica `>= replicas`.
    pub fn split_by_assignment(&self, replicas: usize, assignment: &[usize]) -> Vec<Trace> {
        assert!(replicas > 0, "a fleet needs at least one replica");
        assert_eq!(
            assignment.len(),
            self.requests.len(),
            "assignment must cover every request exactly once"
        );
        let mut subs: Vec<Trace> = (0..replicas)
            .map(|r| Trace {
                label: format!("{} · replica {r}/{replicas}", self.label),
                requests: Vec::new(),
            })
            .collect();
        for (req, &replica) in self.requests.iter().zip(assignment) {
            assert!(
                replica < replicas,
                "request {} routed to replica {replica}, but the fleet has {replicas}",
                req.id
            );
            subs[replica].requests.push(req.clone());
        }
        subs
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns true if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> TraceStats {
        let count = self.requests.len();
        if count == 0 {
            return TraceStats {
                count: 0,
                mean_input_len: 0.0,
                max_input_len: 0,
                mean_output_len: 0.0,
                max_output_len: 0,
                mean_arrival_rate: 0.0,
                total_input_tokens: 0,
                total_output_tokens: 0,
            };
        }
        let total_input_tokens: u64 = self.requests.iter().map(|r| r.input_len).sum();
        let total_output_tokens: u64 = self.requests.iter().map(|r| r.output_len).sum();
        let span = self
            .requests
            .last()
            .expect("non-empty")
            .arrival
            .saturating_since(self.requests[0].arrival)
            .as_secs();
        TraceStats {
            count,
            mean_input_len: total_input_tokens as f64 / count as f64,
            max_input_len: self.requests.iter().map(|r| r.input_len).max().unwrap_or(0),
            mean_output_len: total_output_tokens as f64 / count as f64,
            max_output_len: self
                .requests
                .iter()
                .map(|r| r.output_len)
                .max()
                .unwrap_or(0),
            mean_arrival_rate: if span > 0.0 { count as f64 / span } else { 0.0 },
            total_input_tokens,
            total_output_tokens,
        }
    }

    /// Serialises the trace to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Restores a trace from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TrafficClass;
    use loong_simcore::ids::RequestId;
    use loong_simcore::time::SimTime;

    #[test]
    fn generated_trace_is_sorted_and_sized() {
        let mut rng = SimRng::seed(5);
        let trace = Trace::generate(
            DatasetKind::Mixed,
            ArrivalProcess::Poisson { rate: 0.5 },
            200,
            &mut rng,
        );
        assert_eq!(trace.len(), 200);
        assert!(trace
            .requests
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        assert!(!trace.is_empty());
    }

    #[test]
    fn trace_generation_is_deterministic() {
        let make = || {
            let mut rng = SimRng::seed(42);
            Trace::generate(
                DatasetKind::LEval,
                ArrivalProcess::Poisson { rate: 1.0 },
                50,
                &mut rng,
            )
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn stats_summarise_the_trace() {
        let mut rng = SimRng::seed(6);
        let trace = Trace::generate(
            DatasetKind::ShareGpt,
            ArrivalProcess::Poisson { rate: 10.0 },
            500,
            &mut rng,
        );
        let stats = trace.stats();
        assert_eq!(stats.count, 500);
        assert!(stats.mean_input_len > 4.0 && stats.mean_input_len < 2_300.0);
        assert!(stats.max_input_len <= 2_300);
        assert!((stats.mean_arrival_rate - 10.0).abs() < 2.0);
        assert_eq!(
            stats.total_input_tokens,
            trace.requests.iter().map(|r| r.input_len).sum::<u64>()
        );
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let trace = Trace::from_requests("empty", vec![]);
        let stats = trace.stats();
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean_arrival_rate, 0.0);
    }

    #[test]
    fn from_requests_sorts_by_arrival() {
        let r1 = Request::new(RequestId(0), SimTime::from_secs(2.0), 10, 5);
        let r2 = Request::new(RequestId(1), SimTime::from_secs(1.0), 10, 5);
        let trace = Trace::from_requests("manual", vec![r1, r2]);
        assert_eq!(trace.requests[0].id, RequestId(1));
    }

    #[test]
    fn split_preserves_order_ids_and_conservation() {
        let mut rng = SimRng::seed(11);
        let trace = Trace::generate(
            DatasetKind::ShareGpt,
            ArrivalProcess::Poisson { rate: 2.0 },
            30,
            &mut rng,
        );
        let assignment: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let subs = trace.split_by_assignment(3, &assignment);
        assert_eq!(subs.len(), 3);
        assert_eq!(subs.iter().map(Trace::len).sum::<usize>(), trace.len());
        let mut seen: Vec<RequestId> = Vec::new();
        for sub in &subs {
            assert!(sub
                .requests
                .windows(2)
                .all(|w| w[0].arrival <= w[1].arrival));
            seen.extend(sub.requests.iter().map(|r| r.id));
        }
        seen.sort();
        let mut expected: Vec<RequestId> = trace.requests.iter().map(|r| r.id).collect();
        expected.sort();
        assert_eq!(seen, expected, "every request lands in exactly one split");
    }

    #[test]
    fn split_to_one_replica_is_the_identity_on_requests() {
        let mut rng = SimRng::seed(12);
        let trace = Trace::generate(
            DatasetKind::Mixed,
            ArrivalProcess::Poisson { rate: 1.0 },
            10,
            &mut rng,
        );
        let subs = trace.split_by_assignment(1, &[0; 10]);
        assert_eq!(subs[0].requests, trace.requests);
    }

    #[test]
    fn split_leaves_unrouted_replicas_empty() {
        let trace = Trace::from_requests(
            "tiny",
            vec![Request::new(RequestId(0), SimTime::ZERO, 10, 5)],
        );
        let subs = trace.split_by_assignment(4, &[2]);
        assert!(subs[0].is_empty() && subs[1].is_empty() && subs[3].is_empty());
        assert_eq!(subs[2].len(), 1);
    }

    #[test]
    #[should_panic(expected = "cover every request")]
    fn split_rejects_short_assignment() {
        let trace = Trace::from_requests(
            "tiny",
            vec![Request::new(RequestId(0), SimTime::ZERO, 10, 5)],
        );
        let _ = trace.split_by_assignment(2, &[]);
    }

    #[test]
    #[should_panic(expected = "routed to replica")]
    fn split_rejects_out_of_range_replica() {
        let trace = Trace::from_requests(
            "tiny",
            vec![Request::new(RequestId(0), SimTime::ZERO, 10, 5)],
        );
        let _ = trace.split_by_assignment(2, &[2]);
    }

    #[test]
    fn multi_turn_trace_grows_prefixes_strictly() {
        use crate::datasets::MultiTurnProfile;
        let mut rng = SimRng::seed(21);
        let trace = Trace::generate_multi_turn(
            DatasetKind::ShareGpt,
            &MultiTurnProfile::sharegpt(),
            ArrivalProcess::Poisson { rate: 0.5 },
            40,
            &mut rng,
        );
        assert!(trace.len() >= 40, "every conversation has at least 1 turn");
        assert!(trace
            .requests
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        // Ids are assigned in arrival order.
        assert!(trace.requests.windows(2).all(|w| w[0].id < w[1].id));
        // Per conversation: turns are dense from 0 and each turn's prompt
        // strictly extends the previous turn's full context.
        use std::collections::BTreeMap;
        let mut per_conv: BTreeMap<u64, Vec<&Request>> = BTreeMap::new();
        for r in &trace.requests {
            per_conv
                .entry(
                    r.conversation
                        .expect("multi-turn requests are tagged")
                        .raw(),
                )
                .or_default()
                .push(r);
        }
        assert_eq!(per_conv.len(), 40);
        let mut multi = 0;
        for turns in per_conv.values() {
            for (i, r) in turns.iter().enumerate() {
                assert_eq!(r.turn as usize, i, "turns are dense and ordered");
            }
            for w in turns.windows(2) {
                assert!(
                    w[1].input_len > w[0].input_len + w[0].output_len,
                    "follow-up prompt must extend the full prior context"
                );
                assert!(w[1].arrival > w[0].arrival);
            }
            if turns.len() > 1 {
                multi += 1;
            }
        }
        assert!(multi > 10, "most conversations should have follow-ups");
    }

    #[test]
    fn multi_turn_trace_is_deterministic() {
        use crate::datasets::MultiTurnProfile;
        let make = || {
            let mut rng = SimRng::seed(77);
            Trace::generate_multi_turn(
                DatasetKind::ShareGpt,
                &MultiTurnProfile::sharegpt(),
                ArrivalProcess::Poisson { rate: 1.0 },
                25,
                &mut rng,
            )
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn mixed_class_trace_carries_all_three_classes() {
        use crate::datasets::MixedClassProfile;
        let mut rng = SimRng::seed(31);
        let profile = MixedClassProfile::overload_mix();
        let trace = Trace::generate_mixed_classes(
            ArrivalProcess::Poisson { rate: 2.0 },
            400,
            &profile,
            &mut rng,
        );
        assert!(
            trace.len() >= 400,
            "multi-turn follow-ups only add requests"
        );
        assert!(trace
            .requests
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        assert!(trace.requests.windows(2).all(|w| w[0].id < w[1].id));
        let count_of = |c: TrafficClass| trace.requests.iter().filter(|r| r.class == c).count();
        let interactive = count_of(TrafficClass::Interactive);
        let standard = count_of(TrafficClass::Standard);
        let best_effort = count_of(TrafficClass::BestEffort);
        assert_eq!(interactive + standard + best_effort, trace.len());
        // The fractions are of *events*; multi-turn conversations inflate
        // the standard share, but all three streams must be present in
        // roughly the configured proportions.
        assert!(
            (0.05..0.30).contains(&(best_effort as f64 / 400.0)),
            "~15% of events should be long-doc, got {best_effort}/400"
        );
        assert!(standard > best_effort, "multi-turn turns outnumber events");
        assert!(
            (0.45..0.75).contains(&(interactive as f64 / 400.0)),
            "~60% of events should be interactive, got {interactive}/400"
        );
        // Class/conversation tags agree: only standard requests belong to
        // conversations, and their prefixes grow.
        for r in &trace.requests {
            assert_eq!(r.conversation.is_some(), r.class == TrafficClass::Standard);
        }
    }

    #[test]
    fn mixed_class_conversations_grow_prefixes() {
        use crate::datasets::MixedClassProfile;
        use std::collections::BTreeMap;
        let mut rng = SimRng::seed(33);
        let trace = Trace::generate_mixed_classes(
            ArrivalProcess::Poisson { rate: 1.0 },
            300,
            &MixedClassProfile::overload_mix(),
            &mut rng,
        );
        let mut per_conv: BTreeMap<u64, Vec<&Request>> = BTreeMap::new();
        for r in trace.requests.iter().filter(|r| r.conversation.is_some()) {
            per_conv
                .entry(r.conversation.expect("filtered").raw())
                .or_default()
                .push(r);
        }
        assert!(!per_conv.is_empty());
        for turns in per_conv.values() {
            for (i, r) in turns.iter().enumerate() {
                assert_eq!(r.turn as usize, i, "turns are dense and ordered");
            }
            for w in turns.windows(2) {
                assert!(w[1].input_len > w[0].input_len + w[0].output_len);
                assert!(w[1].arrival > w[0].arrival);
            }
        }
    }

    #[test]
    fn mixed_class_trace_is_deterministic() {
        use crate::datasets::MixedClassProfile;
        let make = || {
            let mut rng = SimRng::seed(55);
            Trace::generate_mixed_classes(
                ArrivalProcess::DiurnalFlash {
                    trough_rate: 0.5,
                    peak_rate: 4.0,
                    period_secs: 300.0,
                    flash_start_s: 100.0,
                    flash_secs: 30.0,
                    flash_rate: 8.0,
                },
                150,
                &MixedClassProfile::overload_mix(),
                &mut rng,
            )
        };
        assert_eq!(make(), make());
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn mixed_class_rejects_overfull_fractions() {
        use crate::datasets::MixedClassProfile;
        let mut rng = SimRng::seed(1);
        let profile = MixedClassProfile {
            long_doc_fraction: 0.7,
            multi_turn_fraction: 0.7,
            multi_turn: MultiTurnProfile::sharegpt(),
        };
        let _ = Trace::generate_mixed_classes(
            ArrivalProcess::Poisson { rate: 1.0 },
            10,
            &profile,
            &mut rng,
        );
    }

    #[test]
    fn json_roundtrip() {
        let mut rng = SimRng::seed(8);
        let trace = Trace::generate(
            DatasetKind::LvEval,
            ArrivalProcess::Poisson { rate: 0.1 },
            20,
            &mut rng,
        );
        let json = trace.to_json().expect("serialise");
        let restored = Trace::from_json(&json).expect("deserialise");
        assert_eq!(trace, restored);
    }

    #[test]
    fn zipf_trace_respects_cap() {
        let mut rng = SimRng::seed(9);
        let trace =
            Trace::generate_zipf_mixed(1.2, ArrivalProcess::Poisson { rate: 1.0 }, 300, &mut rng);
        assert!(trace.requests.iter().all(|r| r.input_len <= 200_000));
    }
}
