//! The serving request model.
//!
//! A request arrives with a prompt of `input_len` tokens, is processed by a
//! single prefill iteration (possibly chunked by some baselines), and then
//! generates `output_len` tokens one decode iteration at a time. The
//! simulator knows the true output length up front (it is sampled with the
//! request), but schedulers are only allowed to see `max_output_len`, the
//! user-declared bound that the paper's dispatcher uses to reason about
//! future KV-cache consumption (§5.1).

use loong_simcore::ids::{ConversationId, RequestId};
use loong_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

// The class lives in the simulation core (so the metrics layer's records can
// carry it without a dependency cycle); it is re-exported here because the
// workload layer is where requests acquire their tags.
pub use loong_simcore::class::TrafficClass;

/// An immutable description of one serving request.
///
/// # Examples
///
/// ```
/// use loong_workload::request::Request;
/// use loong_simcore::ids::RequestId;
/// use loong_simcore::time::SimTime;
///
/// let r = Request::new(RequestId(0), SimTime::ZERO, 1000, 50);
/// assert_eq!(r.total_tokens(), 1050);
/// assert!(r.max_output_len >= r.output_len);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique identifier.
    pub id: RequestId,
    /// Arrival time at the serving frontend.
    pub arrival: SimTime,
    /// Number of prompt tokens.
    pub input_len: u64,
    /// True number of tokens the request will generate (hidden from
    /// schedulers until generation finishes).
    pub output_len: u64,
    /// Upper bound on the output length declared by the user; schedulers may
    /// use this for admission control.
    pub max_output_len: u64,
    /// The multi-turn conversation this request belongs to, if any. Turns of
    /// one conversation form strictly-growing prompt prefixes (each turn's
    /// prompt is the previous turn's full context plus the new user
    /// message), which is what the prefix-cache tier exploits. Single-shot
    /// requests carry `None`.
    pub conversation: Option<ConversationId>,
    /// Zero-based turn index within the conversation (0 for single-shot
    /// requests).
    pub turn: u32,
    /// The request's service class. Defaults to
    /// [`TrafficClass::Interactive`]; the admission controller sheds by
    /// class under saturation and per-class SLO reporting scales the base
    /// SLO by [`TrafficClass::slo_scale`].
    pub class: TrafficClass,
}

impl Request {
    /// Creates a request whose declared maximum equals its true output
    /// length rounded up to a coarse bucket (users rarely know the exact
    /// length, so the bound is generous).
    pub fn new(id: RequestId, arrival: SimTime, input_len: u64, output_len: u64) -> Self {
        assert!(
            input_len > 0,
            "requests must have at least one prompt token"
        );
        assert!(output_len > 0, "requests must generate at least one token");
        let max_output_len = output_len.next_power_of_two().max(64);
        Request {
            id,
            arrival,
            input_len,
            output_len,
            max_output_len,
            conversation: None,
            turn: 0,
            class: TrafficClass::default(),
        }
    }

    /// Tags the request as turn `turn` of `conversation`. Multi-turn traces
    /// use this so follow-up requests can be matched against the prefix
    /// cache and routed with conversation affinity.
    pub fn with_conversation(mut self, conversation: ConversationId, turn: u32) -> Self {
        self.conversation = Some(conversation);
        self.turn = turn;
        self
    }

    /// Tags the request with a service class (mixed-class traces use this;
    /// untagged requests default to [`TrafficClass::Interactive`]).
    pub fn with_class(mut self, class: TrafficClass) -> Self {
        self.class = class;
        self
    }

    /// Creates a request with an explicit declared output bound.
    ///
    /// # Panics
    ///
    /// Panics if `max_output_len < output_len` or any length is zero.
    pub fn with_max_output(
        id: RequestId,
        arrival: SimTime,
        input_len: u64,
        output_len: u64,
        max_output_len: u64,
    ) -> Self {
        assert!(input_len > 0 && output_len > 0, "lengths must be positive");
        assert!(
            max_output_len >= output_len,
            "declared bound {max_output_len} below true output length {output_len}"
        );
        Request {
            id,
            arrival,
            input_len,
            output_len,
            max_output_len,
            conversation: None,
            turn: 0,
            class: TrafficClass::default(),
        }
    }

    /// Total tokens the request will eventually hold in the KV cache.
    pub fn total_tokens(&self) -> u64 {
        self.input_len + self.output_len
    }

    /// Worst-case tokens the request may hold in the KV cache, based on the
    /// declared output bound.
    pub fn max_total_tokens(&self) -> u64 {
        self.input_len + self.max_output_len
    }

    /// Sequence length (prompt + generated so far) after `generated` output
    /// tokens have been produced.
    pub fn context_len_after(&self, generated: u64) -> u64 {
        self.input_len + generated.min(self.output_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_bound_covers_true_output() {
        let r = Request::new(RequestId(1), SimTime::ZERO, 100, 37);
        assert!(r.max_output_len >= 37);
        assert_eq!(r.total_tokens(), 137);
        assert!(r.max_total_tokens() >= r.total_tokens());
        assert_eq!(r.conversation, None);
        assert_eq!(r.turn, 0);
    }

    #[test]
    fn conversation_tagging_sets_both_fields() {
        use loong_simcore::ids::ConversationId;
        let r = Request::new(RequestId(1), SimTime::ZERO, 100, 37)
            .with_conversation(ConversationId(4), 2);
        assert_eq!(r.conversation, Some(ConversationId(4)));
        assert_eq!(r.turn, 2);
    }

    #[test]
    fn default_class_is_interactive_and_tagging_overrides() {
        let r = Request::new(RequestId(1), SimTime::ZERO, 100, 37);
        assert_eq!(r.class, TrafficClass::Interactive);
        let r = r.with_class(TrafficClass::BestEffort);
        assert_eq!(r.class, TrafficClass::BestEffort);
    }

    #[test]
    fn shed_ranks_order_best_effort_first_and_scales_loosen() {
        let all = TrafficClass::all();
        assert_eq!(all[0], TrafficClass::BestEffort);
        assert!(all.windows(2).all(|w| w[0].shed_rank() < w[1].shed_rank()));
        assert!(TrafficClass::Interactive.slo_scale() < TrafficClass::Standard.slo_scale());
        assert!(TrafficClass::Standard.slo_scale() < TrafficClass::BestEffort.slo_scale());
        assert_eq!(TrafficClass::BestEffort.label(), "best-effort");
    }

    #[test]
    fn context_len_saturates_at_completion() {
        let r = Request::new(RequestId(1), SimTime::ZERO, 100, 10);
        assert_eq!(r.context_len_after(0), 100);
        assert_eq!(r.context_len_after(5), 105);
        assert_eq!(r.context_len_after(50), 110);
    }

    #[test]
    #[should_panic(expected = "at least one prompt token")]
    fn zero_input_rejected() {
        let _ = Request::new(RequestId(1), SimTime::ZERO, 0, 10);
    }

    #[test]
    #[should_panic(expected = "below true output length")]
    fn inconsistent_bound_rejected() {
        let _ = Request::with_max_output(RequestId(1), SimTime::ZERO, 10, 10, 5);
    }
}
