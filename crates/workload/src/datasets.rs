//! Dataset length models.
//!
//! The paper evaluates on three real datasets plus a mixture (§7.1):
//!
//! * **ShareGPT** — conversational traffic, 4–2.3K-token prompts with
//!   relatively long generated outputs,
//! * **L-Eval** — long-document tasks, 2.7K–210.5K-token prompts with short
//!   answers,
//! * **LV-Eval** — the longest-context QA benchmark available at the time,
//!   15.1K–497.3K-token prompts with very short answers,
//! * **Mixed** — an equal-probability mixture of the three,
//!
//! and, for the Figure 12 ablation, Zipf-reshaped variants of the mixture
//! capped at 200K tokens. The real traces are not redistributable, so this
//! module provides synthetic samplers calibrated to the published ranges;
//! the serving-system comparison depends only on the joint distribution of
//! input/output lengths, which these samplers reproduce.

use loong_simcore::distributions::{Empirical, Exponential, LogNormal, LogUniform, Zipf};
use loong_simcore::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A sampled (input length, output length) pair in tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LengthSample {
    /// Prompt length in tokens.
    pub input_len: u64,
    /// Generated output length in tokens.
    pub output_len: u64,
}

/// The workload families used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// ShareGPT-like conversational traffic (short prompts, long outputs).
    ShareGpt,
    /// L-Eval-like long-document tasks (2.7K–210.5K prompts, short outputs).
    LEval,
    /// LV-Eval-like extreme-context QA (15.1K–497.3K prompts, tiny outputs).
    LvEval,
    /// Equal mixture of the three datasets.
    Mixed,
}

impl DatasetKind {
    /// All dataset kinds, in the order the paper's Figure 10 rows use.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::ShareGpt,
            DatasetKind::LEval,
            DatasetKind::LvEval,
            DatasetKind::Mixed,
        ]
    }

    /// Human-readable name matching the paper's figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::ShareGpt => "ShareGPT",
            DatasetKind::LEval => "L-Eval",
            DatasetKind::LvEval => "LV-Eval",
            DatasetKind::Mixed => "Mixed",
        }
    }

    /// The request rates (requests/second) swept for this dataset in
    /// Figure 10. Longer-context datasets saturate the cluster at much lower
    /// rates.
    pub fn figure10_rates(&self) -> Vec<f64> {
        match self {
            DatasetKind::ShareGpt => vec![2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0],
            DatasetKind::LEval => vec![0.25, 0.5, 1.0, 1.5, 2.0, 2.5],
            DatasetKind::LvEval => vec![0.025, 0.05, 0.075, 0.1, 0.15, 0.2],
            DatasetKind::Mixed => vec![0.05, 0.1, 0.2, 0.3, 0.45, 0.6],
        }
    }
}

/// A sampler of request lengths for one dataset family.
#[derive(Debug, Clone)]
pub struct DatasetSampler {
    kind: DatasetKind,
    sharegpt_input: LogNormal,
    sharegpt_output: LogNormal,
    leval_input: LogUniform,
    leval_output: LogNormal,
    lveval_input: LogUniform,
    lveval_output: LogUniform,
    mixture: Empirical<u8>,
    /// Optional hard cap applied to sampled input lengths.
    max_input_len: Option<u64>,
}

impl DatasetSampler {
    /// Creates a sampler for the given dataset family.
    pub fn new(kind: DatasetKind) -> Self {
        DatasetSampler {
            kind,
            // ShareGPT: median prompt around 250 tokens, hard range 4–2.3K
            // (the ChatGPT-3.5 context window at collection time), outputs a
            // few hundred tokens.
            sharegpt_input: LogNormal::new(5.5, 1.0, 4.0, 2_300.0),
            sharegpt_output: LogNormal::new(5.3, 0.9, 4.0, 2_000.0),
            // L-Eval: documents spread log-uniformly over 2.7K–210.5K with
            // answers of a few hundred tokens.
            leval_input: LogUniform::new(2_700.0, 210_500.0),
            leval_output: LogNormal::new(5.0, 0.8, 16.0, 1_000.0),
            // LV-Eval: 15.1K–497.3K prompts, short extractive answers.
            lveval_input: LogUniform::new(15_100.0, 497_300.0),
            lveval_output: LogUniform::new(8.0, 128.0),
            mixture: Empirical::new(vec![(0u8, 1.0), (1u8, 1.0), (2u8, 1.0)]),
            max_input_len: None,
        }
    }

    /// Applies a hard cap to sampled input lengths (used by the Figure 12
    /// ablation, which limits requests to 200K tokens so the replicated
    /// baseline can serve them at all).
    pub fn with_max_input_len(mut self, cap: u64) -> Self {
        assert!(cap > 0, "cap must be positive");
        self.max_input_len = Some(cap);
        self
    }

    /// The dataset family this sampler draws from.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Draws one (input, output) length pair.
    pub fn sample(&self, rng: &mut SimRng) -> LengthSample {
        let raw = match self.kind {
            DatasetKind::ShareGpt => self.sample_sharegpt(rng),
            DatasetKind::LEval => self.sample_leval(rng),
            DatasetKind::LvEval => self.sample_lveval(rng),
            DatasetKind::Mixed => match self.mixture.sample(rng) {
                0 => self.sample_sharegpt(rng),
                1 => self.sample_leval(rng),
                _ => self.sample_lveval(rng),
            },
        };
        self.apply_cap(raw)
    }

    fn apply_cap(&self, mut s: LengthSample) -> LengthSample {
        if let Some(cap) = self.max_input_len {
            s.input_len = s.input_len.min(cap);
        }
        s
    }

    fn sample_sharegpt(&self, rng: &mut SimRng) -> LengthSample {
        LengthSample {
            input_len: self.sharegpt_input.sample(rng).round().max(4.0) as u64,
            output_len: self.sharegpt_output.sample(rng).round().max(4.0) as u64,
        }
    }

    fn sample_leval(&self, rng: &mut SimRng) -> LengthSample {
        LengthSample {
            input_len: self.leval_input.sample(rng).round() as u64,
            output_len: self.leval_output.sample(rng).round().max(16.0) as u64,
        }
    }

    fn sample_lveval(&self, rng: &mut SimRng) -> LengthSample {
        LengthSample {
            input_len: self.lveval_input.sample(rng).round() as u64,
            output_len: self.lveval_output.sample(rng).round().max(8.0) as u64,
        }
    }
}

/// Shape of a multi-turn conversation workload.
///
/// Calibrated to the published ShareGPT statistics the paper's multi-turn
/// rows build on: conversations average a handful of assistant turns (the
/// public dumps cluster around 3–4 human/assistant rounds with a long tail),
/// and each follow-up prompt carries the full prior context plus a fresh
/// user message. Round counts are geometric (capped), think times
/// exponential — both sampled from forked [`SimRng`] substreams, so traces
/// stay deterministic.
///
/// Think time is **open-loop**: a follow-up's arrival is the *previous
/// turn's arrival* plus the sampled think time, fixed at trace generation
/// (the trace cannot see service times). When queueing plus service
/// exceeds the think time — exactly the overloaded regimes the benches
/// probe — follow-ups arrive before their previous turn finishes and
/// cannot hit the prefix cache, so measured hit rates fall with load by
/// construction. A closed-loop "think after the answer" model would need
/// arrivals generated inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiTurnProfile {
    /// Mean turns per conversation (geometric, at least one).
    pub mean_rounds: f64,
    /// Hard cap on turns per conversation (the geometric tail is cut here).
    pub max_rounds: u32,
    /// Mean gap between consecutive turn *arrivals* of one conversation,
    /// in seconds (exponential; open-loop — see the type docs).
    pub mean_think_s: f64,
}

impl MultiTurnProfile {
    /// The ShareGPT-calibrated profile: ~3.5 turns per conversation on
    /// average, capped at 16, with ~30 s of user think time between turns.
    pub fn sharegpt() -> Self {
        MultiTurnProfile {
            mean_rounds: 3.5,
            max_rounds: 16,
            mean_think_s: 30.0,
        }
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.mean_rounds < 1.0 {
            return Err(format!(
                "mean rounds must be at least 1, got {}",
                self.mean_rounds
            ));
        }
        if self.max_rounds == 0 {
            return Err("max rounds must be positive".to_string());
        }
        if self.mean_think_s <= 0.0 {
            return Err(format!(
                "mean think time must be positive, got {}",
                self.mean_think_s
            ));
        }
        Ok(())
    }

    /// Samples a conversation's turn count: geometric with the configured
    /// mean, starting at one turn, capped at `max_rounds`. A geometric on
    /// `{1, 2, ...}` with success probability `p = 1/mean` is the floor of
    /// an exponential with rate `-ln(1 - p)`, plus one.
    pub fn sample_rounds(&self, rng: &mut SimRng) -> u32 {
        let p = (1.0 / self.mean_rounds).min(1.0);
        if p >= 1.0 {
            return 1;
        }
        let rate = -(1.0 - p).ln();
        let rounds = 1 + Exponential::new(rate).sample(rng).floor() as u32;
        rounds.min(self.max_rounds)
    }

    /// Samples the think time before a follow-up turn, in seconds. The
    /// floor keeps follow-up arrivals strictly after the previous turn.
    pub fn sample_think_s(&self, rng: &mut SimRng) -> f64 {
        Exponential::new(1.0 / self.mean_think_s)
            .sample(rng)
            .max(1e-3)
    }
}

/// The traffic-class mixture of the elasticity tier's overload studies.
///
/// Each arrival event of the generating process becomes one of three
/// streams, drawn deterministically from a seeded substream:
///
/// * **interactive** — a single-shot ShareGPT-shaped request
///   ([`TrafficClass::Interactive`](crate::request::TrafficClass)), the
///   remainder after the other two fractions;
/// * **long-document** — a single-shot L-Eval-shaped request tagged
///   best-effort: big prompts whose latency tolerance is loose and which
///   the admission controller sheds first under saturation;
/// * **multi-turn** — the event *starts a conversation* (geometric rounds,
///   open-loop think times per [`MultiTurnProfile`]) whose turns are all
///   tagged standard; follow-ups add requests beyond the event count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedClassProfile {
    /// Fraction of arrival events that are long-document best-effort
    /// requests.
    pub long_doc_fraction: f64,
    /// Fraction of arrival events that start a standard-class multi-turn
    /// conversation.
    pub multi_turn_fraction: f64,
    /// Turn-count / think-time profile of the multi-turn stream.
    pub multi_turn: MultiTurnProfile,
}

impl MixedClassProfile {
    /// The default overload mix: 15% long-document, 25% multi-turn
    /// conversation starts, the rest interactive chat.
    pub fn overload_mix() -> Self {
        MixedClassProfile {
            long_doc_fraction: 0.15,
            multi_turn_fraction: 0.25,
            multi_turn: MultiTurnProfile::sharegpt(),
        }
    }

    /// Validates ranges: both fractions non-negative, summing to at most 1,
    /// and a valid multi-turn profile.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.long_doc_fraction)
            || !(0.0..=1.0).contains(&self.multi_turn_fraction)
            || self.long_doc_fraction + self.multi_turn_fraction > 1.0
        {
            return Err(format!(
                "class fractions must be non-negative and sum to at most 1, got \
                 long-doc {} + multi-turn {}",
                self.long_doc_fraction, self.multi_turn_fraction
            ));
        }
        self.multi_turn.validate()
    }
}

/// The Zipf-reshaped mixture of Figure 12.
///
/// Requests are drawn from the Mixed dataset, but the choice of source
/// dataset is ranked (ShareGPT shortest → LV-Eval longest) and sampled by a
/// Zipf distribution with the given exponent, then capped at 200K input
/// tokens. Larger exponents skew the workload towards short requests.
#[derive(Debug, Clone)]
pub struct ZipfMixedSampler {
    zipf: Zipf,
    sharegpt: DatasetSampler,
    leval: DatasetSampler,
    lveval: DatasetSampler,
}

impl ZipfMixedSampler {
    /// Input-length cap used by the Figure 12 ablation.
    pub const INPUT_CAP: u64 = 200_000;

    /// Creates a sampler with the given Zipf exponent (the paper uses 1.0,
    /// 1.2 and 1.4).
    pub fn new(exponent: f64) -> Self {
        ZipfMixedSampler {
            zipf: Zipf::new(3, exponent),
            sharegpt: DatasetSampler::new(DatasetKind::ShareGpt)
                .with_max_input_len(Self::INPUT_CAP),
            leval: DatasetSampler::new(DatasetKind::LEval).with_max_input_len(Self::INPUT_CAP),
            lveval: DatasetSampler::new(DatasetKind::LvEval).with_max_input_len(Self::INPUT_CAP),
        }
    }

    /// The Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.zipf.exponent()
    }

    /// Draws one (input, output) length pair.
    pub fn sample(&self, rng: &mut SimRng) -> LengthSample {
        match self.zipf.sample(rng) {
            1 => self.sharegpt.sample(rng),
            2 => self.leval.sample(rng),
            _ => self.lveval.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_range(kind: DatasetKind, min_in: u64, max_in: u64) {
        let sampler = DatasetSampler::new(kind);
        let mut rng = SimRng::seed(7);
        for _ in 0..2000 {
            let s = sampler.sample(&mut rng);
            assert!(
                s.input_len >= min_in && s.input_len <= max_in,
                "{}: input {} outside [{min_in}, {max_in}]",
                kind.name(),
                s.input_len
            );
            assert!(s.output_len >= 1);
        }
    }

    #[test]
    fn sharegpt_range_matches_paper() {
        check_range(DatasetKind::ShareGpt, 4, 2_300);
    }

    #[test]
    fn leval_range_matches_paper() {
        check_range(DatasetKind::LEval, 2_700, 210_500);
    }

    #[test]
    fn lveval_range_matches_paper() {
        check_range(DatasetKind::LvEval, 15_100, 497_300);
    }

    #[test]
    fn mixed_covers_all_sources() {
        let sampler = DatasetSampler::new(DatasetKind::Mixed);
        let mut rng = SimRng::seed(11);
        let mut short = 0usize;
        let mut long = 0usize;
        for _ in 0..2000 {
            let s = sampler.sample(&mut rng);
            if s.input_len <= 2_300 {
                short += 1;
            }
            if s.input_len >= 15_100 {
                long += 1;
            }
        }
        assert!(
            short > 200,
            "mixed workload missing short requests ({short})"
        );
        assert!(long > 200, "mixed workload missing long requests ({long})");
    }

    #[test]
    fn sharegpt_outputs_are_longer_than_lveval_outputs() {
        // The ShareGPT row of Figure 13 relies on long decode phases; the
        // LV-Eval row on very short ones.
        let mut rng = SimRng::seed(13);
        let sg = DatasetSampler::new(DatasetKind::ShareGpt);
        let lv = DatasetSampler::new(DatasetKind::LvEval);
        let n = 2000;
        let sg_mean: f64 = (0..n)
            .map(|_| sg.sample(&mut rng).output_len as f64)
            .sum::<f64>()
            / n as f64;
        let lv_mean: f64 = (0..n)
            .map(|_| lv.sample(&mut rng).output_len as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            sg_mean > 2.0 * lv_mean,
            "ShareGPT {sg_mean} vs LV-Eval {lv_mean}"
        );
    }

    #[test]
    fn input_cap_is_enforced() {
        let sampler = DatasetSampler::new(DatasetKind::LvEval).with_max_input_len(200_000);
        let mut rng = SimRng::seed(17);
        for _ in 0..2000 {
            assert!(sampler.sample(&mut rng).input_len <= 200_000);
        }
    }

    #[test]
    fn zipf_exponent_skews_towards_short_requests() {
        let mut rng_a = SimRng::seed(23);
        let mut rng_b = SimRng::seed(23);
        let mild = ZipfMixedSampler::new(1.0);
        let steep = ZipfMixedSampler::new(1.4);
        let n = 4000;
        let mean = |sampler: &ZipfMixedSampler, rng: &mut SimRng| -> f64 {
            (0..n)
                .map(|_| sampler.sample(rng).input_len as f64)
                .sum::<f64>()
                / n as f64
        };
        let mild_mean = mean(&mild, &mut rng_a);
        let steep_mean = mean(&steep, &mut rng_b);
        assert!(
            steep_mean < mild_mean,
            "steeper Zipf should shorten the mean input ({steep_mean} vs {mild_mean})"
        );
        assert!((mild.exponent() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_mixed_respects_cap() {
        let sampler = ZipfMixedSampler::new(1.2);
        let mut rng = SimRng::seed(29);
        for _ in 0..2000 {
            assert!(sampler.sample(&mut rng).input_len <= ZipfMixedSampler::INPUT_CAP);
        }
    }

    #[test]
    fn multi_turn_profile_samples_in_range() {
        let profile = MultiTurnProfile::sharegpt();
        assert!(profile.validate().is_ok());
        let mut rng = SimRng::seed(31);
        let n = 4000;
        let mut sum_rounds = 0u64;
        for _ in 0..n {
            let rounds = profile.sample_rounds(&mut rng);
            assert!((1..=profile.max_rounds).contains(&rounds));
            sum_rounds += u64::from(rounds);
            assert!(profile.sample_think_s(&mut rng) > 0.0);
        }
        let mean = sum_rounds as f64 / n as f64;
        assert!(
            (mean - profile.mean_rounds).abs() < 0.5,
            "geometric mean {mean} too far from {}",
            profile.mean_rounds
        );
    }

    #[test]
    fn multi_turn_profile_validation_rejects_bad_values() {
        let ok = MultiTurnProfile::sharegpt();
        assert!(MultiTurnProfile {
            mean_rounds: 0.5,
            ..ok
        }
        .validate()
        .is_err());
        assert!(MultiTurnProfile {
            max_rounds: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(MultiTurnProfile {
            mean_think_s: 0.0,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn dataset_metadata_is_consistent() {
        assert_eq!(DatasetKind::all().len(), 4);
        for kind in DatasetKind::all() {
            assert!(!kind.name().is_empty());
            assert!(!kind.figure10_rates().is_empty());
        }
    }
}
