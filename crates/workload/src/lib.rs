//! # loong-workload
//!
//! Workload modelling for LoongServe-RS: requests, dataset length
//! distributions, arrival processes and fully materialised traces.
//!
//! The paper's evaluation (§7.1) samples request lengths from ShareGPT,
//! L-Eval and LV-Eval and generates arrivals with a Poisson process. The
//! real traces are not redistributable, so [`datasets`] provides synthetic
//! samplers calibrated to the published token ranges; see `DESIGN.md` for
//! the substitution rationale.
//!
//! # Examples
//!
//! ```
//! use loong_workload::prelude::*;
//! use loong_simcore::SimRng;
//!
//! let mut rng = SimRng::seed(7);
//! let trace = Trace::generate(
//!     DatasetKind::Mixed,
//!     ArrivalProcess::Poisson { rate: 0.3 },
//!     100,
//!     &mut rng,
//! );
//! assert_eq!(trace.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod datasets;
pub mod failure;
pub mod request;
pub mod stream;
pub mod trace;

pub use arrival::{ArrivalProcess, ArrivalStream};
pub use datasets::{
    DatasetKind, DatasetSampler, LengthSample, MixedClassProfile, MultiTurnProfile,
    ZipfMixedSampler,
};
pub use failure::{FailureEvent, FailureSchedule};
pub use request::{Request, TrafficClass};
pub use stream::TraceStream;
pub use trace::{Trace, TraceStats};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::arrival::{ArrivalProcess, ArrivalStream};
    pub use crate::datasets::{
        DatasetKind, DatasetSampler, LengthSample, MixedClassProfile, MultiTurnProfile,
        ZipfMixedSampler,
    };
    pub use crate::failure::{FailureEvent, FailureSchedule};
    pub use crate::request::{Request, TrafficClass};
    pub use crate::stream::TraceStream;
    pub use crate::trace::{Trace, TraceStats};
}
