//! Same seed ⇒ identical workload trace, across datasets and arrival
//! processes. Together with `loong-simcore`'s determinism suite this pins
//! the reproducibility contract the figure benches rely on.

use loong_simcore::SimRng;
use loong_workload::prelude::*;

fn generate(kind: DatasetKind, seed: u64) -> Trace {
    let mut rng = SimRng::seed(seed);
    Trace::generate(kind, ArrivalProcess::Poisson { rate: 0.5 }, 200, &mut rng)
}

#[test]
fn same_seed_generates_identical_traces() {
    for kind in [
        DatasetKind::ShareGpt,
        DatasetKind::LEval,
        DatasetKind::LvEval,
        DatasetKind::Mixed,
    ] {
        let a = generate(kind, 42);
        let b = generate(kind, 42);
        assert_eq!(a, b, "{kind:?}: identically-seeded traces differ");
    }
}

#[test]
fn different_seeds_generate_different_traces() {
    let a = generate(DatasetKind::Mixed, 42);
    let b = generate(DatasetKind::Mixed, 43);
    assert_ne!(a, b, "differently-seeded traces should differ");
}

#[test]
fn trace_regeneration_does_not_depend_on_prior_rng_use() {
    // Consuming unrelated draws from a *forked* substream must not perturb
    // the trace itself (fork isolation).
    let mut rng_a = SimRng::seed(7);
    let mut rng_b = SimRng::seed(7);
    let _ = rng_b.fork("unrelated-component");
    let a = Trace::generate(
        DatasetKind::ShareGpt,
        ArrivalProcess::Poisson { rate: 1.0 },
        50,
        &mut rng_a,
    );
    let b = Trace::generate(
        DatasetKind::ShareGpt,
        ArrivalProcess::Poisson { rate: 1.0 },
        50,
        &mut rng_b,
    );
    // Forking advances the parent stream by one draw, so traces may differ —
    // but generation must still be internally consistent and complete.
    assert_eq!(a.len(), 50);
    assert_eq!(b.len(), 50);
}
