//! # loong-cluster
//!
//! Simulated GPU cluster substrate for LoongServe-RS.
//!
//! The original LoongServe runs on servers with eight NVIDIA A800 80GB GPUs
//! connected by 400 GB/s NVLink inside a node and four 200 Gbps InfiniBand
//! NICs across nodes. This crate models that hardware with just enough
//! fidelity for scheduling decisions to be meaningful:
//!
//! * [`gpu`] — device specs (peak FLOP/s, HBM bandwidth, memory) and
//!   point-to-point link specs,
//! * [`topology`] — nodes, GPU placement, and link selection between GPUs,
//! * [`comm`] — alpha-beta cost models for the collectives used by tensor
//!   parallelism, sequence parallelism and KV-cache migration,
//! * [`memory`] — per-GPU memory budgets that size the KV-cache pools.
//!
//! # Examples
//!
//! ```
//! use loong_cluster::prelude::*;
//!
//! let cluster = ClusterSpec::single_node_a800(8);
//! let comm = CommModel::new(cluster.bottleneck_link(&cluster.all_gpus()));
//! // An 8-way all-reduce of 64 MiB takes well under a millisecond on NVLink.
//! assert!(comm.ring_allreduce(64.0 * 1024.0 * 1024.0, 8) < 1e-3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod comm;
pub mod gpu;
pub mod memory;
pub mod topology;

pub use comm::{CommModel, CommVolume};
pub use gpu::{GpuSpec, LinkSpec, GB, GIB};
pub use memory::{HostMemoryBudget, MemoryBudget};
pub use topology::ClusterSpec;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::comm::{CommModel, CommVolume};
    pub use crate::gpu::{GpuSpec, LinkSpec, GB, GIB};
    pub use crate::memory::{HostMemoryBudget, MemoryBudget};
    pub use crate::topology::ClusterSpec;
}
