//! GPU memory accounting.
//!
//! Serving long contexts is memory-dominated: the paper's headline example
//! is a single 1M-token request whose key-value cache alone needs 488 GB.
//! [`MemoryBudget`] splits each GPU's memory into model weights, a fixed
//! activation/workspace reservation, and the remainder available for
//! key-value cache slots — mirroring how vLLM/LightLLM size their paged KV
//! pools.

use crate::gpu::GpuSpec;
use serde::{Deserialize, Serialize};

/// Memory budget of a single GPU participating in an elastic instance.
///
/// # Examples
///
/// ```
/// use loong_cluster::gpu::GpuSpec;
/// use loong_cluster::memory::MemoryBudget;
///
/// // Llama-2-7B weights sharded over 2 GPUs, 64 KiB of KV per token per GPU.
/// let budget = MemoryBudget::new(&GpuSpec::a800_80gb(), 7e9 * 2.0 / 2.0, 0.10, 65536.0);
/// assert!(budget.kv_slot_capacity() > 100_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBudget {
    /// Total device memory in bytes.
    pub total_bytes: f64,
    /// Bytes consumed by the (sharded) model weights on this GPU.
    pub weight_bytes: f64,
    /// Bytes reserved for activations, communication buffers and workspace.
    pub workspace_bytes: f64,
    /// Bytes of key-value cache stored per token on this GPU.
    pub kv_bytes_per_token: f64,
}

impl MemoryBudget {
    /// Creates a budget for one GPU.
    ///
    /// `weight_bytes` is the shard of model weights resident on this GPU;
    /// `workspace_fraction` is the fraction of total memory reserved for
    /// activations and buffers (vLLM defaults to roughly 10%);
    /// `kv_bytes_per_token` is the per-token KV footprint on this GPU.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are not positive/finite or the weights plus
    /// workspace exceed device memory.
    pub fn new(
        gpu: &GpuSpec,
        weight_bytes: f64,
        workspace_fraction: f64,
        kv_bytes_per_token: f64,
    ) -> Self {
        assert!(
            weight_bytes >= 0.0 && weight_bytes.is_finite(),
            "invalid weight bytes"
        );
        assert!(
            (0.0..1.0).contains(&workspace_fraction),
            "workspace fraction must be in [0, 1), got {workspace_fraction}"
        );
        assert!(
            kv_bytes_per_token > 0.0,
            "kv bytes per token must be positive"
        );
        let workspace_bytes = gpu.memory_bytes * workspace_fraction;
        let budget = MemoryBudget {
            total_bytes: gpu.memory_bytes,
            weight_bytes,
            workspace_bytes,
            kv_bytes_per_token,
        };
        assert!(
            budget.kv_pool_bytes() >= 0.0,
            "model weights ({weight_bytes} B) plus workspace do not fit in {} B of device memory",
            gpu.memory_bytes
        );
        budget
    }

    /// Bytes left over for the key-value cache pool.
    pub fn kv_pool_bytes(&self) -> f64 {
        self.total_bytes - self.weight_bytes - self.workspace_bytes
    }

    /// Number of whole token slots the key-value pool can hold.
    pub fn kv_slot_capacity(&self) -> u64 {
        (self.kv_pool_bytes() / self.kv_bytes_per_token)
            .floor()
            .max(0.0) as u64
    }

    /// Bytes consumed by `tokens` key-value slots.
    pub fn kv_bytes_for(&self, tokens: u64) -> f64 {
        tokens as f64 * self.kv_bytes_per_token
    }

    /// Fraction of the KV pool used when `tokens` slots are occupied.
    pub fn utilization(&self, tokens: u64) -> f64 {
        let cap = self.kv_slot_capacity();
        if cap == 0 {
            return 1.0;
        }
        tokens as f64 / cap as f64
    }
}

/// Host-DRAM budget of one node, sizing the swap tier that evicted KV cache
/// spills into.
///
/// Production inference servers pair each 8-GPU node with 1–2 TB of DRAM;
/// only part of it is available for KV swap (the rest holds the OS, weights
/// staged for loading, and pinned transfer buffers). The budget mirrors
/// [`MemoryBudget`]: total bytes, a reserved fraction, and the per-token KV
/// footprint, yielding a whole-token host slot capacity.
///
/// # Examples
///
/// ```
/// use loong_cluster::memory::HostMemoryBudget;
///
/// // 1 TiB of DRAM, half reserved, 512 KiB of KV per token.
/// let budget = HostMemoryBudget::new(1024.0 * 1024.0 * 1024.0 * 1024.0, 0.5, 524_288.0);
/// assert_eq!(budget.kv_slot_capacity(), 1_048_576);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostMemoryBudget {
    /// Total host DRAM in bytes.
    pub total_bytes: f64,
    /// Fraction of DRAM *not* available to the KV swap tier.
    pub reserved_fraction: f64,
    /// Bytes of key-value cache stored per token (whole-model footprint:
    /// a swapped token leaves every GPU shard).
    pub kv_bytes_per_token: f64,
}

impl HostMemoryBudget {
    /// Creates a host budget.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is not positive/finite, `reserved_fraction`
    /// is outside `[0, 1)`, or `kv_bytes_per_token` is not positive.
    pub fn new(total_bytes: f64, reserved_fraction: f64, kv_bytes_per_token: f64) -> Self {
        assert!(
            total_bytes > 0.0 && total_bytes.is_finite(),
            "host memory must be positive"
        );
        assert!(
            (0.0..1.0).contains(&reserved_fraction),
            "reserved fraction must be in [0, 1), got {reserved_fraction}"
        );
        assert!(
            kv_bytes_per_token > 0.0,
            "kv bytes per token must be positive"
        );
        HostMemoryBudget {
            total_bytes,
            reserved_fraction,
            kv_bytes_per_token,
        }
    }

    /// Bytes available to the host KV swap pool.
    pub fn kv_pool_bytes(&self) -> f64 {
        self.total_bytes * (1.0 - self.reserved_fraction)
    }

    /// Number of whole token slots the host swap pool can hold.
    pub fn kv_slot_capacity(&self) -> u64 {
        (self.kv_pool_bytes() / self.kv_bytes_per_token)
            .floor()
            .max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GIB;

    /// Llama-2-7B in FP16 sharded over 4 GPUs with a GQA=32-head KV layout.
    fn example_budget() -> MemoryBudget {
        let gpu = GpuSpec::a800_80gb();
        // 7B params * 2 bytes / 4-way TP.
        MemoryBudget::new(&gpu, 7e9 * 2.0 / 4.0, 0.10, 32768.0)
    }

    #[test]
    fn capacity_is_positive_and_reasonable() {
        let b = example_budget();
        let cap = b.kv_slot_capacity();
        // ~68 GiB free / 32 KiB per token => ~2.2M slots.
        assert!(cap > 1_000_000, "capacity {cap} too small");
        assert!(cap < 10_000_000, "capacity {cap} implausibly large");
    }

    #[test]
    fn utilization_tracks_tokens() {
        let b = example_budget();
        let cap = b.kv_slot_capacity();
        assert_eq!(b.utilization(0), 0.0);
        assert!((b.utilization(cap) - 1.0).abs() < 1e-9);
        assert!(b.utilization(cap / 2) < 0.51);
    }

    #[test]
    fn kv_bytes_scale_linearly() {
        let b = example_budget();
        assert_eq!(b.kv_bytes_for(2), 2.0 * b.kv_bytes_per_token);
    }

    #[test]
    fn host_budget_holds_far_more_tokens_than_hbm() {
        // 1 TiB of DRAM against 80 GiB of HBM: even with half the DRAM
        // reserved, the swap tier holds several device pools' worth of KV.
        let device = example_budget();
        let host = HostMemoryBudget::new(1024.0 * GIB, 0.5, device.kv_bytes_per_token);
        assert!(host.kv_slot_capacity() > 4 * device.kv_slot_capacity());
        assert!((host.kv_pool_bytes() - 512.0 * GIB).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "reserved fraction")]
    fn host_budget_rejects_full_reservation() {
        let _ = HostMemoryBudget::new(1024.0 * GIB, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn oversized_weights_panic() {
        let gpu = GpuSpec::a800_80gb();
        let _ = MemoryBudget::new(&gpu, 200.0 * GIB, 0.10, 32768.0);
    }

    #[test]
    #[should_panic(expected = "workspace fraction")]
    fn bad_workspace_fraction_panics() {
        let gpu = GpuSpec::a800_80gb();
        let _ = MemoryBudget::new(&gpu, 1e9, 1.5, 32768.0);
    }
}
