//! GPU device model.
//!
//! A [`GpuSpec`] captures the handful of hardware parameters that determine
//! iteration latency in a roofline model: peak dense FP16 throughput, HBM
//! bandwidth, and memory capacity, together with achievable-efficiency
//! factors that account for kernels not reaching peak. The default spec
//! models the NVIDIA A800 80GB SXM used in the paper's testbed.

use serde::{Deserialize, Serialize};

/// Number of bytes in one gibibyte.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Number of bytes in one gigabyte (decimal), used for bandwidth figures.
pub const GB: f64 = 1e9;

/// Static description of a GPU device.
///
/// # Examples
///
/// ```
/// use loong_cluster::gpu::GpuSpec;
///
/// let gpu = GpuSpec::a800_80gb();
/// assert!(gpu.memory_bytes > 70.0 * 1024.0 * 1024.0 * 1024.0);
/// assert!(gpu.effective_flops() < gpu.peak_flops);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: String,
    /// Peak dense FP16/BF16 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Peak HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// Total device memory in bytes.
    pub memory_bytes: f64,
    /// Fraction of peak FLOP/s that large GEMM-dominated kernels achieve.
    pub compute_efficiency: f64,
    /// Fraction of peak HBM bandwidth that memory-bound kernels achieve.
    pub bandwidth_efficiency: f64,
    /// Fixed per-kernel-launch / scheduling overhead per transformer layer,
    /// in seconds. Captures the constant term of iteration latency.
    pub per_layer_overhead_s: f64,
}

impl GpuSpec {
    /// The NVIDIA A800 80GB SXM configuration used in the paper's testbed.
    ///
    /// The A800 is the export variant of the A100: identical compute
    /// (312 TFLOP/s dense FP16) and HBM (~2.0 TB/s), with NVLink capped at
    /// 400 GB/s.
    pub fn a800_80gb() -> Self {
        GpuSpec {
            name: "NVIDIA A800 80GB SXM".to_string(),
            peak_flops: 312e12,
            hbm_bandwidth: 2039.0 * GB,
            memory_bytes: 80.0 * GIB,
            compute_efficiency: 0.55,
            bandwidth_efficiency: 0.80,
            per_layer_overhead_s: 18e-6,
        }
    }

    /// An NVIDIA A100 40GB configuration, useful for memory-pressure
    /// experiments beyond the paper.
    pub fn a100_40gb() -> Self {
        GpuSpec {
            name: "NVIDIA A100 40GB SXM".to_string(),
            peak_flops: 312e12,
            hbm_bandwidth: 1555.0 * GB,
            memory_bytes: 40.0 * GIB,
            compute_efficiency: 0.55,
            bandwidth_efficiency: 0.80,
            per_layer_overhead_s: 18e-6,
        }
    }

    /// An NVIDIA H800 80GB configuration (Hopper export variant), used to
    /// check that conclusions are not specific to Ampere-class hardware.
    pub fn h800_80gb() -> Self {
        GpuSpec {
            name: "NVIDIA H800 80GB SXM".to_string(),
            peak_flops: 989e12,
            hbm_bandwidth: 3350.0 * GB,
            memory_bytes: 80.0 * GIB,
            compute_efficiency: 0.50,
            bandwidth_efficiency: 0.80,
            per_layer_overhead_s: 14e-6,
        }
    }

    /// Effective sustained FLOP/s for compute-bound kernels.
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.compute_efficiency
    }

    /// Effective sustained HBM bandwidth for memory-bound kernels, in
    /// bytes/s.
    pub fn effective_bandwidth(&self) -> f64 {
        self.hbm_bandwidth * self.bandwidth_efficiency
    }

    /// Validates that all parameters are physically meaningful.
    pub fn validate(&self) -> Result<(), String> {
        if self.peak_flops <= 0.0 || self.peak_flops.is_nan() {
            return Err(format!("{}: peak_flops must be positive", self.name));
        }
        if self.hbm_bandwidth <= 0.0 || self.hbm_bandwidth.is_nan() {
            return Err(format!("{}: hbm_bandwidth must be positive", self.name));
        }
        if self.memory_bytes <= 0.0 || self.memory_bytes.is_nan() {
            return Err(format!("{}: memory_bytes must be positive", self.name));
        }
        if !(0.0..=1.0).contains(&self.compute_efficiency) {
            return Err(format!(
                "{}: compute_efficiency must be in [0,1]",
                self.name
            ));
        }
        if !(0.0..=1.0).contains(&self.bandwidth_efficiency) {
            return Err(format!(
                "{}: bandwidth_efficiency must be in [0,1]",
                self.name
            ));
        }
        if self.per_layer_overhead_s < 0.0 {
            return Err(format!(
                "{}: per_layer_overhead_s must be non-negative",
                self.name
            ));
        }
        Ok(())
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::a800_80gb()
    }
}

/// A point-to-point interconnect link model (bandwidth + latency).
///
/// Communication time for a message of `bytes` over a link is
/// `latency + bytes / bandwidth` (the classic alpha-beta model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Sustained bandwidth in bytes/s.
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// Creates a link with the given bandwidth (bytes/s) and latency (s).
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive or latency is negative.
    pub fn new(bandwidth: f64, latency: f64) -> Self {
        assert!(bandwidth > 0.0, "link bandwidth must be positive");
        assert!(latency >= 0.0, "link latency must be non-negative");
        LinkSpec { bandwidth, latency }
    }

    /// Intra-node NVLink as in the paper's testbed: 400 GB/s between any two
    /// GPUs, ~3 microseconds launch latency.
    pub fn nvlink_a800() -> Self {
        LinkSpec::new(400.0 * GB, 3e-6)
    }

    /// Inter-node InfiniBand: four 200 Gbps HCAs per node shared by eight
    /// GPUs, so roughly 12.5 GB/s per GPU pair sustained, with ~10 us
    /// latency.
    pub fn infiniband_4x200g() -> Self {
        LinkSpec::new(12.5 * GB, 10e-6)
    }

    /// The device↔host path of one GPU: PCIe 4.0 x16 (31.5 GB/s raw,
    /// ~25 GB/s sustained for large DMA transfers, ~10 us launch latency).
    /// KV swap traffic between HBM and host DRAM is costed over this link.
    pub fn pcie_gen4_x16() -> Self {
        LinkSpec::new(25.0 * GB, 10e-6)
    }

    /// Transfer time for a message of `bytes` bytes.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "message size must be non-negative");
        if bytes == 0.0 {
            return 0.0;
        }
        self.latency + bytes / self.bandwidth
    }

    /// Returns the slower (bottleneck) of two links: the minimum bandwidth
    /// and the maximum latency.
    pub fn bottleneck(&self, other: &LinkSpec) -> LinkSpec {
        LinkSpec {
            bandwidth: self.bandwidth.min(other.bandwidth),
            latency: self.latency.max(other.latency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a800_spec_is_valid() {
        let gpu = GpuSpec::a800_80gb();
        assert!(gpu.validate().is_ok());
        assert!(gpu.effective_flops() > 100e12);
        assert!(gpu.effective_bandwidth() > 1000.0 * GB);
    }

    #[test]
    fn all_presets_are_valid() {
        for gpu in [
            GpuSpec::a800_80gb(),
            GpuSpec::a100_40gb(),
            GpuSpec::h800_80gb(),
        ] {
            assert!(gpu.validate().is_ok(), "{} failed validation", gpu.name);
        }
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let mut gpu = GpuSpec::a800_80gb();
        gpu.compute_efficiency = 1.5;
        assert!(gpu.validate().is_err());
        let mut gpu = GpuSpec::a800_80gb();
        gpu.peak_flops = 0.0;
        assert!(gpu.validate().is_err());
    }

    #[test]
    fn link_transfer_time_is_alpha_beta() {
        let link = LinkSpec::new(100.0 * GB, 5e-6);
        let t = link.transfer_time(100.0 * GB);
        assert!((t - 1.000005).abs() < 1e-9);
        assert_eq!(link.transfer_time(0.0), 0.0);
    }

    #[test]
    fn pcie_sits_between_nvlink_and_ib() {
        // D2H swap bandwidth: slower than intra-node NVLink, faster than the
        // per-pair share of the inter-node fabric.
        let pcie = LinkSpec::pcie_gen4_x16();
        assert!(pcie.bandwidth < LinkSpec::nvlink_a800().bandwidth);
        assert!(pcie.bandwidth > LinkSpec::infiniband_4x200g().bandwidth);
        // Swapping a 1M-token LWM KV cache (~488 GB) over PCIe takes tens of
        // seconds — the reason swap is a last resort, not a free lunch.
        let t = pcie.transfer_time(488.0 * GB);
        assert!(t > 10.0, "expected tens of seconds, got {t}");
    }

    #[test]
    fn nvlink_is_faster_than_ib() {
        let nv = LinkSpec::nvlink_a800();
        let ib = LinkSpec::infiniband_4x200g();
        let bytes = 1.0 * GB;
        assert!(nv.transfer_time(bytes) < ib.transfer_time(bytes));
    }

    #[test]
    fn bottleneck_takes_worst_of_both() {
        let nv = LinkSpec::nvlink_a800();
        let ib = LinkSpec::infiniband_4x200g();
        let b = nv.bottleneck(&ib);
        assert_eq!(b.bandwidth, ib.bandwidth);
        assert_eq!(b.latency, ib.latency);
    }
}
