//! Cluster topology: nodes, GPUs and the links between them.
//!
//! The paper's testbed is one (and for Figure 11, two) server(s) with eight
//! A800 GPUs each, fully connected by NVLink within a node and by four
//! 200 Gbps InfiniBand NICs across nodes. [`ClusterSpec`] captures exactly
//! this shape and answers "what link connects GPU *a* to GPU *b*?", which
//! the communication cost models in [`crate::comm`] build on.

use crate::gpu::{GpuSpec, LinkSpec, GIB};
use loong_simcore::ids::{GpuId, NodeId};
use serde::{Deserialize, Serialize};

/// Static description of a homogeneous GPU cluster.
///
/// # Examples
///
/// ```
/// use loong_cluster::topology::ClusterSpec;
///
/// let cluster = ClusterSpec::single_node_a800(8);
/// assert_eq!(cluster.total_gpus(), 8);
/// assert_eq!(cluster.node_of(loong_simcore::ids::GpuId(3)), loong_simcore::ids::NodeId(0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of server nodes.
    pub nodes: usize,
    /// Number of GPUs on each node.
    pub gpus_per_node: usize,
    /// Device model shared by all GPUs.
    pub gpu: GpuSpec,
    /// Link between two GPUs on the same node.
    pub intra_node_link: LinkSpec,
    /// Link between two GPUs on different nodes.
    pub inter_node_link: LinkSpec,
    /// Host DRAM per node in bytes, backing the KV swap tier.
    pub host_memory_bytes: f64,
    /// Device↔host link (PCIe) over which KV swap traffic is costed.
    pub host_link: LinkSpec,
}

impl ClusterSpec {
    /// Default host DRAM per node: 1 TiB, the typical fit-out of an 8-GPU
    /// A800 server.
    pub const DEFAULT_HOST_MEMORY_BYTES: f64 = 1024.0 * GIB;

    /// A single node with `gpus` A800 GPUs connected by NVLink — the primary
    /// testbed of the paper (Figures 10, 12–15 use `gpus = 8`).
    pub fn single_node_a800(gpus: usize) -> Self {
        ClusterSpec {
            nodes: 1,
            gpus_per_node: gpus,
            gpu: GpuSpec::a800_80gb(),
            intra_node_link: LinkSpec::nvlink_a800(),
            inter_node_link: LinkSpec::infiniband_4x200g(),
            host_memory_bytes: Self::DEFAULT_HOST_MEMORY_BYTES,
            host_link: LinkSpec::pcie_gen4_x16(),
        }
    }

    /// Two nodes with eight A800 GPUs each — the multi-node testbed used for
    /// Figure 11.
    pub fn two_node_a800() -> Self {
        ClusterSpec {
            nodes: 2,
            gpus_per_node: 8,
            gpu: GpuSpec::a800_80gb(),
            intra_node_link: LinkSpec::nvlink_a800(),
            inter_node_link: LinkSpec::infiniband_4x200g(),
            host_memory_bytes: Self::DEFAULT_HOST_MEMORY_BYTES,
            host_link: LinkSpec::pcie_gen4_x16(),
        }
    }

    /// A custom homogeneous cluster.
    ///
    /// Construction is checked by [`ClusterSpec::validate`] — the single
    /// source of truth for topology invariants — so `custom` can never
    /// accept a spec that `validate` would reject.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation: zero `nodes` or
    /// `gpus_per_node`, or an invalid [`GpuSpec`].
    pub fn custom(
        nodes: usize,
        gpus_per_node: usize,
        gpu: GpuSpec,
        intra_node_link: LinkSpec,
        inter_node_link: LinkSpec,
    ) -> Self {
        let spec = ClusterSpec {
            nodes,
            gpus_per_node,
            gpu,
            intra_node_link,
            inter_node_link,
            host_memory_bytes: Self::DEFAULT_HOST_MEMORY_BYTES,
            host_link: LinkSpec::pcie_gen4_x16(),
        };
        if let Err(err) = spec.validate() {
            panic!("invalid custom cluster: {err}");
        }
        spec
    }

    /// Replaces the host-tier parameters (per-node DRAM and the device↔host
    /// link), validating the result.
    ///
    /// # Panics
    ///
    /// Panics if the resulting spec fails validation (non-positive host
    /// memory).
    pub fn with_host(mut self, host_memory_bytes: f64, host_link: LinkSpec) -> Self {
        self.host_memory_bytes = host_memory_bytes;
        self.host_link = host_link;
        if let Err(err) = self.validate() {
            panic!("invalid host tier: {err}");
        }
        self
    }

    /// Total number of GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// The node hosting `gpu`.
    ///
    /// # Panics
    ///
    /// Panics if the GPU index is out of range.
    pub fn node_of(&self, gpu: GpuId) -> NodeId {
        let idx = gpu.index();
        assert!(
            idx < self.total_gpus(),
            "GPU {gpu} out of range (total {})",
            self.total_gpus()
        );
        NodeId((idx / self.gpus_per_node) as u64)
    }

    /// All GPU identifiers on `node`.
    pub fn gpus_on_node(&self, node: NodeId) -> Vec<GpuId> {
        let n = node.index();
        assert!(
            n < self.nodes,
            "node {node} out of range (total {})",
            self.nodes
        );
        let start = n * self.gpus_per_node;
        (start..start + self.gpus_per_node)
            .map(GpuId::from)
            .collect()
    }

    /// All GPU identifiers in the cluster, in index order.
    pub fn all_gpus(&self) -> Vec<GpuId> {
        (0..self.total_gpus()).map(GpuId::from).collect()
    }

    /// The link connecting two GPUs: NVLink if they share a node, the
    /// inter-node fabric otherwise. A GPU talking to itself has an
    /// effectively infinite-bandwidth, zero-latency path, approximated by
    /// the intra-node link.
    pub fn link_between(&self, a: GpuId, b: GpuId) -> LinkSpec {
        if self.node_of(a) == self.node_of(b) {
            self.intra_node_link
        } else {
            self.inter_node_link
        }
    }

    /// The bottleneck link among a set of GPUs, i.e. the link a ring
    /// collective spanning all of them is limited by.
    ///
    /// Returns the intra-node link for an empty or single-GPU set.
    pub fn bottleneck_link(&self, gpus: &[GpuId]) -> LinkSpec {
        let mut worst = self.intra_node_link;
        for (i, &a) in gpus.iter().enumerate() {
            for &b in &gpus[i + 1..] {
                worst = worst.bottleneck(&self.link_between(a, b));
            }
        }
        worst
    }

    /// Returns true if all GPUs in the set are on the same node.
    pub fn is_single_node(&self, gpus: &[GpuId]) -> bool {
        match gpus.first() {
            None => true,
            Some(&first) => {
                let node = self.node_of(first);
                gpus.iter().all(|&g| self.node_of(g) == node)
            }
        }
    }

    /// Validates the topology parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster must have at least one node".to_string());
        }
        if self.gpus_per_node == 0 {
            return Err("nodes must have at least one GPU".to_string());
        }
        if !(self.host_memory_bytes > 0.0 && self.host_memory_bytes.is_finite()) {
            return Err("host_memory_bytes must be positive".to_string());
        }
        self.gpu.validate()
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::single_node_a800(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_maps_all_gpus_to_node_zero() {
        let c = ClusterSpec::single_node_a800(8);
        for g in c.all_gpus() {
            assert_eq!(c.node_of(g), NodeId(0));
        }
        assert!(c.is_single_node(&c.all_gpus()));
    }

    #[test]
    fn two_node_splits_gpus() {
        let c = ClusterSpec::two_node_a800();
        assert_eq!(c.total_gpus(), 16);
        assert_eq!(c.node_of(GpuId(7)), NodeId(0));
        assert_eq!(c.node_of(GpuId(8)), NodeId(1));
        assert_eq!(c.gpus_on_node(NodeId(1)).len(), 8);
        assert!(!c.is_single_node(&[GpuId(7), GpuId(8)]));
    }

    #[test]
    fn link_selection_matches_topology() {
        let c = ClusterSpec::two_node_a800();
        let intra = c.link_between(GpuId(0), GpuId(1));
        let inter = c.link_between(GpuId(0), GpuId(15));
        assert!(intra.bandwidth > inter.bandwidth);
    }

    #[test]
    fn bottleneck_link_spans_nodes() {
        let c = ClusterSpec::two_node_a800();
        let all: Vec<GpuId> = c.all_gpus();
        let b = c.bottleneck_link(&all);
        assert_eq!(b.bandwidth, c.inter_node_link.bandwidth);
        let node0 = c.gpus_on_node(NodeId(0));
        let b0 = c.bottleneck_link(&node0);
        assert_eq!(b0.bandwidth, c.intra_node_link.bandwidth);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gpu_panics() {
        let c = ClusterSpec::single_node_a800(8);
        let _ = c.node_of(GpuId(8));
    }

    #[test]
    fn empty_set_is_single_node() {
        let c = ClusterSpec::single_node_a800(8);
        assert!(c.is_single_node(&[]));
        let b = c.bottleneck_link(&[]);
        assert_eq!(b.bandwidth, c.intra_node_link.bandwidth);
    }

    #[test]
    fn validate_catches_bad_config() {
        let mut c = ClusterSpec::single_node_a800(8);
        c.nodes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn host_tier_defaults_and_overrides() {
        let c = ClusterSpec::single_node_a800(8);
        assert_eq!(c.host_memory_bytes, ClusterSpec::DEFAULT_HOST_MEMORY_BYTES);
        assert_eq!(c.host_link, LinkSpec::pcie_gen4_x16());
        let big = c.clone().with_host(
            2.0 * ClusterSpec::DEFAULT_HOST_MEMORY_BYTES,
            LinkSpec::new(50e9, 5e-6),
        );
        assert!(big.validate().is_ok());
        assert_eq!(big.host_link.bandwidth, 50e9);
    }

    #[test]
    #[should_panic(expected = "host_memory_bytes")]
    fn with_host_rejects_non_positive_memory() {
        let _ = ClusterSpec::single_node_a800(8).with_host(0.0, LinkSpec::pcie_gen4_x16());
    }

    #[test]
    fn custom_builds_valid_multi_node_specs() {
        let c = ClusterSpec::custom(
            3,
            4,
            GpuSpec::a800_80gb(),
            LinkSpec::nvlink_a800(),
            LinkSpec::infiniband_4x200g(),
        );
        assert_eq!(c.total_gpus(), 12);
        assert!(c.validate().is_ok());
    }

    // Regression: `custom` must route through `validate` rather than
    // asserting a private copy of the preconditions, so the two can never
    // drift. The panic messages below are the *validate* messages.
    #[test]
    #[should_panic(expected = "at least one node")]
    fn custom_rejects_zero_nodes_via_validate() {
        let _ = ClusterSpec::custom(
            0,
            8,
            GpuSpec::a800_80gb(),
            LinkSpec::nvlink_a800(),
            LinkSpec::infiniband_4x200g(),
        );
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn custom_rejects_zero_gpus_via_validate() {
        let _ = ClusterSpec::custom(
            2,
            0,
            GpuSpec::a800_80gb(),
            LinkSpec::nvlink_a800(),
            LinkSpec::infiniband_4x200g(),
        );
    }

    // The old inline asserts never checked the GPU; going through
    // `validate` makes `custom` inherit every check it has — including
    // ones added later.
    #[test]
    #[should_panic(expected = "peak_flops must be positive")]
    fn custom_rejects_invalid_gpu_via_validate() {
        let mut gpu = GpuSpec::a800_80gb();
        gpu.peak_flops = -1.0;
        let _ = ClusterSpec::custom(
            1,
            8,
            gpu,
            LinkSpec::nvlink_a800(),
            LinkSpec::infiniband_4x200g(),
        );
    }

    #[test]
    fn three_node_custom_spec_maps_nodes_and_links() {
        let c = ClusterSpec::custom(
            3,
            4,
            GpuSpec::a800_80gb(),
            LinkSpec::nvlink_a800(),
            LinkSpec::infiniband_4x200g(),
        );
        // Node boundaries at GPU indices 0..4, 4..8, 8..12.
        assert_eq!(c.node_of(GpuId(0)), NodeId(0));
        assert_eq!(c.node_of(GpuId(3)), NodeId(0));
        assert_eq!(c.node_of(GpuId(4)), NodeId(1));
        assert_eq!(c.node_of(GpuId(11)), NodeId(2));
        assert_eq!(
            c.gpus_on_node(NodeId(2)),
            vec![GpuId(8), GpuId(9), GpuId(10), GpuId(11)]
        );
        // Per-node GPU sets are single-node; any cross-node set is not.
        for node in 0..3 {
            assert!(c.is_single_node(&c.gpus_on_node(NodeId(node as u64))));
        }
        assert!(!c.is_single_node(&[GpuId(3), GpuId(4)]));
        assert!(!c.is_single_node(&[GpuId(0), GpuId(5), GpuId(9)]));
        // Bottleneck: intra-node within a node, inter-node as soon as the
        // set spans a boundary.
        let b_intra = c.bottleneck_link(&c.gpus_on_node(NodeId(1)));
        assert_eq!(b_intra.bandwidth, c.intra_node_link.bandwidth);
        let b_cross = c.bottleneck_link(&[GpuId(0), GpuId(4), GpuId(8)]);
        assert_eq!(b_cross.bandwidth, c.inter_node_link.bandwidth);
    }

    #[test]
    fn single_gpu_set_bottleneck_is_intra_node() {
        let c = ClusterSpec::two_node_a800();
        let b = c.bottleneck_link(&[GpuId(9)]);
        assert_eq!(b.bandwidth, c.intra_node_link.bandwidth);
        assert!(c.is_single_node(&[GpuId(9)]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpus_on_out_of_range_node_panics() {
        let c = ClusterSpec::two_node_a800();
        let _ = c.gpus_on_node(NodeId(2));
    }

    #[test]
    fn validate_surfaces_gpu_errors_on_multi_node_specs() {
        let mut c = ClusterSpec::two_node_a800();
        assert!(c.validate().is_ok());
        c.gpu.memory_bytes = 0.0;
        let err = c.validate().expect_err("invalid GPU must fail");
        assert!(err.contains("memory_bytes"), "unexpected error: {err}");
        c.gpu = GpuSpec::a800_80gb();
        c.gpus_per_node = 0;
        assert!(c.validate().is_err());
    }
}
