//! Collective-communication cost models.
//!
//! LoongServe's elastic scaling decisions hinge on the *relative* cost of
//! three kinds of communication:
//!
//! * **Tensor parallelism** all-reduces inside an elastic instance (twice per
//!   transformer layer),
//! * **Sequence parallelism** ring exchanges of key-value segments between
//!   instances during the prefill phase (StripedAttention), and query/partial
//!   result exchanges during distributed decoding,
//! * **Key-value cache migration** between instances when a baseline (or the
//!   optional decode scale-down) has to move state reactively.
//!
//! All of these are modelled with the standard alpha-beta (latency +
//! size/bandwidth) formulation over the bottleneck link of the participating
//! GPUs, which is the same approach used by NCCL performance models.

use crate::gpu::LinkSpec;
use serde::{Deserialize, Serialize};

/// Cost model for collectives over a set of peers connected by a given
/// bottleneck link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    /// The bottleneck link between any two participants.
    pub link: LinkSpec,
}

impl CommModel {
    /// Creates a communication model over the given bottleneck link.
    pub fn new(link: LinkSpec) -> Self {
        CommModel { link }
    }

    /// Time for a single point-to-point transfer of `bytes` bytes.
    pub fn p2p(&self, bytes: f64) -> f64 {
        self.link.transfer_time(bytes)
    }

    /// Time for a ring all-reduce of `bytes` bytes across `n` participants.
    ///
    /// The standard ring algorithm moves `2 (n-1) / n * bytes` per peer and
    /// takes `2 (n-1)` latency-bound steps.
    pub fn ring_allreduce(&self, bytes: f64, n: usize) -> f64 {
        assert!(n >= 1, "all-reduce needs at least one participant");
        if n == 1 || bytes == 0.0 {
            return 0.0;
        }
        let steps = 2 * (n - 1);
        let volume = 2.0 * (n as f64 - 1.0) / n as f64 * bytes;
        steps as f64 * self.link.latency + volume / self.link.bandwidth
    }

    /// Time for a ring all-gather where each participant contributes
    /// `bytes_per_rank` bytes.
    pub fn ring_allgather(&self, bytes_per_rank: f64, n: usize) -> f64 {
        assert!(n >= 1, "all-gather needs at least one participant");
        if n == 1 || bytes_per_rank == 0.0 {
            return 0.0;
        }
        let steps = n - 1;
        let volume = (n as f64 - 1.0) * bytes_per_rank;
        steps as f64 * self.link.latency + volume / self.link.bandwidth
    }

    /// Time for one step of the sequence-parallel ring: every instance sends
    /// its current key-value segment of `bytes` bytes to its neighbour while
    /// receiving the previous segment. Send and receive overlap, so the step
    /// costs one latency plus one segment transfer.
    pub fn ring_sendrecv_step(&self, bytes: f64) -> f64 {
        if bytes == 0.0 {
            return 0.0;
        }
        self.link.latency + bytes / self.link.bandwidth
    }

    /// Time for a broadcast of `bytes` from one rank to `n - 1` others using
    /// a ring pipeline.
    pub fn broadcast(&self, bytes: f64, n: usize) -> f64 {
        assert!(n >= 1, "broadcast needs at least one participant");
        if n == 1 || bytes == 0.0 {
            return 0.0;
        }
        (n - 1) as f64 * self.link.latency + bytes / self.link.bandwidth
    }

    /// Time for a scatter/gather where a master exchanges `bytes_per_peer`
    /// with each of `n - 1` peers sequentially over its single NIC/NVLink
    /// port. This models the query scatter and partial-attention gather of
    /// single-master distributed decoding.
    pub fn master_exchange(&self, bytes_per_peer: f64, n: usize) -> f64 {
        assert!(n >= 1, "exchange needs at least one participant");
        if n == 1 || bytes_per_peer == 0.0 {
            return 0.0;
        }
        let peers = (n - 1) as f64;
        peers * (self.link.latency + bytes_per_peer / self.link.bandwidth)
    }

    /// Time to migrate `bytes` of key-value cache from one instance to
    /// another (used by reactive-migration baselines and by the optional
    /// decode scale-down path).
    pub fn migrate(&self, bytes: f64) -> f64 {
        self.p2p(bytes)
    }
}

/// Summary of communication volume for accounting and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommVolume {
    /// Bytes moved by tensor-parallel all-reduces.
    pub tp_allreduce_bytes: f64,
    /// Bytes moved by sequence-parallel ring exchanges.
    pub sp_ring_bytes: f64,
    /// Bytes moved by explicit key-value migrations.
    pub migration_bytes: f64,
}

impl CommVolume {
    /// Total bytes moved across all categories.
    pub fn total(&self) -> f64 {
        self.tp_allreduce_bytes + self.sp_ring_bytes + self.migration_bytes
    }

    /// Accumulates another volume record into this one.
    pub fn add(&mut self, other: &CommVolume) {
        self.tp_allreduce_bytes += other.tp_allreduce_bytes;
        self.sp_ring_bytes += other.sp_ring_bytes;
        self.migration_bytes += other.migration_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GB;

    fn nvlink_model() -> CommModel {
        CommModel::new(LinkSpec::nvlink_a800())
    }

    #[test]
    fn single_participant_collectives_are_free() {
        let m = nvlink_model();
        assert_eq!(m.ring_allreduce(1e9, 1), 0.0);
        assert_eq!(m.ring_allgather(1e9, 1), 0.0);
        assert_eq!(m.broadcast(1e9, 1), 0.0);
        assert_eq!(m.master_exchange(1e9, 1), 0.0);
    }

    #[test]
    fn allreduce_volume_scales_with_participants() {
        let m = nvlink_model();
        let t2 = m.ring_allreduce(1.0 * GB, 2);
        let t8 = m.ring_allreduce(1.0 * GB, 8);
        // Per the 2(n-1)/n law, 8 ranks move 1.75x the bytes of 2 ranks.
        assert!(t8 > t2);
        assert!(t8 < 2.0 * t2);
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        let m = nvlink_model();
        assert_eq!(m.ring_allreduce(0.0, 8), 0.0);
        assert_eq!(m.ring_sendrecv_step(0.0), 0.0);
        assert_eq!(m.p2p(0.0), 0.0);
    }

    #[test]
    fn migration_of_large_kv_is_slow() {
        // Migrating ~488 GB of KV cache (the paper's 1M-token example) over
        // NVLink takes on the order of a second, far longer than a decode
        // step — the motivation for proactive migration.
        let m = nvlink_model();
        let t = m.migrate(488.0 * GB);
        assert!(t > 1.0, "expected >1s, got {t}");
    }

    #[test]
    fn master_exchange_scales_with_peers() {
        let m = nvlink_model();
        let t2 = m.master_exchange(1e6, 2);
        let t4 = m.master_exchange(1e6, 4);
        assert!((t4 / t2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn one_byte_collectives_are_latency_bound() {
        // At tiny message sizes the alpha term dominates: the cost is the
        // step count times the link latency, essentially independent of
        // the payload.
        let m = nvlink_model();
        let lat = m.link.latency;
        for n in [2usize, 4, 8] {
            let t = m.ring_allreduce(1.0, n);
            let alpha_only = (2 * (n - 1)) as f64 * lat;
            assert!(
                ((t - alpha_only) / alpha_only).abs() < 1e-6,
                "n={n}: {t} vs alpha {alpha_only}"
            );
            let g = m.ring_allgather(1.0, n);
            assert!(((g - (n - 1) as f64 * lat) / g).abs() < 1e-6);
        }
        // Doubling a latency-bound payload barely moves the cost (but the
        // cost itself never decreases with size).
        let t1 = m.ring_allreduce(8.0, 8);
        let t2 = m.ring_allreduce(16.0, 8);
        assert!(t2 >= t1);
        assert!((t2 - t1) / t1 < 1e-6);
    }

    #[test]
    fn huge_collectives_are_bandwidth_bound() {
        // At large sizes the beta term dominates: cost scales linearly
        // with bytes and the alpha term disappears in the noise.
        let m = nvlink_model();
        let t1 = m.ring_allreduce(10.0 * GB, 8);
        let t2 = m.ring_allreduce(20.0 * GB, 8);
        assert!((t2 / t1 - 2.0).abs() < 1e-3, "ratio {}", t2 / t1);
        let volume_time = 2.0 * 7.0 / 8.0 * 10.0 * GB / m.link.bandwidth;
        assert!(((t1 - volume_time) / t1).abs() < 1e-3);
    }

    #[test]
    fn latency_bandwidth_crossover_sits_at_the_alpha_beta_balance() {
        // The crossover size is where the alpha and beta terms are equal:
        // steps * latency == volume / bandwidth. For a ring all-reduce over
        // n peers that is bytes* = n * latency * bandwidth (per the
        // 2(n-1) steps and 2(n-1)/n volume factors cancelling).
        let m = nvlink_model();
        let n = 8usize;
        let crossover = n as f64 * m.link.latency * m.link.bandwidth;
        let t = m.ring_allreduce(crossover, n);
        let alpha = (2 * (n - 1)) as f64 * m.link.latency;
        // At the crossover the total is exactly twice the alpha term...
        assert!((t - 2.0 * alpha).abs() / t < 1e-9);
        // ...below it latency dominates, above it bandwidth does.
        let below = m.ring_allreduce(crossover / 100.0, n);
        let above = m.ring_allreduce(crossover * 100.0, n);
        assert!(below < 1.02 * alpha);
        assert!(above > 50.0 * alpha);
    }

    #[test]
    fn n1_and_zero_byte_edges_are_free_for_every_collective() {
        let m = nvlink_model();
        // n = 1: no peers, no cost, regardless of size.
        assert_eq!(m.ring_allreduce(f64::MAX, 1), 0.0);
        assert_eq!(m.ring_allgather(f64::MAX, 1), 0.0);
        assert_eq!(m.broadcast(f64::MAX, 1), 0.0);
        assert_eq!(m.master_exchange(f64::MAX, 1), 0.0);
        // zero bytes: nothing to move, even across many peers.
        assert_eq!(m.ring_allgather(0.0, 8), 0.0);
        assert_eq!(m.broadcast(0.0, 8), 0.0);
        assert_eq!(m.master_exchange(0.0, 8), 0.0);
        assert_eq!(m.migrate(0.0), 0.0);
        // n = 2 is the smallest paying configuration.
        assert!(m.ring_allreduce(1.0, 2) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participant_allreduce_panics() {
        let _ = nvlink_model().ring_allreduce(1.0, 0);
    }

    #[test]
    fn inter_node_link_pays_more_latency_than_nvlink() {
        // The same collective over the InfiniBand fabric must cost at
        // least as much as over NVLink in both regimes.
        let nv = nvlink_model();
        let ib = CommModel::new(LinkSpec::infiniband_4x200g());
        assert!(ib.ring_allreduce(1.0, 8) >= nv.ring_allreduce(1.0, 8));
        assert!(ib.ring_allreduce(1.0 * GB, 8) >= nv.ring_allreduce(1.0 * GB, 8));
        assert!(ib.ring_sendrecv_step(1.0 * GB) >= nv.ring_sendrecv_step(1.0 * GB));
    }

    #[test]
    fn comm_volume_accumulates() {
        let mut v = CommVolume::default();
        v.add(&CommVolume {
            tp_allreduce_bytes: 1.0,
            sp_ring_bytes: 2.0,
            migration_bytes: 3.0,
        });
        v.add(&CommVolume {
            tp_allreduce_bytes: 1.0,
            sp_ring_bytes: 2.0,
            migration_bytes: 3.0,
        });
        assert_eq!(v.total(), 12.0);
    }
}
