//! # loong-kvcache
//!
//! Token-granularity key-value cache management for LoongServe-RS.
//!
//! * [`pool`] — the per-instance KV slot pool (PagedAttention at block size
//!   one, as in the paper's implementation §6),
//! * [`placement`] — token-level placement plans and strategies,
//! * [`unified`] — the unified distributed pool spanning all elastic
//!   instances, with commit/append/migrate/drain/evict operations and an
//!   optional host-DRAM swap tier (`swap_out`/`swap_in`),
//! * [`host`] — the host-DRAM pool backing the swap tier,
//! * [`prefix`] — the prefix-cache tier: a deterministic hash-chained
//!   prefix index over the unified pool with ref-counted retention of
//!   completed requests' KV and atomic `match → adopt` reuse,
//! * [`frag`] — fragmentation metrics contrasting locality-constrained and
//!   unified admission (paper §2.4, Figure 4).
//!
//! # Examples
//!
//! ```
//! use loong_kvcache::prelude::*;
//! use loong_simcore::ids::{InstanceId, RequestId};
//!
//! let mut pool = UnifiedKvPool::with_capacities(&[100_000, 200_000, 400_000]);
//! let plan = pool
//!     .plan(RequestId(0), 600_000,
//!           &[InstanceId(0), InstanceId(1), InstanceId(2)],
//!           PlacementStrategy::Balanced)
//!     .expect("the unified pool has room");
//! pool.commit(&plan).unwrap();
//! assert_eq!(pool.tokens_of(RequestId(0)), 600_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod frag;
pub mod host;
pub mod placement;
pub mod pool;
pub mod prefix;
pub mod unified;

pub use frag::{
    admissible_unified, admissible_with_locality, fragmentation_report, FragmentationReport,
};
pub use host::HostKvPool;
pub use placement::{plan_placement, PlacementPlan, PlacementStrategy};
pub use pool::{InstanceKvPool, KvError};
pub use prefix::{PrefixCache, PrefixCacheConfig, PrefixDemand, PrefixEntry};
pub use unified::{KvMove, UnifiedKvPool};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::frag::{
        admissible_unified, admissible_with_locality, fragmentation_report, FragmentationReport,
    };
    pub use crate::host::HostKvPool;
    pub use crate::placement::{plan_placement, PlacementPlan, PlacementStrategy};
    pub use crate::pool::{InstanceKvPool, KvError};
    pub use crate::prefix::{PrefixCache, PrefixCacheConfig, PrefixDemand, PrefixEntry};
    pub use crate::unified::{KvMove, UnifiedKvPool};
}
